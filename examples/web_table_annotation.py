"""Annotating heterogeneous web tables (VizNet-style, single-label).

Demonstrates the second benchmark setting of the paper: multi-class column
type prediction over web tables with many numeric types, plus the input-data
efficiency knob (MaxToken/col, Tables 8/11) — DODUO only needs a handful of
tokens per column to make table-wise predictions.

Run:  python examples/web_table_annotation.py
"""

from repro.core import (
    DoduoConfig,
    PipelineConfig,
    build_pretrained_lm,
    make_trainer,
)
from repro.datasets import (
    Column,
    Table,
    generate_viznet_dataset,
    numeric_fraction,
    split_dataset,
)


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=2)
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    dataset = generate_viznet_dataset(num_tables=900, seed=11)
    splits = split_dataset(dataset, seed=2)
    print(f"training single-label annotator on {len(splits.train)} tables "
          f"({dataset.num_types} types)...")

    trainer = make_trainer(
        splits.train,
        tokenizer,
        pipeline,
        DoduoConfig(
            tasks=("type",), multi_label=False,
            epochs=12, batch_size=8, max_tokens_per_column=16,
        ),
        pretrained=pretrained,
    )
    trainer.train(valid_dataset=splits.valid)
    print("held-out micro-F1:",
          round(trainer.evaluate(splits.test)["type"].f1, 3))

    # Annotate an unseen "web table" of mixed textual/numeric columns.
    stadium_table = Table(
        columns=[
            Column(values=["oakville tigers", "riverdale sharks", "westport wolves"]),
            Column(values=["oakville", "riverdale", "westport"]),
            Column(values=["45,000 seats", "61230", "18,500 seats"]),
            Column(values=["1962", "2004", "1987"]),
        ],
        table_id="stadiums",
    )
    predictions = trainer.predict_types([stadium_table])[0]
    print("\nstadium table predictions:")
    for i, label_id in enumerate(predictions):
        values = stadium_table.columns[i].values
        print(
            f"  column {i} ({values[0]!r}, ...): "
            f"{dataset.type_vocab[int(label_id)]} "
            f"[%num={numeric_fraction(values) * 100:.0f}%]"
        )

    # Input-data efficiency: how many columns fit a 128-token window?
    print("\ntoken budget -> max supported columns (cf. Table 8):")
    for budget in (8, 16, 32):
        per_column = 1 + budget
        print(f"  MaxToken/col={budget:3d}: {(128 - 1) // per_column} columns")


if __name__ == "__main__":
    main()
