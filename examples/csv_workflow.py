"""End-to-end file workflow: CSV tables in, saved model bundle, annotations out.

The data-scientist workflow the paper's Section 7 motivates, using only
files (no in-memory coupling between steps):

    1. export a training corpus to JSON Lines,
    2. train a model and save it as a reusable bundle directory,
    3. load the bundle back (as another process would) and annotate CSVs.

The same steps are available from the shell via the CLI::

    repro generate viznet --num-tables 400 --out corpus.jsonl
    repro train corpus.jsonl --out model/ --epochs 10
    repro annotate model/ table.csv
    repro annotate model/ corpus.jsonl --batch-size 16 --out results.jsonl

Run:  python examples/csv_workflow.py
"""

import tempfile
from pathlib import Path

from repro import AnnotationEngine, AnnotationOptions, Doduo, DoduoConfig
from repro.core import PipelineConfig, build_pretrained_lm, load_annotator, save_annotator
from repro.datasets import generate_viznet_dataset, split_dataset
from repro.io import (
    load_dataset_jsonl,
    read_table_csv,
    save_dataset_jsonl,
    write_table_csv,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-csv-"))
    print(f"working directory: {workdir}")

    # 1. Export a training corpus as JSONL (the CLI's `generate` step).
    dataset = generate_viznet_dataset(num_tables=300, seed=11)
    corpus_path = workdir / "corpus.jsonl"
    save_dataset_jsonl(dataset, corpus_path)
    print(f"wrote {len(dataset.tables)} tables to {corpus_path}")

    # 2. Train from the file and persist the model as a bundle directory.
    reloaded = load_dataset_jsonl(corpus_path)
    splits = split_dataset(reloaded, seed=2)
    pipeline = PipelineConfig(pretrain_epochs=2)
    tokenizer, pretrained = build_pretrained_lm(pipeline)
    model = Doduo.train_on(
        splits.train,
        tokenizer,
        encoder_config=pipeline.encoder_config(tokenizer.vocab_size),
        config=DoduoConfig(tasks=("type",), multi_label=False,
                           epochs=8, batch_size=8, max_tokens_per_column=16),
        valid_dataset=splits.valid,
        pretrained_encoder_state=pretrained.encoder.state_dict(),
    )
    bundle_dir = workdir / "model"
    save_annotator(model, bundle_dir)
    print(f"saved model bundle to {bundle_dir}")

    # 3. A 'different process': load the bundle and annotate CSV exports.
    annotator = load_annotator(bundle_dir)
    csv_dir = workdir / "tables"
    csv_dir.mkdir()
    for table in splits.test.tables[:3]:
        write_table_csv(table, csv_dir / f"{table.table_id}.csv",
                        include_header=False)

    # Batch all CSVs through the serving engine: one padded encoder pass
    # per batch instead of one (or four, historically) per table.
    engine = AnnotationEngine(annotator)
    tables = [
        read_table_csv(csv_path, has_header=False)
        for csv_path in sorted(csv_dir.glob("*.csv"))
    ]
    options = AnnotationOptions(with_embeddings=False, top_k=3)
    for result in engine.annotate_stream(tables, options):
        table = result.table
        print(f"\n{table.table_id}.csv:")
        for c, names in enumerate(result.coltypes):
            sample = table.columns[c].values[0] if table.columns[c].values else ""
            print(f"  col {c} ({sample[:24]!r}...) -> {names[0]}")
    stats = engine.stats
    print(f"\nengine: {stats.requests} tables, {stats.encoder_passes} encoder "
          f"passes, {stats.cache_hits} serialization cache hits")


if __name__ == "__main__":
    main()
