"""Attention analyses: inter-column dependency (Figure 6) and head diversity.

Two analyses from the paper's Appendix A.4 / Section 4.3, run on a small
VizNet-style model:

    1. the inter-column dependency matrix — which column types "rely on"
       which others for their contextualized representation (Figure 6), and
    2. per-head statistics — entropy and pairwise agreement, quantifying the
       claim that "different attention heads ... capture different
       characteristics of input data".

Run:  python examples/attention_analysis.py
"""

from repro import Doduo, DoduoConfig
from repro.analysis import (
    compute_attention_dependency,
    render_heatmap_ascii,
    summarize_heads,
)
from repro.core import PipelineConfig, build_pretrained_lm
from repro.datasets import generate_viznet_dataset, multi_column_only, split_dataset


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=2)
    print("building substrate (tokenizer + pre-trained LM)...")
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    dataset = generate_viznet_dataset(num_tables=400, seed=3)
    splits = split_dataset(dataset, seed=2)
    print(f"fine-tuning on {len(splits.train)} tables...")
    model = Doduo.train_on(
        splits.train,
        tokenizer,
        encoder_config=pipeline.encoder_config(tokenizer.vocab_size),
        config=DoduoConfig(tasks=("type",), multi_label=False,
                           epochs=10, batch_size=8, max_tokens_per_column=16),
        valid_dataset=splits.valid,
        pretrained_encoder_state=pretrained.encoder.state_dict(),
    )

    # 1. Figure 6: inter-column dependency from last-layer CLS attention.
    subset = multi_column_only(splits.test)
    dependency = compute_attention_dependency(model.trainer, subset.tables)
    print("\nstrongest inter-column dependencies (type relies-on type):")
    for a, b, score in dependency.strongest_dependencies(top_k=8):
        print(f"  {a:<14} -> {b:<14} {score:+.4f}")
    print()
    print(render_heatmap_ascii(dependency))

    # 2. Section 4.3: are the heads actually diverse?
    print("\nper-layer head statistics:")
    for summary in summarize_heads(model.trainer, subset.tables[:30]):
        print(
            f"  layer {summary.layer}: mean entropy {summary.mean_entropy:.3f} "
            f"(spread {summary.entropy_spread:.3f}), "
            f"mean head agreement {summary.mean_pairwise_agreement:.3f}"
        )
    print("\nreading: agreement well below 1.0 means heads attend to "
          "different structure — the paper's multi-head motivation.")


if __name__ == "__main__":
    main()
