"""Language-model probing: what does the pre-trained LM already know?

Reproduces the analysis of Appendix A.5 (Tables 12/13): before any
fine-tuning, score template sentences like "<entity> is a <type>" by
pseudo-perplexity and check whether the true type ranks high among the
candidates.  The paper uses this to show that pre-training injects factual
knowledge that the column annotation model later exploits.

Run:  python examples/lm_probing.py
"""

import numpy as np

from repro.analysis import (
    kb_relation_examples,
    kb_type_examples,
    probe_column_relations,
    probe_column_types,
)
from repro.core import PipelineConfig, build_knowledge_base, build_pretrained_lm


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=4)
    print("pre-training the masked LM on verbalized KB facts...")
    tokenizer, pretrained = build_pretrained_lm(pipeline)
    kb = build_knowledge_base(pipeline)
    rng = np.random.default_rng(0)

    # --- column type probing --------------------------------------------
    candidates = ["director", "producer", "athlete", "politician", "city",
                  "country", "film", "album", "book", "company"]
    examples = [(v, t) for v, t in kb_type_examples(kb, rng, per_type=3)
                if t in candidates]
    report = probe_column_types(
        pretrained.model, tokenizer, examples, candidates, max_examples_per_type=3
    )
    print(f"\ntype probing over {report.num_candidates} candidates "
          "(rank 1 = LM considers the true type most natural):")
    print(f"{'type':12s} {'avg rank':>9s} {'PPL/AvgPPL':>11s}")
    for score in sorted(report.scores, key=lambda s: s.average_rank):
        print(f"{score.label:12s} {score.average_rank:9.2f} {score.normalized_ppl:11.3f}")

    # --- column relation probing ----------------------------------------
    relation_candidates = [
        "film.directed_by", "film.produced_by", "person.place_of_birth",
        "person.place_of_death", "person.place_lived", "city.located_in",
    ]
    relation_examples = [
        e for e in kb_relation_examples(kb, rng, per_relation=3)
        if e[2] in relation_candidates
    ]
    relation_report = probe_column_relations(
        pretrained.model, tokenizer, relation_examples, relation_candidates,
        max_examples_per_relation=3,
    )
    print(f"\nrelation probing over {relation_report.num_candidates} candidates:")
    print(f"{'relation':28s} {'avg rank':>9s} {'PPL/AvgPPL':>11s}")
    for score in sorted(relation_report.scores, key=lambda s: s.average_rank):
        print(f"{score.label:28s} {score.average_rank:9.2f} {score.normalized_ppl:11.3f}")


if __name__ == "__main__":
    main()
