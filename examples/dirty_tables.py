"""Robustness to dirty data: annotate tables with missing/misplaced values.

The paper (Appendix B) assumes clean tables but argues pre-trained-LM
annotators degrade gracefully on dirty data.  This example:

    1. trains a VizNet-style single-label DODUO model,
    2. corrupts the held-out tables with increasing rates of missing,
       misplaced, and typo'd cells,
    3. charts micro-F1 against the corruption rate per error mode.

Run:  python examples/dirty_tables.py
"""

from repro import Doduo, DoduoConfig
from repro.core import PipelineConfig, build_pretrained_lm
from repro.datasets import (
    CorruptionConfig,
    corrupt_dataset,
    generate_viznet_dataset,
    split_dataset,
)

RATES = (0.0, 0.1, 0.2, 0.4)


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=2)
    print("building substrate (tokenizer + pre-trained LM)...")
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    dataset = generate_viznet_dataset(num_tables=400, seed=11)
    splits = split_dataset(dataset, seed=2)
    print(f"fine-tuning on {len(splits.train)} tables "
          f"({dataset.num_types} single-label types)...")
    model = Doduo.train_on(
        splits.train,
        tokenizer,
        encoder_config=pipeline.encoder_config(tokenizer.vocab_size),
        config=DoduoConfig(tasks=("type",), multi_label=False,
                           epochs=10, batch_size=8, max_tokens_per_column=16),
        valid_dataset=splits.valid,
        pretrained_encoder_state=pretrained.encoder.state_dict(),
    )

    print(f"\n{'corruption':<12}" + "".join(f"rate={r:<6}" for r in RATES))
    for mode in ("missing", "misplaced", "typo"):
        scores = []
        for rate in RATES:
            dirty = corrupt_dataset(
                splits.test, CorruptionConfig(**{f"{mode}_rate": rate}), seed=5
            )
            scores.append(model.trainer.evaluate(dirty)["type"].f1)
        print(f"{mode:<12}" + "".join(f"{f1:<11.3f}" for f1 in scores))

    print("\nreading: F1 at rate=0.0 is the clean baseline; graceful decay "
          "with rate reproduces the Appendix B claim.")


if __name__ == "__main__":
    main()
