"""Calibrating annotation confidences with temperature scaling.

The toolbox reports per-type probabilities (``AnnotatedTable.type_scores``).
This example shows how to make those probabilities trustworthy enough for an
auto-apply threshold:

    1. train a single-label VizNet-style model,
    2. fit a temperature on the validation split,
    3. compare expected calibration error (ECE) before and after, and show
       the accuracy of predictions above a 0.9 confidence threshold.

Run:  python examples/confidence_calibration.py
"""

import numpy as np

from repro import Doduo, DoduoConfig
from repro.core import PipelineConfig, build_pretrained_lm
from repro.core.calibration import (
    apply_temperature,
    collect_type_logits,
    expected_calibration_error,
    fit_temperature,
)
from repro.datasets import generate_viznet_dataset, split_dataset


def coverage_and_accuracy(probs, labels, threshold):
    confident = probs.max(axis=1) >= threshold
    if not confident.any():
        return 0.0, float("nan")
    accuracy = (probs[confident].argmax(axis=1) == labels[confident]).mean()
    return float(confident.mean()), float(accuracy)


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=2)
    print("building substrate (tokenizer + pre-trained LM)...")
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    dataset = generate_viznet_dataset(num_tables=400, seed=11)
    splits = split_dataset(dataset, seed=2)
    print(f"fine-tuning on {len(splits.train)} tables...")
    model = Doduo.train_on(
        splits.train,
        tokenizer,
        encoder_config=pipeline.encoder_config(tokenizer.vocab_size),
        config=DoduoConfig(tasks=("type",), multi_label=False,
                           epochs=10, batch_size=8, max_tokens_per_column=16),
        valid_dataset=splits.valid,
        pretrained_encoder_state=pretrained.encoder.state_dict(),
    )

    # Fit T on validation, evaluate calibration on test.
    valid_logits, valid_labels = collect_type_logits(model.trainer, splits.valid)
    temperature = fit_temperature(valid_logits, valid_labels)
    print(f"\nfitted temperature: {temperature:.2f} "
          f"({'overconfident' if temperature > 1 else 'underconfident'} model)")

    test_logits, test_labels = collect_type_logits(model.trainer, splits.test)
    raw = apply_temperature(test_logits, 1.0)
    calibrated = apply_temperature(test_logits, temperature)
    print(f"test ECE before: {expected_calibration_error(raw, test_labels):.4f}")
    print(f"test ECE after:  {expected_calibration_error(calibrated, test_labels):.4f}")

    for name, probs in (("raw", raw), ("calibrated", calibrated)):
        coverage, accuracy = coverage_and_accuracy(probs, test_labels, 0.9)
        print(f"{name:>11}: {coverage:5.1%} of columns above 0.9 confidence, "
              f"accuracy among them {accuracy:.3f}")

    print("\nreading: after temperature scaling, the >0.9 bucket's accuracy "
          "should sit near or above 0.9 — a threshold you can automate on.")


if __name__ == "__main__":
    main()
