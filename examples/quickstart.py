"""Quickstart: train DODUO and annotate tables in a few lines.

Mirrors the toolbox usage from the paper (Section 1: "can be used with just
a few lines of Python code"):

    1. build the substrate (KB -> corpus -> tokenizer -> pre-trained LM),
    2. fine-tune DODUO on a WikiTable-style training set,
    3. annotate an unseen table: column types, column relations, embeddings,
    4. serve a whole workload through the batched AnnotationEngine — one
       padded encoder pass per batch instead of four passes per table,
    5. push duplicate-heavy traffic through the async AnnotationService,
       whose queue worker dedups content-identical requests.

Run:  python examples/quickstart.py
"""

from repro import (
    AnnotationEngine,
    AnnotationService,
    Doduo,
    DoduoConfig,
    EngineConfig,
    QueueConfig,
)
from repro.core import PipelineConfig, build_knowledge_base, build_pretrained_lm
from repro.datasets import Column, Table, generate_wikitable_dataset, split_dataset


def main() -> None:
    # 1. Substrate: a synthetic knowledge base stands in for Wikipedia, and
    #    masked-LM pre-training on its verbalized facts stands in for BERT.
    pipeline = PipelineConfig(pretrain_epochs=2)
    print("building substrate (tokenizer + pre-trained LM)...")
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    # 2. Fine-tune on column type + relation annotations (multi-task).
    dataset = generate_wikitable_dataset(
        num_tables=250, seed=7, kb=build_knowledge_base(pipeline)
    )
    splits = split_dataset(dataset, seed=1)
    print(f"fine-tuning on {len(splits.train)} tables "
          f"({dataset.num_types} types, {dataset.num_relations} relations)...")
    model = Doduo.train_on(
        splits.train,
        tokenizer,
        encoder_config=pipeline.encoder_config(tokenizer.vocab_size),
        config=DoduoConfig(epochs=10, batch_size=8, max_tokens_per_column=16),
        valid_dataset=splits.valid,
        pretrained_encoder_state=pretrained.encoder.state_dict(),
    )

    # 3. Annotate a hand-written table (the paper's Figure 2 example).
    films = Table(
        columns=[
            Column(values=["happy feet", "cars", "flushed away"]),
            Column(values=["george miller", "john lasseter", "david bowers"]),
            Column(values=["bill miller", "darla anderson", "dick clement"]),
            Column(values=["usa", "uk", "france"]),
        ],
        table_id="figure-2a",
    )
    annotated = model.annotate(films)

    print("\npredicted column types:")
    for i, names in enumerate(annotated.coltypes):
        print(f"  column {i}: {', '.join(names)}")
    print("\npredicted relations (subject column 0 -> column k):")
    for (i, j), names in sorted(annotated.colrels.items()):
        print(f"  ({i}, {j}): {', '.join(names)}")
    print(f"\ncontextualized column embeddings: {annotated.colemb.shape}")

    # 4. Serve a workload: the engine serializes each table once (LRU cache),
    #    length-buckets the batch, and derives types, scores, relations, and
    #    embeddings from a single padded forward pass per batch.
    engine = AnnotationEngine(model, EngineConfig(batch_size=16))
    results = engine.annotate_batch(splits.test.tables)
    stats = engine.stats
    print(f"\nengine: annotated {stats.requests} tables with "
          f"{stats.encoder_passes} encoder passes in {stats.batches} batches")
    first = results[0]
    print(f"  first table {first.table.table_id!r}: "
          f"top types {first.top_types(0, k=2)}")

    # 5. Heavy concurrent traffic: the async queue front-end dedups
    #    content-identical requests onto one forward pass and fans the same
    #    result out to every waiter (see docs/serving.md for the tiers).
    with AnnotationService(engine, QueueConfig(max_latency=0.05)) as service:
        popular = splits.test.tables[0]
        futures = [service.submit(popular) for _ in range(10)]
        answers = [future.result() for future in futures]
    print(f"\nservice: {len(answers)} waiters, "
          f"{service.stats.dedup_hits} dedup hits, "
          f"{service.stats.unique_annotated} annotation(s) computed")

    scores = model.trainer.evaluate(splits.test)
    print("\nheld-out micro-F1:",
          {task: round(prf.f1, 3) for task, prf in scores.items()})


if __name__ == "__main__":
    main()
