"""Annotating wide tables by splitting them into column groups (Section 6.2).

Table 8 of the paper shows the encoder fits ~15 columns at MaxToken/col=32;
enterprise and open-data tables are often wider.  The paper's recipe — split
the wide table into clusters of related columns, annotate each cluster with
partial table context — is implemented in :mod:`repro.core.wide`.

This example builds a 12-column table by concatenating three thematic
WikiTable-style tables, then annotates it through the similarity-based and
contiguous splitters and compares the groupings.

Run:  python examples/wide_tables.py
"""

from repro import Doduo, DoduoConfig
from repro.core import PipelineConfig, build_knowledge_base, build_pretrained_lm
from repro.core.wide import annotate_wide, split_wide_table
from repro.datasets import Table, generate_wikitable_dataset, split_dataset


def make_wide_table(tables) -> Table:
    """Concatenate several tables side by side into one wide table."""
    columns = [col for table in tables for col in table.columns]
    return Table(columns=columns, table_id="wide-concat")


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=2)
    print("building substrate (tokenizer + pre-trained LM)...")
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    dataset = generate_wikitable_dataset(
        num_tables=250, seed=7, kb=build_knowledge_base(pipeline)
    )
    splits = split_dataset(dataset, seed=1)
    print(f"fine-tuning on {len(splits.train)} tables...")
    model = Doduo.train_on(
        splits.train,
        tokenizer,
        encoder_config=pipeline.encoder_config(tokenizer.vocab_size),
        config=DoduoConfig(epochs=8, batch_size=8, max_tokens_per_column=16),
        valid_dataset=splits.valid,
        pretrained_encoder_state=pretrained.encoder.state_dict(),
    )

    # A 'wide' table: three unrelated topical tables glued together.
    sources = [t for t in splits.test.tables if t.num_columns >= 3][:3]
    wide = make_wide_table(sources)
    print(f"\nwide table: {wide.num_columns} columns from {len(sources)} sources")

    for strategy in ("contiguous", "similarity"):
        groups = split_wide_table(wide, max_columns=4, strategy=strategy)
        print(f"\n{strategy} groups: {groups}")
        annotated = annotate_wide(model, wide, max_columns=4, strategy=strategy)
        for c, names in enumerate(annotated.coltypes):
            truth = ",".join(wide.columns[c].type_labels)
            print(f"  col {c:<2} true={truth:<28} predicted={', '.join(names)}")

    print("\nreading: both strategies annotate every column; similarity "
          "grouping tends to reunite columns from the same source table, "
          "recovering more of the original context.")


if __name__ == "__main__":
    main()
