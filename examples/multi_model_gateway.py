"""Multi-model serving: registry routes, eviction, and the asyncio API.

Walkthrough:
    1. fine-tune TWO models over the same label space (a "stable" model and
       a quick "canary" variant — in production these would be different
       checkpoints of the same service);
    2. register both in a ModelRegistry and serve an interleaved mixed
       corpus through ONE AnnotationGateway, routed per request;
    3. show fingerprint routing (content-addressed model selection);
    4. serve the same traffic from a coroutine with the asyncio-native
       asubmit/astream API — no thread burned per in-flight request;
    5. bound resident models with max_live and watch LRU eviction reload
       transparently.

Run:  PYTHONPATH=src python examples/multi_model_gateway.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.core import Doduo, DoduoConfig, DoduoTrainer, save_annotator
from repro.datasets import generate_wikitable_dataset
from repro.nn import TransformerConfig
from repro.serving import AnnotationGateway, ModelRegistry, QueueConfig
from repro.text import train_wordpiece


def train_variant(dataset, tokenizer, seed: int, epochs: int) -> DoduoTrainer:
    encoder_config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(epochs=epochs, batch_size=8, seed=seed,
                         keep_best_checkpoint=False)
    trainer = DoduoTrainer(dataset, tokenizer, encoder_config, config)
    trainer.train()
    return trainer


def main() -> None:
    # 1. Two models over one label space.
    dataset = generate_wikitable_dataset(num_tables=40, seed=3, max_rows=4)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=800)
    stable = train_variant(dataset, tokenizer, seed=0, epochs=3)
    canary = train_variant(dataset, tokenizer, seed=1, epochs=1)
    tables = dataset.tables[:6]

    # 2. One gateway, two routes.  In-memory registrations are live (and
    #    pinned) immediately; bundle-path registrations load lazily.
    registry = ModelRegistry()
    registry.register("stable", stable)   # first registered = default route
    registry.register("canary", canary)
    with AnnotationGateway(registry, QueueConfig(max_latency=0.01)) as gateway:
        for table in tables[:2]:
            baseline = gateway.annotate(table)                  # default route
            candidate = gateway.annotate(table, model="canary")
            agree = baseline.coltypes == candidate.coltypes
            print(f"{table.table_id}: stable={baseline.coltypes[0]} "
                  f"canary={candidate.coltypes[0]} agree={agree}")

        # 3. Fingerprint routing: pin the exact weights you validated.
        fingerprint = registry.fingerprint_of("stable")
        pinned = gateway.annotate(tables[0], model=fingerprint)
        print(f"fingerprint route {fingerprint[:12]}… -> "
              f"{pinned.coltypes[0]} (same engine as 'stable')")

        # 4. The asyncio-native path: identical bytes, no blocked loop.
        async def serve_async():
            results = []
            async for result in gateway.astream(tables, model="canary"):
                results.append(result)
            return results

        async_results = asyncio.run(serve_async())
        print(f"astream served {len(async_results)} tables on the "
              f"canary route")
        stats = gateway.stats
        print(f"per-model annotations: "
              f"{ {name: s.unique_annotated for name, s in sorted(stats.models.items())} }")

    # 5. Bounded residency: save bundles, register by path, cap max_live.
    with tempfile.TemporaryDirectory() as root:
        for name, trainer in (("stable", stable), ("canary", canary)):
            save_annotator(Doduo(trainer), Path(root) / name)
        bounded = ModelRegistry(max_live=1)
        bounded.register("stable", Path(root) / "stable")
        bounded.register("canary", Path(root) / "canary")
        with AnnotationGateway(bounded) as gateway:
            gateway.annotate(tables[0], model="stable")   # loads stable
            gateway.annotate(tables[0], model="canary")   # evicts stable
            gateway.annotate(tables[0], model="stable")   # reloads, same bytes
        print(f"max_live=1: loads={bounded.stats.loads} "
              f"evictions={bounded.stats.evictions} "
              f"reloads={bounded.stats.reloads}")


if __name__ == "__main__":
    main()
