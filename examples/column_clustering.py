"""Case study: clustering semantically similar columns (paper Section 7).

A data scientist ("Sofia") filters an enterprise HR database down to 10
jobsearch/review tables with 50 columns and wants to group semantically
similar columns.  This example reproduces the paper's workflow:

* train DODUO on WikiTable (a *different* domain — the case study
  demonstrates transfer),
* embed every enterprise column with the contextualized column embeddings,
* k-means the embeddings and compare against fastText and schema-matching
  baselines with Homogeneity / Completeness / V-measure (Table 9).

Run:  python examples/column_clustering.py
"""

from repro.core import (
    DoduoConfig,
    PipelineConfig,
    build_knowledge_base,
    build_pretrained_lm,
    make_trainer,
)
from repro.datasets import generate_enterprise_dataset, generate_wikitable_dataset
from repro.matching import FastTextLike, run_case_study


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=2)
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    # Out-of-domain training: WikiTable, not the enterprise database.
    wikitable = generate_wikitable_dataset(
        num_tables=250, seed=7, kb=build_knowledge_base(pipeline)
    )
    print(f"training DODUO on {len(wikitable)} WikiTable-style tables...")
    trainer = make_trainer(
        wikitable,
        tokenizer,
        pipeline,
        DoduoConfig(epochs=10, batch_size=8, max_tokens_per_column=16,
                    keep_best_checkpoint=False),
        pretrained=pretrained,
    )
    trainer.train()

    # Sofia's 10 tables, 50 columns, 15 ground-truth clusters.
    enterprise = generate_enterprise_dataset(seed=23)
    print(f"enterprise database: {len(enterprise.tables)} tables, "
          f"{sum(t.num_columns for t in enterprise.tables)} columns")

    # fastText baseline trained on the enterprise cell text.
    fasttext = FastTextLike(dim=32, seed=0)
    fasttext.train(enterprise.all_cell_text(), epochs=2)

    result = run_case_study(enterprise, trainer, fasttext, seed=0)
    print(f"\n{'method':40s} {'Prec.':>7s} {'Recall':>7s} {'F1':>7s}")
    for method, h, c, v in result.rows():
        print(f"{method:40s} {h * 100:7.2f} {c * 100:7.2f} {v * 100:7.2f}")
    print(f"\nbest method: {result.best_method()}")


if __name__ == "__main__":
    main()
