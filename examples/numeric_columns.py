"""Numeric column types and magnitude embeddings (Section 3.1 / Table 5).

DODUO casts all cells to strings, which the paper identifies as its weak
spot on numeric column types (Table 5: ranking at 33.2 F1, capacity at
62.6).  This example:

    1. trains the paper's string-only model and the numeric-embedding
       extension (``DoduoConfig(use_numeric_embeddings=True)``) on the same
       VizNet-style corpus,
    2. compares per-class F1 on the 15 most numeric types, with each type's
       %num (fraction of cells castable to a number), mirroring Table 5.

Run:  python examples/numeric_columns.py
"""

import numpy as np

from repro import Doduo, DoduoConfig
from repro.core import PipelineConfig, build_pretrained_lm
from repro.datasets import (
    NUMERIC_TYPES_TABLE5,
    generate_viznet_dataset,
    numeric_fraction,
    split_dataset,
)
from repro.evaluation import per_class_f1, render_table


def train(variant_name, config, splits, tokenizer, pipeline, pretrained):
    print(f"training {variant_name}...")
    return Doduo.train_on(
        splits.train,
        tokenizer,
        encoder_config=pipeline.encoder_config(tokenizer.vocab_size),
        config=config,
        valid_dataset=splits.valid,
        pretrained_encoder_state=pretrained.encoder.state_dict(),
    )


def per_type_f1(model, test):
    y_true = np.concatenate([
        [test.type_id(col.type_labels[0]) for col in table.columns]
        for table in test.tables
    ])
    y_pred = np.concatenate(model.trainer.predict_types(test.tables))
    return per_class_f1(y_true, y_pred, test.num_types)


def main() -> None:
    pipeline = PipelineConfig(pretrain_epochs=2)
    print("building substrate (tokenizer + pre-trained LM)...")
    tokenizer, pretrained = build_pretrained_lm(pipeline)

    dataset = generate_viznet_dataset(num_tables=500, seed=11)
    splits = split_dataset(dataset, seed=2)
    base_config = dict(tasks=("type",), multi_label=False, epochs=12,
                       batch_size=8, max_tokens_per_column=16)

    plain = train("Doduo (strings only)", DoduoConfig(**base_config),
                  splits, tokenizer, pipeline, pretrained)
    numeric = train(
        "Doduo + numeric embeddings",
        DoduoConfig(use_numeric_embeddings=True, **base_config),
        splits, tokenizer, pipeline, pretrained,
    )

    plain_f1 = per_type_f1(plain, splits.test)
    numeric_f1 = per_type_f1(numeric, splits.test)

    # %num per type, measured on the test tables (the Table 5 statistic).
    cells = {}
    for table in splits.test.tables:
        for col in table.columns:
            cells.setdefault(col.type_labels[0], []).extend(col.values)

    rows = []
    for name in NUMERIC_TYPES_TABLE5:
        type_id = splits.test.type_id(name)
        pct_num = numeric_fraction(cells.get(name, [])) * 100
        rows.append((
            name, f"{pct_num:.1f}",
            f"{plain_f1[type_id].f1 * 100:.2f}",
            f"{numeric_f1[type_id].f1 * 100:.2f}",
        ))
    print()
    print(render_table(
        ("type", "%num", "strings-only F1", "+numeric emb F1"),
        rows,
        title="Table 5 types: effect of magnitude embeddings",
    ))

    mean_plain = np.mean([plain_f1[splits.test.type_id(n)].f1
                          for n in NUMERIC_TYPES_TABLE5])
    mean_numeric = np.mean([numeric_f1[splits.test.type_id(n)].f1
                            for n in NUMERIC_TYPES_TABLE5])
    print(f"\nmean F1 over numeric types: strings-only {mean_plain:.3f}, "
          f"+numeric embeddings {mean_numeric:.3f}")


if __name__ == "__main__":
    main()
