"""Multi-process pool saturation: `repro serve --workers N` vs N=1.

Not a paper table — this measures the ISSUE-6 serving pool: the
multi-process front door (shared listener, per-worker gateway stacks,
cross-process cache fabric) against the single-worker baseline, over a
connections x workers grid.

Each cell serves the same corpus of *distinct* tables through a fresh
cold cache directory, so every request costs a real encoder pass — the
work the extra processes are supposed to parallelize.  Clients are
work-stealing threads over pre-serialized request bytes (write a
pipelined batch, read the answers back), so the measuring process adds
no JSON encode cost inside the timed region and the bottleneck stays on
the serving side.

The pool is launched through the real CLI (`repro serve --listen
127.0.0.1:0 --workers N`) in a subprocess with BLAS threading pinned to
one thread per worker — otherwise a multi-threaded BLAS lets the
1-worker baseline borrow every core and the comparison measures BLAS,
not the pool.

Acceptance bar: >= 1.7x throughput at ``--workers 2`` over
``--workers 1`` at the highest connection count (held slightly looser
at CI smoke scale, where tables are tiny and per-request wire overhead
weighs more).  The bar only applies where it is physically reachable:
on a single-core host two processes time-share one CPU and the best
possible ratio is ~1.0x, so there the bench instead asserts the pool
does not *collapse* throughput (>= 0.75x — supervision and fabric
overhead stay in the noise) and tags the published summary
``cpu_limited`` so the artifact is not misread as a scaling failure.
"""

import collections
import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from common import SMOKE, print_block, print_table

from repro.core import Doduo, save_annotator
from repro.datasets import generate_wikitable_dataset
from repro.io import table_to_dict

WORKERS_GRID = [1, 2] if SMOKE else [1, 2, 4]
CONNECTIONS_GRID = [1, 2, 4] if SMOKE else [1, 2, 4, 8]
CORPUS_TABLES = 192 if SMOKE else 512
PIPELINE_DEPTH = 8
MULTI_CORE = len(os.sched_getaffinity(0)) >= 2
if MULTI_CORE:
    SPEEDUP_FLOOR = 1.5 if SMOKE else 1.7
else:
    SPEEDUP_FLOOR = 0.75  # single CPU: processes time-share one core
RESULTS_PATH = Path(__file__).parent / "multiproc_saturation.json"


def _serving_env():
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["PYTHONUNBUFFERED"] = "1"
    # One BLAS thread per worker process: the pool's parallelism must
    # come from the workers, not from a thread pool the 1-worker
    # baseline would share.
    for var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
                "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS"):
        env[var] = "1"
    return env


def _start_pool(bundle, cache_dir, workers, env):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(bundle),
            "--listen", "127.0.0.1:0", "--workers", str(workers),
            "--cache-dir", str(cache_dir),
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    banner = process.stderr.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", banner)
    assert match, f"pool did not start: {banner!r}"
    return process, (match.group(1), int(match.group(2)))


def _ask(address, record):
    with socket.create_connection(address, timeout=300) as sock:
        with sock.makefile("rw", encoding="utf-8", newline="\n") as stream:
            stream.write(json.dumps(record) + "\n")
            stream.flush()
            return json.loads(stream.readline())


def _warm_workers(address, workers, warmup_record):
    """Annotate a sacrificial table until every worker has loaded the
    model, so the timed region measures serving, not checkpoint loads."""
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        _ask(address, warmup_record)
        stats = _ask(address, {"op": "stats"})
        busy = [w for w in stats["pool"]["per_worker"] if w["completed"] > 0]
        if len(busy) >= workers:
            return
    raise AssertionError("not every worker came up warm")


def _client(address, work, errors):
    try:
        with socket.create_connection(address, timeout=300) as sock:
            stream = sock.makefile("rwb")
            while True:
                batch = []
                try:
                    for _ in range(PIPELINE_DEPTH):
                        batch.append(work.popleft())
                except IndexError:
                    pass
                if not batch:
                    break
                stream.write(b"".join(batch))
                stream.flush()
                for _ in batch:
                    assert stream.readline(), "connection died mid-corpus"
            stream.close()
    except Exception as error:  # noqa: BLE001 - surfaced by the main thread
        errors.append(error)


def _run_cell(address, request_bytes, connections):
    work = collections.deque(request_bytes)
    errors = []
    threads = [
        threading.Thread(target=_client, args=(address, work, errors))
        for _ in range(connections)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    assert not errors, errors[0]
    assert not work
    return seconds


def run_experiment():
    tmp = Path(tempfile.mkdtemp(prefix="bench-multiproc-"))
    bundle = tmp / "bundle"

    # A tiny self-contained model: the bench measures pool mechanics
    # (socket sharding, process parallelism, fabric), which do not care
    # about model quality — only that every request costs a forward pass.
    # max_rows=8 keeps each encoder pass heavy enough (several ms) that
    # a cell's drain time is dominated by serving work, not by pool
    # startup or client scheduling noise.
    corpus = generate_wikitable_dataset(
        num_tables=CORPUS_TABLES + 1, seed=97, max_rows=8
    )
    from repro.core import DoduoConfig, DoduoTrainer
    from repro.nn import TransformerConfig
    from repro.text import train_wordpiece

    tokenizer = train_wordpiece(corpus.all_cell_text(), vocab_size=500)
    trainer = DoduoTrainer(
        corpus,
        tokenizer,
        TransformerConfig(
            vocab_size=tokenizer.vocab_size, hidden_dim=32, num_layers=2,
            num_heads=2, ffn_dim=64, max_position=160, num_segments=8,
            dropout=0.0,
        ),
        DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False),
    )
    trainer.train()
    save_annotator(Doduo(trainer), bundle)

    warmup_record = table_to_dict(corpus.tables[-1])
    request_bytes = []
    for i, table in enumerate(corpus.tables[:CORPUS_TABLES]):
        record = table_to_dict(table)
        record["id"] = i
        request_bytes.append((json.dumps(record) + "\n").encode("utf-8"))

    env = _serving_env()
    grid = {}
    rows = []
    for workers in WORKERS_GRID:
        for connections in CONNECTIONS_GRID:
            cache_dir = tmp / f"cache-w{workers}-c{connections}"  # cold
            process, address = _start_pool(bundle, cache_dir, workers, env)
            try:
                _warm_workers(address, workers, warmup_record)
                seconds = _run_cell(address, request_bytes, connections)
                stats = _ask(address, {"op": "stats"})
            finally:
                process.terminate()
                process.wait(timeout=60)
            served = stats["gateway"]["completed"]
            assert served >= CORPUS_TABLES, (served, CORPUS_TABLES)
            throughput = CORPUS_TABLES / seconds
            grid[(workers, connections)] = throughput
            rows.append((
                str(workers), str(connections), f"{seconds:.3f}",
                f"{throughput:.1f}",
                f"{throughput / grid[(1, connections)]:.2f}",
            ))
    print_table(
        f"Pool saturation ({CORPUS_TABLES} distinct tables, cold cache)",
        ["Workers", "Connections", "Seconds", "Tables/s", "vs 1 worker"],
        rows,
    )

    top = max(CONNECTIONS_GRID)
    speedup_2w = grid[(2, top)] / grid[(1, top)]
    summary = {
        "smoke": SMOKE,
        "cpus": len(os.sched_getaffinity(0)),
        "cpu_limited": not MULTI_CORE,
        "corpus_tables": CORPUS_TABLES,
        "pipeline_depth": PIPELINE_DEPTH,
        "grid": [
            {
                "workers": workers,
                "connections": connections,
                "tables_per_second": round(throughput, 2),
            }
            for (workers, connections), throughput in sorted(grid.items())
        ],
        "speedup_2_workers_at_max_connections": round(speedup_2w, 3),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print_block("multiproc-json: " + json.dumps(summary))
    return summary


def test_multiproc_saturation(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The acceptance bar: a second worker process buys real throughput
    # on a cold cache — the pool parallelizes encoder passes, it does
    # not just shard the socket.  On a single-core host the floor drops
    # to a no-collapse check (see module docstring): two processes on
    # one CPU cannot beat 1.0x no matter how good the pool is.
    assert (
        summary["speedup_2_workers_at_max_connections"]
        >= summary["speedup_floor"]
    )
