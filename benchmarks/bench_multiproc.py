"""Multi-process pool saturation: `repro serve --workers N` vs N=1.

Not a paper table — this measures the ISSUE-6 serving pool: the
multi-process front door (shared listener, per-worker gateway stacks,
cross-process cache fabric) against the single-worker baseline, over a
connections x workers grid.

Each cell serves the same corpus of *distinct* tables through a fresh
cold cache directory, so every request costs a real encoder pass — the
work the extra processes are supposed to parallelize.  Clients are
work-stealing threads over pre-serialized request bytes (write a
pipelined batch, read the answers back), so the measuring process adds
no JSON encode cost inside the timed region and the bottleneck stays on
the serving side.

The pool is launched through the real CLI (`repro serve --listen
127.0.0.1:0 --workers N`) in a subprocess with BLAS threading pinned to
one thread per worker — otherwise a multi-threaded BLAS lets the
1-worker baseline borrow every core and the comparison measures BLAS,
not the pool.

Acceptance bar: >= 1.7x throughput at ``--workers 2`` over
``--workers 1`` at the highest connection count (held slightly looser
at CI smoke scale, where tables are tiny and per-request wire overhead
weighs more).  The bar only applies where it is physically reachable:
on a single-core host two processes time-share one CPU and the best
possible ratio is ~1.0x, so there the bench instead asserts the pool
does not *collapse* throughput (>= 0.75x — supervision and fabric
overhead stay in the noise) and tags the published summary
``cpu_limited`` so the artifact is not misread as a scaling failure.

A second experiment measures the shared weight arena (``--weight-arena``)
on a large random-init model where weights dominate worker memory:

* **per-extra-worker RSS** — private (non-COW, non-file-backed) RSS per
  worker from ``/proc/<pid>/smaps_rollup``, with and without the arena.
  Without it every worker deserializes its own private copy of
  ``weights.npz``; with it all workers map the same parent-built arena
  file, so the marginal cost of a worker drops by the weight payload.
  Acceptance bar: >= 50% reduction.
* **crash-restart** — SIGKILL the only worker of a 1-worker pool and
  time until a request is answered again.  The restarted worker's
  ``arena_remaps`` counter proves structurally that it re-attached the
  pre-built arena instead of re-parsing the bundle; the latencies for
  both modes are reported (not asserted — wall-clock is host noise).
"""

import collections
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from common import SMOKE, print_block, print_table

from repro.core import Doduo, save_annotator
from repro.datasets import generate_wikitable_dataset
from repro.io import table_to_dict

WORKERS_GRID = [1, 2] if SMOKE else [1, 2, 4]
CONNECTIONS_GRID = [1, 2, 4] if SMOKE else [1, 2, 4, 8]
CORPUS_TABLES = 192 if SMOKE else 512
PIPELINE_DEPTH = 8
MULTI_CORE = len(os.sched_getaffinity(0)) >= 2
if MULTI_CORE:
    SPEEDUP_FLOOR = 1.5 if SMOKE else 1.7
else:
    SPEEDUP_FLOOR = 0.75  # single CPU: processes time-share one core
RESULTS_PATH = Path(__file__).parent / "multiproc_saturation.json"

#: The arena experiment's model: large enough that the weight payload
#: dominates a worker's private memory (the effect the arena removes),
#: small enough to random-init and save in seconds.  ~13M params ≈ 52 MB
#: of float32 weights at hidden 512 x 4 layers.
ARENA_HIDDEN = 512
ARENA_LAYERS = 4
ARENA_WORKERS = 2


def _serving_env():
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["PYTHONUNBUFFERED"] = "1"
    # One BLAS thread per worker process: the pool's parallelism must
    # come from the workers, not from a thread pool the 1-worker
    # baseline would share.
    for var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
                "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS"):
        env[var] = "1"
    return env


def _start_pool(bundle, cache_dir, workers, env, extra=()):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(bundle),
            "--listen", "127.0.0.1:0", "--workers", str(workers),
            "--cache-dir", str(cache_dir), *extra,
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    banner = process.stderr.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", banner)
    assert match, f"pool did not start: {banner!r}"
    return process, (match.group(1), int(match.group(2)))


def _ask(address, record):
    with socket.create_connection(address, timeout=300) as sock:
        with sock.makefile("rw", encoding="utf-8", newline="\n") as stream:
            stream.write(json.dumps(record) + "\n")
            stream.flush()
            return json.loads(stream.readline())


def _warm_workers(address, workers, warmup_record):
    """Annotate a sacrificial table until every worker has loaded the
    model, so the timed region measures serving, not checkpoint loads."""
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        _ask(address, warmup_record)
        stats = _ask(address, {"op": "stats"})
        busy = [w for w in stats["pool"]["per_worker"] if w["completed"] > 0]
        if len(busy) >= workers:
            return
    raise AssertionError("not every worker came up warm")


def _client(address, work, errors):
    try:
        with socket.create_connection(address, timeout=300) as sock:
            stream = sock.makefile("rwb")
            while True:
                batch = []
                try:
                    for _ in range(PIPELINE_DEPTH):
                        batch.append(work.popleft())
                except IndexError:
                    pass
                if not batch:
                    break
                stream.write(b"".join(batch))
                stream.flush()
                for _ in batch:
                    assert stream.readline(), "connection died mid-corpus"
            stream.close()
    except Exception as error:  # noqa: BLE001 - surfaced by the main thread
        errors.append(error)


def _run_cell(address, request_bytes, connections):
    work = collections.deque(request_bytes)
    errors = []
    threads = [
        threading.Thread(target=_client, args=(address, work, errors))
        for _ in range(connections)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    assert not errors, errors[0]
    assert not work
    return seconds


def _private_rss_kb(pid):
    """Private RSS of a process in kB (``Private_Clean + Private_Dirty``
    from ``smaps_rollup``).

    Under the pool's fork start method, pages COW-shared with the parent
    and file-backed mappings (the arena) are excluded — what remains is
    exactly the marginal memory cost of one more worker.
    """
    private = 0
    with open(f"/proc/{pid}/smaps_rollup") as handle:
        for line in handle:
            if line.startswith(("Private_Clean:", "Private_Dirty:")):
                private += int(line.split()[1])
    return private


def _arena_bundle(tmp, corpus, tokenizer):
    """A bundle whose weights dominate worker memory, random-init.

    The arena experiment measures memory sharing and restart mechanics,
    neither of which cares about model quality — and training a model
    this size would dominate the bench's runtime.
    """
    from repro.core import DoduoConfig, DoduoTrainer
    from repro.nn import TransformerConfig

    trainer = DoduoTrainer(
        corpus,
        tokenizer,
        TransformerConfig(
            vocab_size=tokenizer.vocab_size, hidden_dim=ARENA_HIDDEN,
            num_layers=ARENA_LAYERS, num_heads=8, ffn_dim=4 * ARENA_HIDDEN,
            max_position=160, num_segments=8, dropout=0.0,
        ),
        DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False),
    )
    bundle = tmp / "bundle-arena"
    save_annotator(Doduo(trainer), bundle)
    return bundle, trainer.model.num_parameters()


def _measure_worker_rss(bundle, tmp, env, arena, warmup_record):
    """Mean per-worker private RSS (kB) of a warm pool, and the merged
    ``arena_remaps`` counter proving which load path the workers took."""
    cache_dir = tmp / f"cache-arena-mem-{'on' if arena else 'off'}"
    extra = ("--weight-arena",) if arena else ()
    process, address = _start_pool(bundle, cache_dir, ARENA_WORKERS, env, extra)
    try:
        _warm_workers(address, ARENA_WORKERS, warmup_record)
        stats = _ask(address, {"op": "stats"})
        pids = [worker["pid"] for worker in stats["pool"]["per_worker"]]
        private = [_private_rss_kb(pid) for pid in pids]
        remaps = stats["registry"].get("arena_remaps", 0)
    finally:
        process.terminate()
        process.wait(timeout=60)
    return sum(private) / len(private), remaps


def _measure_crash_restart(bundle, tmp, env, arena, warmup_record):
    """SIGKILL the only worker and time until a request is answered.

    The timed region covers supervisor detection, respawn backoff, and
    the restarted worker's model load — the full outage a client sees.
    Returns the latency and the post-restart ``arena_remaps`` counter
    (the merged view only aggregates *live* workers, so a non-zero count
    can only come from the restarted worker's own load).
    """
    cache_dir = tmp / f"cache-arena-restart-{'on' if arena else 'off'}"
    extra = ("--weight-arena",) if arena else ()
    process, address = _start_pool(bundle, cache_dir, 1, env, extra)
    try:
        _warm_workers(address, 1, warmup_record)
        pid = _ask(address, {"op": "stats"})["pool"]["per_worker"][0]["pid"]
        os.kill(pid, signal.SIGKILL)
        start = time.perf_counter()
        deadline = start + 120
        while True:
            # A connection may land in the listener backlog before the
            # replacement worker accepts (blocking until it does — that
            # wait IS the restart latency) or get reset mid-flight;
            # retry resets until the pool answers again.
            try:
                _ask(address, warmup_record)
                break
            except (OSError, ValueError):
                if time.perf_counter() > deadline:
                    raise
                time.sleep(0.05)
        latency = time.perf_counter() - start
        remaps = _ask(address, {"op": "stats"})["registry"].get(
            "arena_remaps", 0
        )
    finally:
        process.terminate()
        process.wait(timeout=60)
    return latency, remaps


def _arena_experiment(tmp, env, corpus, tokenizer, warmup_record):
    bundle, params = _arena_bundle(tmp, corpus, tokenizer)
    rss = {}
    warm_remaps = {}
    restart = {}
    restart_remaps = {}
    for arena in (False, True):
        mode = "arena" if arena else "plain"
        rss[mode], warm_remaps[mode] = _measure_worker_rss(
            bundle, tmp, env, arena, warmup_record
        )
        restart[mode], restart_remaps[mode] = _measure_crash_restart(
            bundle, tmp, env, arena, warmup_record
        )
    reduction = 1.0 - rss["arena"] / rss["plain"]
    print_table(
        f"Shared weight arena ({params / 1e6:.1f}M params, "
        f"{ARENA_WORKERS} workers)",
        ["Mode", "Private RSS/worker", "Crash-restart", "Arena remaps"],
        [
            (mode, f"{rss[mode] / 1024:.1f} MB", f"{restart[mode]:.2f} s",
             str(warm_remaps[mode]))
            for mode in ("plain", "arena")
        ],
    )
    print_block(
        f"arena per-extra-worker private RSS reduction: {reduction:.1%} "
        f"(restart re-attached the arena: "
        f"{restart_remaps['arena']} remap(s), 0 bundle re-parses)"
    )
    return {
        "model_params": params,
        "weights_mb": round(params * 4 / 1e6, 1),
        "workers": ARENA_WORKERS,
        "worker_private_rss_mb": {
            mode: round(rss[mode] / 1024, 1) for mode in rss
        },
        "per_extra_worker_rss_reduction": round(reduction, 3),
        "warm_arena_remaps": warm_remaps["arena"],
        "restart_latency_seconds": {
            mode: round(restart[mode], 3) for mode in restart
        },
        "restart_arena_remaps": restart_remaps["arena"],
    }


def run_experiment():
    tmp = Path(tempfile.mkdtemp(prefix="bench-multiproc-"))
    bundle = tmp / "bundle"

    # A tiny self-contained model: the bench measures pool mechanics
    # (socket sharding, process parallelism, fabric), which do not care
    # about model quality — only that every request costs a forward pass.
    # max_rows=8 keeps each encoder pass heavy enough (several ms) that
    # a cell's drain time is dominated by serving work, not by pool
    # startup or client scheduling noise.
    corpus = generate_wikitable_dataset(
        num_tables=CORPUS_TABLES + 1, seed=97, max_rows=8
    )
    from repro.core import DoduoConfig, DoduoTrainer
    from repro.nn import TransformerConfig
    from repro.text import train_wordpiece

    tokenizer = train_wordpiece(corpus.all_cell_text(), vocab_size=500)
    trainer = DoduoTrainer(
        corpus,
        tokenizer,
        TransformerConfig(
            vocab_size=tokenizer.vocab_size, hidden_dim=32, num_layers=2,
            num_heads=2, ffn_dim=64, max_position=160, num_segments=8,
            dropout=0.0,
        ),
        DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False),
    )
    trainer.train()
    save_annotator(Doduo(trainer), bundle)

    warmup_record = table_to_dict(corpus.tables[-1])
    request_bytes = []
    for i, table in enumerate(corpus.tables[:CORPUS_TABLES]):
        record = table_to_dict(table)
        record["id"] = i
        request_bytes.append((json.dumps(record) + "\n").encode("utf-8"))

    env = _serving_env()
    grid = {}
    rows = []
    for workers in WORKERS_GRID:
        for connections in CONNECTIONS_GRID:
            cache_dir = tmp / f"cache-w{workers}-c{connections}"  # cold
            process, address = _start_pool(bundle, cache_dir, workers, env)
            try:
                _warm_workers(address, workers, warmup_record)
                seconds = _run_cell(address, request_bytes, connections)
                stats = _ask(address, {"op": "stats"})
            finally:
                process.terminate()
                process.wait(timeout=60)
            served = stats["gateway"]["completed"]
            assert served >= CORPUS_TABLES, (served, CORPUS_TABLES)
            throughput = CORPUS_TABLES / seconds
            grid[(workers, connections)] = throughput
            rows.append((
                str(workers), str(connections), f"{seconds:.3f}",
                f"{throughput:.1f}",
                f"{throughput / grid[(1, connections)]:.2f}",
            ))
    print_table(
        f"Pool saturation ({CORPUS_TABLES} distinct tables, cold cache)",
        ["Workers", "Connections", "Seconds", "Tables/s", "vs 1 worker"],
        rows,
    )

    arena = _arena_experiment(tmp, env, corpus, tokenizer, warmup_record)

    top = max(CONNECTIONS_GRID)
    speedup_2w = grid[(2, top)] / grid[(1, top)]
    summary = {
        "smoke": SMOKE,
        "cpus": len(os.sched_getaffinity(0)),
        "cpu_limited": not MULTI_CORE,
        "corpus_tables": CORPUS_TABLES,
        "pipeline_depth": PIPELINE_DEPTH,
        "grid": [
            {
                "workers": workers,
                "connections": connections,
                "tables_per_second": round(throughput, 2),
            }
            for (workers, connections), throughput in sorted(grid.items())
        ],
        "speedup_2_workers_at_max_connections": round(speedup_2w, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "arena": arena,
    }
    RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print_block("multiproc-json: " + json.dumps(summary))
    return summary


def test_multiproc_saturation(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The acceptance bar: a second worker process buys real throughput
    # on a cold cache — the pool parallelizes encoder passes, it does
    # not just shard the socket.  On a single-core host the floor drops
    # to a no-collapse check (see module docstring): two processes on
    # one CPU cannot beat 1.0x no matter how good the pool is.
    assert (
        summary["speedup_2_workers_at_max_connections"]
        >= summary["speedup_floor"]
    )
    # The arena bars: sharing the parent-built weight arena must cut a
    # worker's private memory by at least half (the weight payload no
    # longer has a per-process copy), every warm worker must have loaded
    # through the arena path, and a crash-restarted worker must have
    # re-attached the arena (merged stats only aggregate live workers,
    # so this count can only come from the restarted process).
    arena = summary["arena"]
    assert arena["per_extra_worker_rss_reduction"] >= 0.5, arena
    assert arena["warm_arena_remaps"] == arena["workers"], arena
    assert arena["restart_arena_remaps"] >= 1, arena
