"""Table 2: dataset description.

Paper numbers: WikiTable — 580,171 tables, 3,230,757 columns, 255 column
types, 121 column relations; VizNet — 78,733 tables, 119,360 columns, 78
column types, no relations.

Our synthetic corpora are orders of magnitude smaller (CPU substrate) but
must match the *shape* the experiments rely on: WikiTable multi-label with
relation annotations, VizNet single-label without relations and with
single-column tables present (the "Full" vs "Multi-column only" split).
"""

from repro.datasets import dataset_statistics

from common import print_table, viznet_splits, wikitable_splits


def run_experiment():
    wikitable = wikitable_splits()
    viznet = viznet_splits()

    stats = {}
    for name, splits in (("WikiTable", wikitable), ("VizNet", viznet)):
        merged_tables = (
            splits.train.tables + splits.valid.tables + splits.test.tables
        )
        dataset = splits.train.subset([], name=name)
        dataset.tables.extend(merged_tables)
        stats[name] = dataset_statistics(dataset)

    print_table(
        "Table 2: dataset description",
        ["Name", "# tables", "# col", "# col types", "# col rels"],
        [stats[name].as_row() for name in ("WikiTable", "VizNet")],
    )
    return stats


def test_table2_datasets(benchmark):
    stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    wikitable, viznet = stats["WikiTable"], stats["VizNet"]
    # WikiTable: multi-label, annotated relations (the paper's protocol).
    assert wikitable.is_multi_label
    assert wikitable.num_relations > 0
    assert wikitable.num_annotated_pairs > 0
    # VizNet: single-label, no relations, single-column tables present.
    assert not viznet.is_multi_label
    assert viznet.num_relations == 0
    assert viznet.single_column_tables > 0
