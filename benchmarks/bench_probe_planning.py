"""Probe planning: encoded-pair reduction vs relation recall (Section 6.2).

The wide-table cost story: exhaustively probing a k-column table costs
k(k-1)/2 relation-head pairs — 120 encoder pair passes at k=16.  The
:class:`~repro.core.probe.ProbePlanner` prunes that universe with model-free
prefilters, ranks the survivors, and keeps a budgeted subset.  This bench
measures what that buys and what it costs on stitched multi-schema wide
tables (four WikiTable schemas side by side, so the gold pairs are each
schema's subject column against its own attributes — exactly the structure a
planner must rediscover without labels).

The model under the planner is the single-column (DosoloSCol) variant: its
relation head encodes each probed pair as its own two-column sequence, so
"pairs planned" is literally "encoder passes paid for" — the O(k²) cost the
planner exists to avoid — and its solo-column type pass stays
in-distribution on arbitrarily wide tables (the table-wise model would have
to split a 16-column serialization first; see ``core/wide.py``).

Two planner modes are swept across budgets:

* ``model_free`` — prefilters + ranking only, no model input (what the
  serving engine's ``probe_mode="planned"`` does inline).
* ``type_assisted`` — a prior type pass feeds the
  :func:`~repro.core.probe.relation_type_compatibility` prefilter (the
  two-phase pattern: cheap per-column types first, then plan the pairs).

For each budget the bench reports encoded pairs per table, the reduction
factor over exhaustive, and recall/precision of the planned run's gold-pair
relation predictions against the exhaustive run's own predictions.  The
full curve lands in ``benchmarks/probe_curves.json`` (uploaded as a CI
artifact next to ``multiproc_saturation.json``).

Acceptance gate: some budget reaches >= 5x fewer encoded pairs while
keeping >= 0.95 recall of the exhaustive predictions.
"""

import json
from pathlib import Path

import numpy as np

from repro.core.probe import (
    ProbeBudget,
    ProbePlanner,
    relation_type_compatibility,
    subject_type_priors,
)
from repro.datasets import Column, Table
from repro.datasets.wikitable import SCHEMAS, generate_table

from common import (
    SMOKE,
    custom_wikitable_trainer,
    knowledge_base,
    print_table,
    wikitable_splits,
)

# Four 4-column schemas stitched side by side -> 16 columns, 120 pairs.
STITCH_SCHEMAS = ("films_crew", "rosters", "albums", "books")
NUM_TABLES = 6 if SMOKE else 16
NUM_ROWS = 6
BUDGETS = (6, 9, 12, 16, 20, 24, None)  # None = prefilter-only

CURVES_FILE = Path(__file__).parent / "probe_curves.json"


def stitch_wide_table(kb, rng, index):
    """One 16-column table from four schemas, labels stripped for planning.

    Returns ``(table, gold)`` where ``gold`` maps each offset-shifted gold
    pair to its relation name — the planner and the model never see it.
    """
    by_name = {schema.name: schema for schema in SCHEMAS}
    columns = []
    gold = {}
    for name in STITCH_SCHEMAS:
        piece = generate_table(
            kb, by_name[name], rng, min_rows=NUM_ROWS, max_rows=NUM_ROWS,
            table_id=f"{name}-{index}",
        )
        offset = len(columns)
        for (i, j), relations in piece.relation_labels.items():
            gold[(i + offset, j + offset)] = relations[0]
        columns.extend(
            Column(values=list(column.values), header=column.header)
            for column in piece.columns
        )
    return Table(columns=columns, table_id=f"stitch-{index}"), gold


def top_relation(trainer, probs):
    return trainer.dataset.relation_vocab[int(np.argmax(probs))]


def evaluate_budget(trainer, tables, gold, reference, budget, type_inputs):
    """Plan + annotate every table under ``budget``; score vs exhaustive."""
    planner = ProbePlanner(ProbeBudget(max_pairs=budget, per_column=2))
    plans = []
    for index, table in enumerate(tables):
        if type_inputs is None:
            plans.append(planner.plan_pairs(table))
        else:
            type_probs, compatibility, priors = type_inputs
            plans.append(
                planner.plan_pairs(
                    table,
                    type_probs=type_probs[index],
                    type_compatibility=compatibility,
                    subject_priors=priors,
                )
            )
    raw = trainer.annotate_batch(tables, pair_requests=plans)

    hits = covered = gold_total = 0
    for index, item in enumerate(raw):
        for pair, relation in reference[index].items():
            gold_total += 1
            if pair not in item.relation_probs:
                continue
            covered += 1
            if top_relation(trainer, item.relation_probs[pair]) == relation:
                hits += 1
    planned_total = sum(len(pairs) for pairs in plans)
    gold_planned = sum(
        1
        for index, pairs in enumerate(plans)
        for pair in pairs
        if pair in gold[index]
    )
    return {
        "budget": budget,
        "avg_planned": planned_total / len(tables),
        "reduction": (
            len(tables) * len(reference_universe(tables[0])) / planned_total
        ),
        "coverage": covered / gold_total,
        "recall": hits / gold_total,
        "precision": gold_planned / planned_total if planned_total else 0.0,
        "pairs_pruned": planner.pairs_pruned,
    }


def reference_universe(table):
    k = table.num_columns
    return [(i, j) for i in range(k) for j in range(i + 1, k)]


def run_experiment():
    # 14 epochs even in smoke mode: the type-assisted prefilter needs type
    # predictions that have converged past the label-prior plateau, and the
    # single-column model trains fast enough to afford it in CI.
    trainer = custom_wikitable_trainer("probe-scol", single_column=True,
                                       epochs=14)
    kb = knowledge_base()
    rng = np.random.default_rng(41)

    tables, gold = [], []
    for index in range(NUM_TABLES):
        table, pairs = stitch_wide_table(kb, rng, index)
        tables.append(table)
        gold.append(pairs)

    # Exhaustive reference: every pair probed; its gold-pair predictions
    # are the recall target (planning should change cost, not answers).
    universe = reference_universe(tables[0])
    exhaustive = trainer.annotate_batch(
        tables, pair_requests=[list(universe)] * len(tables)
    )
    reference = [
        {
            pair: top_relation(trainer, item.relation_probs[pair])
            for pair in table_gold
        }
        for item, table_gold in zip(exhaustive, gold)
    ]
    type_probs = [item.type_probs for item in exhaustive]
    train_split = wikitable_splits().train
    compatibility = relation_type_compatibility(train_split)
    priors = subject_type_priors(train_split)

    curves = {"model_free": [], "type_assisted": []}
    for budget in BUDGETS:
        curves["model_free"].append(
            evaluate_budget(trainer, tables, gold, reference, budget, None)
        )
        curves["type_assisted"].append(
            evaluate_budget(
                trainer, tables, gold, reference, budget,
                (type_probs, compatibility, priors),
            )
        )

    # Byte-identity spot check: a planned probe of pair set S must match an
    # explicit request for S exactly (same floats, not just same argmax).
    planner = ProbePlanner(ProbeBudget(max_pairs=12))
    spot_pairs = planner.plan_pairs(tables[0])
    planned_raw = trainer.annotate_batch([tables[0]], probe_planner=planner)[0]
    explicit_raw = trainer.annotate_batch(
        [tables[0]], pair_requests=[spot_pairs]
    )[0]
    assert planned_raw.probed_pairs == explicit_raw.probed_pairs == spot_pairs
    byte_identical = all(
        np.array_equal(planned_raw.relation_probs[p], explicit_raw.relation_probs[p])
        for p in spot_pairs
    ) and np.array_equal(planned_raw.type_probs, explicit_raw.type_probs)
    assert byte_identical

    rows = []
    for mode, entries in curves.items():
        for entry in entries:
            rows.append((
                mode,
                "prefilter" if entry["budget"] is None else entry["budget"],
                f"{entry['avg_planned']:.1f}",
                f"{entry['reduction']:.1f}x",
                f"{entry['recall'] * 100:.1f}",
                f"{entry['precision'] * 100:.1f}",
                f"{entry['coverage'] * 100:.1f}",
            ))
    print_table(
        f"Probe planning on {NUM_TABLES} stitched 16-column tables "
        f"({len(universe)} exhaustive pairs)",
        ["Mode", "Budget", "Pairs/table", "Reduction", "Recall",
         "Precision", "Coverage"],
        rows,
    )

    payload = {
        "smoke": SMOKE,
        "num_tables": NUM_TABLES,
        "columns": tables[0].num_columns,
        "exhaustive_pairs": len(universe),
        "gold_pairs_per_table": len(gold[0]),
        "byte_identical_spot_check": bool(byte_identical),
        "curves": curves,
    }
    CURVES_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    best = max(
        (entry for entries in curves.values() for entry in entries
         if entry["reduction"] >= 5.0),
        key=lambda entry: entry["recall"],
        default=None,
    )
    payload["best_reduction_recall"] = None if best is None else best["recall"]
    return payload


def test_probe_planning(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert results["byte_identical_spot_check"]
    # The planner must make wide tables affordable without changing the
    # answers: >= 5x fewer encoded pairs at >= 0.95 recall of the
    # exhaustive run's gold-pair predictions.
    assert results["best_reduction_recall"] is not None
    assert results["best_reduction_recall"] >= 0.95
    # Prefilter-only planning never misses more than the duplicate/numeric
    # prefilters allow — coverage stays near total.
    prefilter = results["curves"]["model_free"][-1]
    assert prefilter["budget"] is None
    assert prefilter["coverage"] >= 0.95
