"""Serving throughput: legacy loop vs. engine strategies vs. the int8 tier.

Not a paper table — this benchmarks the serving stack on a 50-table
WikiTable workload:

* **legacy multi-pass** — the historical ``Doduo.annotate`` cost model
  (separate encoder passes for types, scores, the relation probe, and
  embeddings), reconstructed from the still-public ``predict_*`` entry
  points;
* **sequential engine** — one single-pass engine batch per table, float32
  fast kernels with their byte-identity proof gates.  This is the
  *float32 fast-kernel baseline* every later row is scored against;
* **batched engine** — length-bucketed padded batches of 8 and 16 tables
  (still float32, still exact-width buckets — the byte-identity contract
  forbids near-width packing on this path);
* **int8 serving tier** — ``precision="int8"`` with the optimizations the
  accuracy gate licenses as a package: quantized weights with fused
  elementwise kernels, no per-shape proof machinery, merged head groups,
  and near-width packed batches (``waste_budget``).

Every engine cell is measured **cold** (``cache_size=0``, sessions
invalidated first): the timed region includes session build, and with it
the float path's dark-launch proof runs and the int8 path's calibration
pass — the costs a fresh serving process actually pays.

The int8 rows come with an accuracy check: type/relation micro-F1 over
the workload, int8 vs the float32 baseline, must agree within half a
point, and the calibration gate must have passed (no silent float32
fallbacks).  Speedup and drift both land in the JSON summary, which is
also written to ``BENCH_serving.json`` (override with ``--json PATH``)
so CI can track the perf trajectory as an artifact.
"""

import json
import time
from pathlib import Path

import numpy as np

from common import (
    annotation_engine,
    doduo_wikitable,
    print_block,
    print_table,
    wikitable_splits,
)

from repro.core.trainer import default_relation_pairs
from repro.evaluation.metrics import multilabel_micro_prf

WORKLOAD_SIZE = 50

#: The int8 tier's serving configuration.  ``waste_budget`` opts into
#: near-width packed batches — licensed by the accuracy gate, forbidden
#: to the byte-identical float path — and the wider batch lets packing
#: actually merge neighbouring width buckets.
INT8_BATCH_SIZE = 16
INT8_WASTE_BUDGET = 256

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"


def _workload():
    """A 50-table workload cycled from the held-out split.

    Cycling repeats content when the split is smaller than the workload,
    which is why every engine below runs with the serialization cache
    disabled — repeated content must not inflate throughput.
    """
    source = wikitable_splits().test.tables
    return [source[i % len(source)] for i in range(WORKLOAD_SIZE)]


def _legacy_multi_pass(trainer, table):
    """The pre-engine annotate cost: four separate encoder passes."""
    trainer.predict_types([table])
    encoded = [trainer.serializer.serialize_table(table)]
    trainer.model.predict_type_probs(encoded, trainer.config.multi_label)
    pairs = default_relation_pairs(table)
    if trainer.model.relation_head is not None and pairs:
        trainer.model.predict_relation_probs(
            encoded, [(0, i, j) for i, j in pairs], trainer.config.multi_label
        )
    trainer.column_embeddings(table)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _micro_f1(results, tables, dataset):
    """Type/relation micro-F1 of engine results against dataset labels.

    ``trainer.evaluate`` runs through the trainer's own float session, so
    it cannot score what a differently-configured *engine* actually
    served; this recomputes the same micro-PRF from the annotation
    results themselves.  Gold pairs the engine did not probe count as
    misses — identically for every engine, so drift stays comparable.
    """
    type_true, type_pred = [], []
    rel_true, rel_pred = [], []
    for table, result in zip(tables, results):
        annotated = result.annotated
        for c, column in enumerate(table.columns):
            true_row = np.zeros(dataset.num_types, dtype=bool)
            for name in column.type_labels:
                true_row[dataset.type_id(name)] = True
            pred_row = np.zeros(dataset.num_types, dtype=bool)
            for name in annotated.coltypes[c]:
                pred_row[dataset.type_id(name)] = True
            type_true.append(true_row)
            type_pred.append(pred_row)
        for pair in sorted(table.relation_labels):
            true_row = np.zeros(dataset.num_relations, dtype=bool)
            for name in table.relation_labels[pair]:
                true_row[dataset.relation_id(name)] = True
            pred_row = np.zeros(dataset.num_relations, dtype=bool)
            for name in annotated.colrels.get(pair, []):
                pred_row[dataset.relation_id(name)] = True
            rel_true.append(true_row)
            rel_pred.append(pred_row)
    type_f1 = multilabel_micro_prf(np.stack(type_true), np.stack(type_pred)).f1
    relation_f1 = (
        multilabel_micro_prf(np.stack(rel_true), np.stack(rel_pred)).f1
        if rel_true
        else 1.0
    )
    return type_f1, relation_f1


def run_experiment(json_path=None):
    trainer = doduo_wikitable()
    tables = _workload()

    passes_before = trainer.model.encode_calls
    legacy_seconds, _ = _timed(
        lambda: [_legacy_multi_pass(trainer, t) for t in tables]
    )
    legacy_passes = trainer.model.encode_calls - passes_before

    # Cold float32 fast-kernel baseline: fresh session, empty proof cache,
    # so the timed region includes the dark-launch double-computes the
    # byte-identity machinery runs on every novel kernel shape.
    trainer.model.invalidate_sessions()
    sequential_engine = annotation_engine(trainer, cache_size=0)
    sequential_seconds, sequential_results = _timed(
        lambda: [sequential_engine.annotate(t) for t in tables]
    )
    sequential_passes = sequential_engine.stats.encoder_passes

    batched = {}
    for batch_size in (8, 16):
        trainer.model.invalidate_sessions()
        engine = annotation_engine(trainer, batch_size=batch_size, cache_size=0)
        seconds, _ = _timed(lambda: engine.annotate_batch(tables))
        batched[batch_size] = {
            "seconds": seconds,
            "passes": engine.stats.encoder_passes,
        }

    # Cold int8 tier: the timed region includes weight quantization and
    # the calibration forward that proves (or disproves) the accuracy
    # gate for this model.
    trainer.model.invalidate_sessions()
    int8_engine = annotation_engine(
        trainer,
        batch_size=INT8_BATCH_SIZE,
        cache_size=0,
        precision="int8",
        waste_budget=INT8_WASTE_BUDGET,
    )
    int8_seconds, int8_results = _timed(
        lambda: int8_engine.annotate_batch(tables)
    )
    int8_passes = int8_engine.stats.encoder_passes
    quant_fallbacks = int8_engine.stats.quant_fallbacks

    dataset = trainer.dataset
    type_f1_f32, rel_f1_f32 = _micro_f1(sequential_results, tables, dataset)
    type_f1_int8, rel_f1_int8 = _micro_f1(int8_results, tables, dataset)

    def tps(seconds):
        return WORKLOAD_SIZE / seconds

    rows = [
        ("legacy multi-pass loop", legacy_passes,
         f"{legacy_seconds:.3f}", f"{tps(legacy_seconds):.1f}", "1.00"),
        ("float32 engine (sequential)", sequential_passes,
         f"{sequential_seconds:.3f}", f"{tps(sequential_seconds):.1f}",
         f"{legacy_seconds / sequential_seconds:.2f}"),
    ]
    for batch_size, stats in batched.items():
        rows.append((
            f"float32 engine (bs={batch_size})", stats["passes"],
            f"{stats['seconds']:.3f}", f"{tps(stats['seconds']):.1f}",
            f"{legacy_seconds / stats['seconds']:.2f}",
        ))
    rows.append((
        f"int8 tier (bs={INT8_BATCH_SIZE}, packed)", int8_passes,
        f"{int8_seconds:.3f}", f"{tps(int8_seconds):.1f}",
        f"{legacy_seconds / int8_seconds:.2f}",
    ))
    print_table(
        f"Serving throughput ({WORKLOAD_SIZE} WikiTable tables, cold)",
        ["Path", "Passes", "Seconds", "Tables/s", "Speedup"],
        rows,
    )
    print_block(
        "int8 accuracy vs float32 baseline: "
        f"type F1 {type_f1_int8:.4f} vs {type_f1_f32:.4f} "
        f"(drift {abs(type_f1_int8 - type_f1_f32):.4f}), "
        f"relation F1 {rel_f1_int8:.4f} vs {rel_f1_f32:.4f} "
        f"(drift {abs(rel_f1_int8 - rel_f1_f32):.4f}), "
        f"quant_fallbacks {quant_fallbacks}"
    )

    best_batch = min(batched.values(), key=lambda s: s["seconds"])
    summary = {
        "workload_tables": WORKLOAD_SIZE,
        "legacy_tables_per_sec": round(tps(legacy_seconds), 2),
        "sequential_tables_per_sec": round(tps(sequential_seconds), 2),
        "batched_tables_per_sec": round(tps(best_batch["seconds"]), 2),
        "int8_tables_per_sec": round(tps(int8_seconds), 2),
        # The before/after ratio for PR-1: the seed's annotate_many was a
        # sequential multi-pass Python loop; the engine batches and
        # single-passes it.
        "batched_vs_legacy_loop": round(legacy_seconds / best_batch["seconds"], 2),
        "batched_vs_sequential_engine": round(
            sequential_seconds / best_batch["seconds"], 2
        ),
        # The before/after ratio for the quantized tier: everything the
        # accuracy gate buys (int8 fused kernels, no proof machinery,
        # merged heads, packed batches) against the proof-gated float32
        # fast-kernel baseline, both starting cold.
        "int8_vs_float32_baseline": round(sequential_seconds / int8_seconds, 2),
        "int8_vs_batched_engine": round(
            best_batch["seconds"] / int8_seconds, 2
        ),
        "legacy_passes": legacy_passes,
        "sequential_passes": sequential_passes,
        "batched_passes": best_batch["passes"],
        "int8_passes": int8_passes,
        "type_f1_float32": round(type_f1_f32, 4),
        "type_f1_int8": round(type_f1_int8, 4),
        "type_f1_drift": round(abs(type_f1_int8 - type_f1_f32), 4),
        "relation_f1_float32": round(rel_f1_f32, 4),
        "relation_f1_int8": round(rel_f1_int8, 4),
        "relation_f1_drift": round(abs(rel_f1_int8 - rel_f1_f32), 4),
        "quant_fallbacks": quant_fallbacks,
    }
    print_block("serving-throughput-json: " + json.dumps(summary))
    target = Path(json_path) if json_path is not None else RESULTS_PATH
    target.write_text(json.dumps(summary, indent=2) + "\n")
    return summary


def test_serving_throughput(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The single-pass engine must do >= 2x fewer encoder passes than the
    # legacy path, and padded batching must beat the seed's sequential
    # multi-pass loop by a clear margin.
    assert summary["legacy_passes"] >= 2 * summary["sequential_passes"]
    assert summary["batched_passes"] < summary["sequential_passes"]
    assert summary["batched_vs_legacy_loop"] >= 1.5
    # The quantized tier must beat the cold float32 fast-kernel baseline
    # while staying within half a point of its micro-F1 — and the
    # accuracy gate must actually have passed (a failed gate silently
    # serves float32, which would make the speedup a lie).
    assert summary["quant_fallbacks"] == 0
    assert summary["int8_vs_float32_baseline"] >= 1.4
    assert summary["type_f1_drift"] <= 0.005
    assert summary["relation_f1_drift"] <= 0.005


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=f"where to write the JSON summary (default: {RESULTS_PATH})",
    )
    args = parser.parse_args()
    run_experiment(json_path=args.json)
