"""Serving throughput: sequential annotate loop vs. the batched engine.

Not a paper table — this benchmarks the PR-1 serving redesign on a 50-table
WikiTable workload:

* **legacy multi-pass** — the historical ``Doduo.annotate`` cost model
  (separate encoder passes for types, scores, the relation probe, and
  embeddings), reconstructed from the still-public ``predict_*`` entry
  points;
* **sequential engine** — one single-pass engine batch per table (what the
  compatibility wrappers do);
* **batched engine** — length-bucketed padded batches of 8 and 16 tables.

Emits the usual fixed-width table plus a JSON summary line so downstream
tooling can track the throughput ratio.
"""

import json
import time

import numpy as np

from common import (
    annotation_engine,
    doduo_wikitable,
    print_block,
    print_table,
    wikitable_splits,
)

from repro.core.trainer import default_relation_pairs

WORKLOAD_SIZE = 50


def _workload():
    """A 50-table workload cycled from the held-out split.

    Cycling repeats content when the split is smaller than the workload,
    which is why every engine below runs with the serialization cache
    disabled — repeated content must not inflate throughput.
    """
    source = wikitable_splits().test.tables
    return [source[i % len(source)] for i in range(WORKLOAD_SIZE)]


def _legacy_multi_pass(trainer, table):
    """The pre-engine annotate cost: four separate encoder passes."""
    trainer.predict_types([table])
    encoded = [trainer.serializer.serialize_table(table)]
    trainer.model.predict_type_probs(encoded, trainer.config.multi_label)
    pairs = default_relation_pairs(table)
    if trainer.model.relation_head is not None and pairs:
        trainer.model.predict_relation_probs(
            encoded, [(0, i, j) for i, j in pairs], trainer.config.multi_label
        )
    trainer.column_embeddings(table)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_experiment():
    trainer = doduo_wikitable()
    tables = _workload()

    passes_before = trainer.model.encode_calls
    legacy_seconds = _timed(
        lambda: [_legacy_multi_pass(trainer, t) for t in tables]
    )
    legacy_passes = trainer.model.encode_calls - passes_before

    sequential_engine = annotation_engine(trainer, cache_size=0)
    sequential_seconds = _timed(
        lambda: [sequential_engine.annotate(t) for t in tables]
    )
    sequential_passes = sequential_engine.stats.encoder_passes

    batched = {}
    for batch_size in (8, 16):
        engine = annotation_engine(trainer, batch_size=batch_size, cache_size=0)
        seconds = _timed(lambda: engine.annotate_batch(tables))
        batched[batch_size] = {
            "seconds": seconds,
            "passes": engine.stats.encoder_passes,
        }

    def tps(seconds):
        return WORKLOAD_SIZE / seconds

    rows = [
        ("legacy multi-pass loop", legacy_passes,
         f"{legacy_seconds:.3f}", f"{tps(legacy_seconds):.1f}", "1.00"),
        ("sequential engine loop", sequential_passes,
         f"{sequential_seconds:.3f}", f"{tps(sequential_seconds):.1f}",
         f"{legacy_seconds / sequential_seconds:.2f}"),
    ]
    for batch_size, stats in batched.items():
        rows.append((
            f"batched engine (bs={batch_size})", stats["passes"],
            f"{stats['seconds']:.3f}", f"{tps(stats['seconds']):.1f}",
            f"{legacy_seconds / stats['seconds']:.2f}",
        ))
    print_table(
        f"Serving throughput ({WORKLOAD_SIZE} WikiTable tables)",
        ["Path", "Passes", "Seconds", "Tables/s", "Speedup"],
        rows,
    )

    best_batch = min(batched.values(), key=lambda s: s["seconds"])
    summary = {
        "workload_tables": WORKLOAD_SIZE,
        "legacy_tables_per_sec": round(tps(legacy_seconds), 2),
        "sequential_tables_per_sec": round(tps(sequential_seconds), 2),
        "batched_tables_per_sec": round(tps(best_batch["seconds"]), 2),
        # The before/after ratio for this PR: the seed's annotate_many was a
        # sequential multi-pass Python loop; the engine batches and
        # single-passes it.
        "batched_vs_legacy_loop": round(legacy_seconds / best_batch["seconds"], 2),
        "batched_vs_sequential_engine": round(
            sequential_seconds / best_batch["seconds"], 2
        ),
        "legacy_passes": legacy_passes,
        "sequential_passes": sequential_passes,
        "batched_passes": best_batch["passes"],
    }
    print_block("serving-throughput-json: " + json.dumps(summary))
    return summary


def test_serving_throughput(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The single-pass engine must do >= 2x fewer encoder passes than the
    # legacy path, and padded batching must beat the seed's sequential
    # multi-pass loop by a clear margin.
    assert summary["legacy_passes"] >= 2 * summary["sequential_passes"]
    assert summary["batched_passes"] < summary["sequential_passes"]
    assert summary["batched_vs_legacy_loop"] >= 1.5
