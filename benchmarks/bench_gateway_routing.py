"""Gateway routing overhead: multi-model serving vs dedicated engines.

Not a paper table — this measures the ISSUE-4 serving redesign: two models
(the WikiTable DODUO and its Dosolo single-task ablation) behind one
:class:`~repro.serving.AnnotationGateway`, serving an interleaved mixed
corpus, against the obvious alternative of one dedicated
:class:`~repro.serving.AnnotationEngine` per model fed pre-sorted traffic.

The gateway pays for routing (registry resolution per submit), per-model
queues, worker threads, and future fan-out; the dedicated baseline pays
none of that but also cannot dedup, cache, or route.  The acceptance bar:
multi-model gateway throughput within 10% of dedicated engines.

Also asserts correctness on the way: every gateway answer is byte-identical
to the dedicated engine's answer for the same (table, model), and the
per-model stats prove no cross-model sharing.
"""

import json
import time

import numpy as np

from common import (
    SMOKE,
    doduo_wikitable,
    dosolo_wikitable,
    print_block,
    print_table,
    wikitable_splits,
)

from repro.core.trainer import TYPE_TASK
from repro.serving import (
    AnnotationEngine,
    AnnotationGateway,
    EngineConfig,
    ModelRegistry,
    QueueConfig,
)

WORKLOAD_PER_MODEL = 30

# Forward passes dominate at paper scale; at CI smoke scale the models are
# deliberately tiny, so scheduling overhead weighs more per pass and the
# bar is held looser (the full-scale bar is the acceptance criterion).
RELATIVE_THROUGHPUT_FLOOR = 0.75 if SMOKE else 0.90


def _engine(trainer):
    # cache_size=0: a private, disabled serialization cache per engine so
    # neither path inherits the other's warm serializations.
    return AnnotationEngine(trainer, EngineConfig(batch_size=8, cache_size=0))


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_experiment():
    trainer_a = doduo_wikitable()
    trainer_b = dosolo_wikitable(TYPE_TASK)
    source = wikitable_splits().test.tables
    # Unique tables only: duplicates would let the gateway's queue dedup
    # collapse work the dedicated baseline must repeat, flattering the
    # gateway — this benchmark isolates *routing* overhead (dedup has its
    # own benchmark, bench_queue_dedup.py).
    tables = source[: min(WORKLOAD_PER_MODEL, len(source))]

    # Dedicated baseline: one engine per model, traffic pre-sorted by model
    # (the best case a multi-process deployment could do).
    dedicated_a, dedicated_b = _engine(trainer_a), _engine(trainer_b)
    results_a = results_b = None

    def run_dedicated():
        nonlocal results_a, results_b
        results_a = dedicated_a.annotate_batch(tables)
        results_b = dedicated_b.annotate_batch(tables)

    dedicated_seconds = _timed(run_dedicated)

    # Gateway: same engines' twins behind one front door, interleaved
    # mixed-model traffic (the worst case for routing overhead).
    registry = ModelRegistry()
    registry.register("doduo", _engine(trainer_a))
    registry.register("dosolo", _engine(trainer_b))
    gateway = AnnotationGateway(
        registry,
        QueueConfig(max_batch=len(tables), max_latency=0.05),
    )
    gateway_results = []

    def run_gateway():
        futures = []
        for table in tables:
            futures.append(gateway.submit(table, model="doduo"))
            futures.append(gateway.submit(table, model="dosolo"))
        gateway_results.extend(f.result() for f in futures)

    with gateway:
        gateway_seconds = _timed(run_gateway)
        stats = gateway.stats

    # Correctness ride-along: routing changed nothing about the bytes.
    for i in range(len(tables)):
        got_a, got_b = gateway_results[2 * i], gateway_results[2 * i + 1]
        assert got_a.type_scores == results_a[i].type_scores
        assert np.array_equal(got_a.colemb, results_a[i].colemb)
        assert got_b.type_scores == results_b[i].type_scores
        assert np.array_equal(got_b.colemb, results_b[i].colemb)

    total = 2 * len(tables)
    relative = dedicated_seconds / gateway_seconds
    rows = [
        ("dedicated engines (pre-sorted)", f"{dedicated_seconds:.3f}",
         f"{total / dedicated_seconds:.1f}", "1.00"),
        ("gateway (interleaved, routed)", f"{gateway_seconds:.3f}",
         f"{total / gateway_seconds:.1f}", f"{relative:.2f}"),
    ]
    print_table(
        f"Gateway routing ({total} requests, 2 models, interleaved)",
        ["Path", "Seconds", "Tables/s", "Relative"],
        rows,
    )

    summary = {
        "requests": total,
        "models": 2,
        "dedicated_seconds": round(dedicated_seconds, 4),
        "gateway_seconds": round(gateway_seconds, 4),
        "relative_throughput": round(relative, 3),
        "per_model_unique": {
            name: model_stats.unique_annotated
            for name, model_stats in sorted(stats.models.items())
        },
        "encoder_passes": stats.encoder_passes,
    }
    print_block("gateway-routing-json: " + json.dumps(summary))
    return summary


def test_gateway_routing(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Every request was answered by its own model — nothing shared across
    # fingerprints, and (unique workload) nothing deduped within one.
    assert summary["per_model_unique"]["doduo"] == summary["requests"] // 2
    assert summary["per_model_unique"]["dosolo"] == summary["requests"] // 2
    # The acceptance bar: routed multi-model throughput keeps pace with a
    # dedicated engine per model.
    assert summary["relative_throughput"] >= RELATIVE_THROUGHPUT_FLOOR
