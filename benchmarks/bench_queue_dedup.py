"""Queue dedup + persistent cache: the PR-2 serving-tier benchmark.

Not a paper table — this measures the two new serving tiers on a workload
shaped like real traffic: 60 requests over 12 unique tables (every popular
table asked for five times, interleaved).

* **direct engine** — every request pays serialization + its share of a
  forward pass (the PR-1 baseline; the LRU only saves re-serialization);
* **queue dedup** — the :class:`~repro.serving.AnnotationService` worker
  batches concurrent requests and collapses content-identical ones onto one
  annotation, so encoder passes track *unique* tables;
* **warm disk cache** — a fresh engine pointed at a directory populated by
  a previous run: the whole workload is answered from disk with **zero**
  encoder passes (the cross-restart guarantee the regression tests pin).

Emits the usual fixed-width table plus a JSON summary line so downstream
tooling can track the dedup ratio and the warm-pass count.
"""

import json
import shutil
import tempfile
import time

from common import annotation_engine, doduo_wikitable, print_block, print_table, wikitable_splits

from repro.serving import AnnotationEngine, AnnotationService, EngineConfig, QueueConfig

UNIQUE_TABLES = 12
REPEATS = 5


def _workload():
    """60 requests over 12 unique tables, duplicates interleaved."""
    source = wikitable_splits().test.tables
    unique = [source[i % len(source)] for i in range(UNIQUE_TABLES)]
    return [unique[i % UNIQUE_TABLES] for i in range(UNIQUE_TABLES * REPEATS)]


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_experiment():
    trainer = doduo_wikitable()
    tables = _workload()

    # Baseline: the PR-1 engine, no dedup, no disk tier.
    direct_engine = annotation_engine(trainer, cache_size=0)
    direct_seconds = _timed(lambda: direct_engine.annotate_batch(tables))
    direct_passes = direct_engine.stats.encoder_passes

    # Queue dedup: concurrent duplicates share one annotation.  Throughput
    # mode (exact=False) lets the unique survivors share padded batches;
    # byte-identical exact mode is regression-tested in tests/.
    dedup_engine = annotation_engine(trainer, cache_size=0)
    service = AnnotationService(
        dedup_engine,
        QueueConfig(max_batch=len(tables), max_latency=0.2, exact=False),
    )
    with service:
        futures = [service.submit(t) for t in tables]
        dedup_seconds = _timed(lambda: [f.result() for f in futures])
    dedup_passes = dedup_engine.stats.encoder_passes
    dedup_hits = service.stats.dedup_hits

    # Disk tier: populate a cache directory, then serve the same workload
    # from a *fresh* engine (simulating a process restart).
    cache_dir = tempfile.mkdtemp(prefix="bench-anno-cache-")
    try:
        warm_engine = AnnotationEngine(
            trainer, EngineConfig(batch_size=8, cache_size=0, cache_dir=cache_dir)
        )
        warm_engine.annotate_batch(tables)  # populate
        restarted = AnnotationEngine(
            trainer, EngineConfig(batch_size=8, cache_size=0, cache_dir=cache_dir)
        )
        warm_seconds = _timed(lambda: restarted.annotate_batch(tables))
        warm_passes = restarted.stats.encoder_passes
        warm_disk_hits = restarted.stats.disk_hits
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    total = len(tables)

    def tps(seconds):
        return total / seconds

    rows = [
        ("direct engine", direct_passes, f"{direct_seconds:.3f}",
         f"{tps(direct_seconds):.1f}", "1.00"),
        (f"queue dedup ({dedup_hits} hits)", dedup_passes,
         f"{dedup_seconds:.3f}", f"{tps(dedup_seconds):.1f}",
         f"{direct_seconds / dedup_seconds:.2f}"),
        (f"warm disk cache ({warm_disk_hits} hits)", warm_passes,
         f"{warm_seconds:.3f}", f"{tps(warm_seconds):.1f}",
         f"{direct_seconds / warm_seconds:.2f}"),
    ]
    print_table(
        f"Dedup + disk cache ({total} requests, {UNIQUE_TABLES} unique tables)",
        ["Path", "Passes", "Seconds", "Tables/s", "Speedup"],
        rows,
    )

    summary = {
        "requests": total,
        "unique_tables": UNIQUE_TABLES,
        "direct_passes": direct_passes,
        "dedup_passes": dedup_passes,
        "dedup_hits": dedup_hits,
        "warm_passes": warm_passes,
        "warm_disk_hits": warm_disk_hits,
        "dedup_speedup": round(direct_seconds / dedup_seconds, 2),
        "warm_speedup": round(direct_seconds / warm_seconds, 2),
    }
    print_block("queue-dedup-json: " + json.dumps(summary))
    return summary


def test_queue_dedup(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Dedup must collapse the workload to its unique tables...
    assert summary["dedup_hits"] == summary["requests"] - summary["unique_tables"]
    assert summary["dedup_passes"] < summary["direct_passes"]
    # ...and a warm disk cache must answer a repeated corpus without
    # touching the encoder at all (the ISSUE-2 acceptance criterion).
    assert summary["warm_passes"] == 0
    assert summary["warm_disk_hits"] == summary["requests"]
