"""Ablation: pre-trained vs randomly-initialized encoder (Appendix A.5).

The paper reports that a DODUO variant with randomly initialized parameters
"did not show meaningful performance (i.e., approximately zero F1 value)",
attributing the gap to the knowledge the LM absorbs during pre-training.
That result is a property of BERT-base's scale: 110M parameters cannot be
trained from a fine-tuning set alone.  Our encoder is thousands of times
smaller and *can*: measured here, the cold start matches the warm start at
100% of the training data and at 25% (within a point either way).  In other
words, at mini scale the pre-trained weights are not what carries DODUO's
fine-tuning accuracy — the pre-training corpus knowledge surfaces instead
in the LM-probing analyses (Tables 12/13), which query the pre-trained
model directly.  The bench therefore asserts *non-harm* (warm start never
loses meaningfully) and reports both regimes; EXPERIMENTS.md records the
deviation from the paper's total-collapse result and why it is expected.
"""

from repro.core.trainer import RELATION_TASK, TYPE_TASK

from common import (
    _CACHE,
    PIPELINE,
    _wikitable_config,
    custom_wikitable_trainer,
    doduo_wikitable,
    make_trainer,
    pct,
    print_table,
    substrate,
    wikitable_splits,
)
from repro.datasets import training_fraction

FRACTION = 0.25


def _fraction_trainer(pretrained: bool):
    key = f"pretrain-frac-{pretrained}"
    if key in _CACHE:
        return _CACHE[key]
    tokenizer, pretrained_lm = substrate()
    splits = training_fraction(wikitable_splits(), FRACTION, seed=0)
    trainer = make_trainer(
        splits.train, tokenizer, PIPELINE, _wikitable_config(),
        pretrained=pretrained_lm if pretrained else None,
    )
    trainer.train(valid_dataset=splits.valid)
    _CACHE[key] = trainer
    return trainer


def run_experiment():
    splits = wikitable_splits()
    results = {
        "Doduo 100% (pre-trained LM)": doduo_wikitable().evaluate(splits.test),
        "Doduo 100% (random init)": custom_wikitable_trainer(
            "random-init", pretrained=False
        ).evaluate(splits.test),
        f"Doduo {int(FRACTION * 100)}% (pre-trained LM)": _fraction_trainer(
            True
        ).evaluate(splits.test),
        f"Doduo {int(FRACTION * 100)}% (random init)": _fraction_trainer(
            False
        ).evaluate(splits.test),
    }
    rows = [
        (name, pct(scores[TYPE_TASK].f1), pct(scores[RELATION_TASK].f1))
        for name, scores in results.items()
    ]
    print_table(
        "Ablation: effect of LM pre-training on WikiTable (micro F1)",
        ["Method", "Type prediction", "Relation prediction"],
        rows,
    )
    return {
        name: {task: prf.f1 for task, prf in scores.items()}
        for name, scores in results.items()
    }


def test_ablation_pretraining(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    full_warm = results["Doduo 100% (pre-trained LM)"]
    full_cold = results["Doduo 100% (random init)"]
    frac_warm = results[f"Doduo {int(FRACTION * 100)}% (pre-trained LM)"]
    frac_cold = results[f"Doduo {int(FRACTION * 100)}% (random init)"]
    # Non-harm in both regimes: warm-starting from the pre-trained encoder
    # never costs meaningful accuracy (at this scale it also does not add
    # fine-tuning accuracy — see the module docstring).
    assert full_warm[TYPE_TASK] >= full_cold[TYPE_TASK] - 0.02
    assert full_warm[RELATION_TASK] >= full_cold[RELATION_TASK] - 0.02
    assert frac_warm[TYPE_TASK] >= frac_cold[TYPE_TASK] - 0.05
    assert frac_warm[RELATION_TASK] >= frac_cold[RELATION_TASK] - 0.05
