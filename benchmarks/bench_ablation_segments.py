"""Ablation: column segment embeddings (a design choice of this reproduction).

DESIGN.md documents one deliberate deviation from the paper: tokens carry a
*column segment id* (column index + 1) because a 2–4 layer mini-encoder
cannot, unlike BERT-base's 12 layers, reliably recover column membership
from learned position embeddings alone.  The paper's own Table 6 shows
BERT-base adapts its position embeddings to table structure during
fine-tuning; this bench quantifies what the segment signal is worth at mini
scale by training the same model with the segment ids zeroed out.

Expected shape: segments help (or at worst tie) on both tasks; the gap is
the price a small encoder pays for structural information BERT-base gets
from depth.
"""

from common import (
    custom_wikitable_trainer,
    doduo_wikitable,
    pct,
    print_table,
    wikitable_splits,
)


def run_experiment():
    splits = wikitable_splits()
    with_segments = doduo_wikitable()
    without_segments = custom_wikitable_trainer(
        "no-segments", use_column_segments=False
    )

    results = {
        "Doduo (column segment ids)": with_segments.evaluate(splits.test),
        "Doduo (no segment ids)": without_segments.evaluate(splits.test),
    }
    rows = [
        (name, pct(scores["type"].f1), pct(scores["relation"].f1))
        for name, scores in results.items()
    ]
    print_table(
        "Ablation: column segment embeddings on WikiTable (micro F1)",
        ["Method", "Type prediction", "Relation prediction"],
        rows,
    )
    return {
        name: {task: prf.f1 for task, prf in scores.items()}
        for name, scores in results.items()
    }


def test_ablation_segments(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    seg = results["Doduo (column segment ids)"]
    flat = results["Doduo (no segment ids)"]
    # The segment signal must not hurt; typically it helps at mini scale.
    assert seg["type"] >= flat["type"] - 0.03
    assert seg["relation"] >= flat["relation"] - 0.03
