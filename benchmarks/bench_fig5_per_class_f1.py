"""Figure 5: per-class F1 of Doduo vs Sato on VizNet (Full & multi-column).

The paper plots per-type F1 for both models on both splits and highlights
that Doduo is consistently at least as good, including rare types where Sato
collapses.  The bench prints the per-type comparison sorted by Doduo's F1
and the aggregate win rate.
"""

import numpy as np

from repro.datasets import multi_column_only
from repro.evaluation import per_class_f1

from common import doduo_viznet, pct, print_table, sato_viznet, viznet_splits


def _per_class(trainer_or_sato, dataset, is_doduo):
    if is_doduo:
        predictions = trainer_or_sato.predict_types(dataset.tables)
        y_pred = np.concatenate(predictions)
    else:
        y_pred = np.concatenate([
            trainer_or_sato.predict_table(t) for t in dataset.tables
        ])
    y_true = np.concatenate([
        [dataset.type_id(col.type_labels[0]) for col in table.columns]
        for table in dataset.tables
    ])
    scores = per_class_f1(y_true, y_pred, dataset.num_types)
    support = np.bincount(y_true, minlength=dataset.num_types)
    return scores, support


def run_experiment():
    splits = viznet_splits()
    doduo = doduo_viznet()
    sato = sato_viznet()
    outcome = {}

    for split_name, subset in (
        ("Full", splits.test),
        ("Multi-column only", multi_column_only(splits.test)),
    ):
        doduo_scores, support = _per_class(doduo, subset, is_doduo=True)
        sato_scores, _ = _per_class(sato, subset, is_doduo=False)
        rows, wins, present = [], 0, 0
        order = sorted(
            range(subset.num_types),
            key=lambda i: -doduo_scores[i].f1,
        )
        for i in order:
            if support[i] == 0:
                continue
            present += 1
            d, s = doduo_scores[i].f1, sato_scores[i].f1
            if d >= s:
                wins += 1
            rows.append((subset.type_vocab[i], pct(d), pct(s), int(support[i])))
        print_table(
            f"Figure 5 ({split_name}): per-class F1, Doduo vs Sato",
            ["type", "Doduo", "Sato", "support"],
            rows,
        )
        outcome[split_name] = {"wins": wins, "present": present}
    return outcome


def test_fig5_per_class(benchmark):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Shape: Doduo matches or beats Sato on a majority of present classes.
    for split, stats in outcome.items():
        assert stats["wins"] >= stats["present"] * 0.5, split
