"""Table 8: Doduo with different input token budgets on WikiTable.

Paper numbers (micro F1 type / relation / max #cols in 512 tokens):
8 tokens 89.8 / 88.9 / 56;  16 tokens 91.4 / 90.7 / 30;  32 tokens
92.4 / 91.7 / 15.  Expected shape: F1 increases with MaxToken/col, and the
supported column count falls inversely.
"""

from common import (
    MAX_TOKENS,
    doduo_wikitable,
    pct,
    print_table,
    wikitable_splits,
)

TOKEN_BUDGETS = (8, 16, 32)
SEQUENCE_BUDGET = 128  # our mini-BERT window (the paper's BERT uses 512)


def run_experiment():
    splits = wikitable_splits()
    results = {}
    for budget in TOKEN_BUDGETS:
        trainer = doduo_wikitable(max_tokens=budget)
        scores = trainer.evaluate(splits.test)
        max_cols = trainer.serializer.max_columns_within(SEQUENCE_BUDGET)
        results[budget] = {
            "type": scores["type"].f1,
            "relation": scores["relation"].f1,
            "max_cols": max_cols,
        }
    rows = [
        (budget, pct(r["type"]), pct(r["relation"]), r["max_cols"])
        for budget, r in results.items()
    ]
    print_table(
        f"Table 8: token budget sweep (WikiTable, {SEQUENCE_BUDGET}-token window)",
        ["MaxToken/col", "Col type (F1)", "Col rel (F1)", "Max. # of cols"],
        rows,
    )
    return results


def test_table8_token_budget(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Shape: more tokens never hurt much; supported columns shrink.
    assert results[32]["type"] >= results[8]["type"] - 0.03
    assert results[8]["max_cols"] > results[16]["max_cols"] > results[32]["max_cols"]
