"""Padding waste: exact width buckets vs the PR-1 jointly-padded chunks.

Not a paper table — this benchmarks the unified encoding layer
(`repro.encoding`) on the same 50-table WikiTable workload as
``bench_serving_throughput``:

* **serving drain** — tokens wasted per drain under the PR-1 policy
  (sort by length, chunk, pad each chunk to its own maximum — simulated
  with :meth:`BatchPlanner.plan_padded`) vs the exact planner actually
  running in the engine, which the engine's own ``EngineStats`` token
  odometers confirm;
* **training epoch** — the padding accounting `TrainingHistory` now
  records for a fine-tuning run;
* **throughput** — batched annotation must be no slower than the PR-1
  numbers even though exact buckets run more, smaller forward passes
  (they also run strictly fewer wasted FLOPs, and results are now
  byte-identical to sequential serving).

Emits the usual fixed-width table plus a JSON summary line.
"""

import json
import time

from common import (
    annotation_engine,
    doduo_wikitable,
    print_block,
    print_table,
    wikitable_splits,
)

from repro.encoding import BatchPlanner

WORKLOAD_SIZE = 50
BATCH_SIZE = 8


def _workload():
    source = wikitable_splits().test.tables
    return [source[i % len(source)] for i in range(WORKLOAD_SIZE)]


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_experiment():
    trainer = doduo_wikitable()
    tables = _workload()
    lengths = [trainer.encoding.encode_table(t).length for t in tables]
    planner = BatchPlanner(batch_size=BATCH_SIZE)

    # Plan-level accounting: the PR-1 policy vs exact buckets over one drain.
    padded_plan = planner.plan_padded(lengths)
    padded_report = BatchPlanner.report(lengths, padded_plan)
    exact_plan = planner.plan([(length,) for length in lengths])
    exact_report = BatchPlanner.report(lengths, exact_plan)

    # Engine-level confirmation: the running engine's token odometers.
    engine = annotation_engine(trainer, batch_size=BATCH_SIZE, cache_size=0)
    engine_seconds = _timed(lambda: engine.annotate_batch(tables))
    sequential = annotation_engine(trainer, cache_size=0)
    sequential_seconds = _timed(
        lambda: [sequential.annotate(t) for t in tables]
    )

    # Training-epoch accounting (the trainer pads its loss batches jointly;
    # the history records how much of that is padding).
    history = trainer.history

    rows = [
        ("serving drain, PR-1 padded chunks", padded_report.batches,
         padded_report.real_tokens, padded_report.padded_tokens,
         padded_report.wasted_tokens, f"{padded_report.waste_ratio:.4f}"),
        ("serving drain, exact buckets (plan)", exact_report.batches,
         exact_report.real_tokens, exact_report.padded_tokens,
         exact_report.wasted_tokens, f"{exact_report.waste_ratio:.4f}"),
        ("serving drain, exact buckets (engine)", engine.stats.batches,
         engine.stats.real_tokens, engine.stats.padded_tokens,
         engine.stats.padded_tokens - engine.stats.real_tokens,
         f"{engine.stats.padding_waste:.4f}"),
        ("fine-tuning run (TrainingHistory)", "-",
         history.real_tokens, history.padded_tokens,
         history.padded_tokens - history.real_tokens,
         f"{history.padding_waste:.4f}"),
    ]
    print_table(
        f"Padding waste ({WORKLOAD_SIZE} WikiTable tables, bs={BATCH_SIZE})",
        ["Path", "Batches", "Real tokens", "Alloc tokens", "Wasted", "Waste"],
        rows,
    )

    summary = {
        "workload_tables": WORKLOAD_SIZE,
        "padded_wasted_tokens": padded_report.wasted_tokens,
        "padded_waste_ratio": round(padded_report.waste_ratio, 4),
        "exact_wasted_tokens": exact_report.wasted_tokens,
        "engine_wasted_tokens": (
            engine.stats.padded_tokens - engine.stats.real_tokens
        ),
        "training_waste_ratio": round(history.padding_waste, 4),
        "batched_tables_per_sec": round(WORKLOAD_SIZE / engine_seconds, 2),
        "sequential_tables_per_sec": round(
            WORKLOAD_SIZE / sequential_seconds, 2
        ),
        "batched_vs_sequential": round(sequential_seconds / engine_seconds, 2),
    }
    print_block("padding-waste-json: " + json.dumps(summary))
    return summary


def test_padding_waste(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Exact buckets must waste strictly fewer tokens than the PR-1 padded
    # chunks (zero, in fact), per serving drain...
    assert summary["padded_wasted_tokens"] > 0
    assert summary["exact_wasted_tokens"] == 0
    assert summary["engine_wasted_tokens"] == 0
    # ...and batched serving must stay faster than one-table-at-a-time
    # (i.e., throughput no worse than PR 1, whose win was batching).
    assert summary["batched_vs_sequential"] >= 1.0
