"""Kernel microbenchmarks: GEMM fusion and column-cache hit rates.

Not a paper table — this pins the PR-7 optimization layer:

* **fused QKV** — one packed GEMM vs three split projections on
  serving-shaped activations, with the proof gate's first-call overhead
  shown separately from the proven steady state;
* **in-place kernel chain** — softmax/layernorm/gelu through preallocated
  workspace buffers vs the allocating reference forms;
* **column cache** — a single-column engine over a workload with realistic
  column repetition: cold pass vs warm pass, with the hit-rate and
  encoder-token counters that :class:`~repro.serving.EngineStats` exports.

Every optimized path here is proof-gated or content-addressed — the
correctness side lives in ``tests/test_kernel_identity.py`` and
``tests/test_column_cache.py``; this file measures what the proofs paid for.
"""

import json
import time

import numpy as np

from common import SMOKE, print_block, print_table

from repro.nn.kernels import Workspace, fused_qkv, gelu_, layer_norm_, softmax_

REPEATS = 50 if SMOKE else 400
BATCH, SEQ, DIM = (8, 64, 64) if SMOKE else (16, 128, 128)


def _timed(fn, repeats):
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def _bench_fused_qkv():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((BATCH, SEQ, DIM)).astype(np.float32)
    w = [rng.standard_normal((DIM, DIM)).astype(np.float32) for _ in range(3)]
    b = [rng.standard_normal(DIM).astype(np.float32) for _ in range(3)]
    w_qkv = np.concatenate(w, axis=1)
    b_qkv = np.concatenate(b)

    def split():
        return (x @ w[0] + b[0], x @ w[1] + b[1], x @ w[2] + b[2])

    ws = Workspace()
    fused = lambda: fused_qkv(
        x, w[0], b[0], w[1], b[1], w[2], b[2], w_qkv, b_qkv, ws
    )
    proof_seconds = _timed(fused, 1)  # includes the first-call proof
    split_seconds = _timed(split, REPEATS)
    fused_seconds = _timed(fused, REPEATS)  # proven steady state
    assert ws.proofs.proofs_run == 1
    return {
        "split_us": split_seconds * 1e6,
        "fused_us": fused_seconds * 1e6,
        "proof_us": proof_seconds * 1e6,
        "speedup": split_seconds / fused_seconds,
        "proven": ws.proofs.proofs_failed == 0,
    }


def _bench_inplace_chain():
    rng = np.random.default_rng(1)
    base = rng.standard_normal((BATCH, SEQ, DIM)).astype(np.float32)
    gamma = np.ones(DIM, dtype=np.float32)
    beta = np.zeros(DIM, dtype=np.float32)

    def reference():
        x = base - base.max(axis=-1, keepdims=True)
        e = np.exp(x)
        s = e / e.sum(axis=-1, keepdims=True)
        mu = s.mean(axis=-1, keepdims=True)
        centered = s - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        n = centered * (1.0 / np.sqrt(var + 1e-5)) * gamma + beta
        inner = np.float32(0.7978845608) * (n + 0.044715 * ((n * n) * n))
        return 0.5 * n * (1.0 + np.tanh(inner))

    ws = Workspace()
    scratch = np.empty_like(base)

    def inplace():
        np.copyto(scratch, base)
        softmax_(scratch)
        layer_norm_(scratch, gamma, beta, 1e-5, ws)
        gelu_(scratch, ws)
        return scratch

    return {
        "reference_us": _timed(reference, REPEATS) * 1e6,
        "inplace_us": _timed(inplace, REPEATS) * 1e6,
        "workspace_bytes": ws.allocated_bytes,
    }


def _bench_column_cache():
    from common import dosolo_scol_wikitable, wikitable_splits

    from repro.serving import AnnotationEngine, EngineConfig

    trainer = dosolo_scol_wikitable()
    source = wikitable_splits().test.tables
    workload = [source[i % len(source)] for i in range(24 if SMOKE else 100)]

    def run(engine, tables):
        start = time.perf_counter()
        engine.annotate_batch(tables)
        return time.perf_counter() - start

    uncached = AnnotationEngine(
        trainer, EngineConfig(cache_size=0, column_cache_size=0)
    )
    uncached_seconds = run(uncached, workload)

    cached = AnnotationEngine(
        trainer, EngineConfig(cache_size=0, column_cache_size=4096)
    )
    cold_seconds = run(cached, workload)
    cold_hits = cached.stats.column_hits
    warm_seconds = run(cached, workload)
    stats = cached.stats
    return {
        "workload_tables": len(workload),
        "uncached_seconds": uncached_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_hits": cold_hits,
        "hit_rate": stats.column_hit_rate,
        "warm_speedup": uncached_seconds / warm_seconds,
    }


def run_experiment():
    qkv = _bench_fused_qkv()
    chain = _bench_inplace_chain()
    colcache = _bench_column_cache()

    print_table(
        f"Fused QKV GEMM ({BATCH}x{SEQ}x{DIM} float32)",
        ["Path", "us/call", "Speedup"],
        [
            ("three split GEMMs", f"{qkv['split_us']:.1f}", "1.00"),
            ("fused (proven)", f"{qkv['fused_us']:.1f}",
             f"{qkv['speedup']:.2f}"),
            ("first call (proof)", f"{qkv['proof_us']:.1f}", "-"),
        ],
    )
    print_table(
        "In-place kernel chain (softmax+layernorm+gelu)",
        ["Path", "us/call"],
        [
            ("allocating reference", f"{chain['reference_us']:.1f}"),
            ("in-place workspace", f"{chain['inplace_us']:.1f}"),
        ],
    )
    print_table(
        f"Column cache ({colcache['workload_tables']} single-column tables)",
        ["Pass", "Seconds", "Hit rate"],
        [
            ("no cache", f"{colcache['uncached_seconds']:.3f}", "-"),
            ("cold", f"{colcache['cold_seconds']:.3f}",
             f"{colcache['cold_hits']} hits"),
            ("warm", f"{colcache['warm_seconds']:.3f}",
             f"{colcache['hit_rate']:.2f}"),
        ],
    )
    summary = {
        "fused_qkv_speedup": round(qkv["speedup"], 2),
        "fused_qkv_proven": qkv["proven"],
        "inplace_vs_reference": round(
            chain["reference_us"] / chain["inplace_us"], 2
        ),
        "column_cache_hit_rate": round(colcache["hit_rate"], 3),
        "column_cache_warm_speedup": round(colcache["warm_speedup"], 2),
    }
    print_block("kernels-json: " + json.dumps(summary))
    return summary


def test_kernels(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The proof gate must hold on the bench platform, the warm column
    # cache must beat the uncached engine, and repetition must register.
    assert summary["fused_qkv_proven"]
    # cold pass misses everything, warm pass hits everything: >= 1/2
    assert summary["column_cache_hit_rate"] >= 0.5
    assert summary["column_cache_warm_speedup"] > 1.0


if __name__ == "__main__":
    run_experiment()
