"""Table 3: performance on the WikiTable dataset (micro P/R/F1).

Paper numbers (micro F1): Sherlock 78.47 (type only); TURL 88.86 / 90.94;
Doduo 92.45 / 91.72; TURL+metadata 92.69 / 93.35; Doduo+metadata 92.79 /
92.82.  Expected shape: Doduo > TURL > Sherlock on types; Doduo >= TURL on
relations; +metadata helps both Transformer models.
"""

from common import (
    doduo_wikitable,
    pct,
    print_table,
    sherlock_wikitable,
    turl_wikitable,
    wikitable_splits,
)


def run_experiment():
    splits = wikitable_splits()
    results = {}

    sherlock = sherlock_wikitable()
    results["Sherlock"] = {"type": sherlock.evaluate(splits.test.tables)}

    turl = turl_wikitable()
    results["TURL"] = turl.evaluate(splits.test)

    doduo = doduo_wikitable()
    results["Doduo"] = doduo.evaluate(splits.test)

    turl_meta = turl_wikitable(include_headers=True)
    results["TURL+metadata"] = turl_meta.evaluate(splits.test)

    doduo_meta = doduo_wikitable(include_headers=True)
    results["Doduo+metadata"] = doduo_meta.evaluate(splits.test)

    rows = []
    for method, scores in results.items():
        type_prf = scores.get("type")
        rel_prf = scores.get("relation")
        rows.append((
            method,
            pct(type_prf.precision), pct(type_prf.recall), pct(type_prf.f1),
            pct(rel_prf.precision) if rel_prf else "-",
            pct(rel_prf.recall) if rel_prf else "-",
            pct(rel_prf.f1) if rel_prf else "-",
        ))
    print_table(
        "Table 3: WikiTable (micro metrics)",
        ["Method", "Type P", "Type R", "Type F1", "Rel P", "Rel R", "Rel F1"],
        rows,
    )
    return {m: {k: v.f1 for k, v in s.items()} for m, s in results.items()}


def test_table3_wikitable(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Shape assertions (loose): the paper's ordering must hold.
    assert results["Doduo"]["type"] > results["Sherlock"]["type"]
    assert results["Doduo"]["type"] >= results["TURL"]["type"] - 0.01
    for scores in results.values():
        for f1 in scores.values():
            assert 0.0 <= f1 <= 1.0
