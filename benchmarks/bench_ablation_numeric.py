"""Ablation: numeric magnitude embeddings (Section 3.1 future work, Table 5).

The paper casts all cells to strings and flags direct numeric support as
future work, after Table 5 shows numeric types like ``ranking`` (33.2 F1)
and ``capacity`` (62.6 F1) are DODUO's weakest.  This bench measures the
extension implemented in :mod:`repro.core.numeric`: a learned embedding of
each cell's log10-magnitude bin added to the cell's token embeddings
(``DoduoConfig(use_numeric_embeddings=True)``).

Expected shape: overall micro-F1 must not degrade, and mean F1 over the
Table 5 numeric types should improve or hold — magnitude is exactly the
signal that separates ``rank`` (1–20) from ``plays`` (1–2M) when their digit
tokens look alike.
"""

import numpy as np

from repro.datasets import NUMERIC_TYPES_TABLE5
from repro.evaluation import per_class_f1

from common import (
    PIPELINE,
    _viznet_config,
    _CACHE,
    doduo_viznet,
    make_trainer,
    pct,
    print_table,
    substrate,
    viznet_splits,
)


def _numeric_trainer():
    key = "doduo-vz-numeric"
    if key in _CACHE:
        return _CACHE[key]
    tokenizer, pretrained = substrate()
    splits = viznet_splits()
    trainer = make_trainer(
        splits.train, tokenizer, PIPELINE,
        _viznet_config(use_numeric_embeddings=True),
        pretrained=pretrained,
    )
    trainer.train(valid_dataset=splits.valid)
    _CACHE[key] = trainer
    return trainer


def _scores(trainer, test):
    y_true = np.concatenate([
        [test.type_id(col.type_labels[0]) for col in table.columns]
        for table in test.tables
    ])
    y_pred = np.concatenate(trainer.predict_types(test.tables))
    per_class = per_class_f1(y_true, y_pred, test.num_types)
    numeric_f1 = [
        per_class[test.type_id(name)].f1 for name in NUMERIC_TYPES_TABLE5
    ]
    micro = trainer.evaluate(test)["type"].f1
    return micro, float(np.mean(numeric_f1))


def run_experiment():
    test = viznet_splits().test
    plain_micro, plain_numeric = _scores(doduo_viznet(), test)
    ext_micro, ext_numeric = _scores(_numeric_trainer(), test)

    print_table(
        "Ablation: numeric magnitude embeddings on VizNet",
        ["Method", "Micro F1 (all types)", "Mean F1 (Table 5 numeric types)"],
        [
            ("Doduo (strings only, as in the paper)",
             pct(plain_micro), pct(plain_numeric)),
            ("Doduo + numeric embeddings (future work)",
             pct(ext_micro), pct(ext_numeric)),
        ],
    )
    return {
        "plain": (plain_micro, plain_numeric),
        "numeric": (ext_micro, ext_numeric),
    }


def test_ablation_numeric(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    plain_micro, _ = results["plain"]
    ext_micro, _ = results["numeric"]
    # The extension must not wreck overall accuracy.
    assert ext_micro >= plain_micro - 0.05
