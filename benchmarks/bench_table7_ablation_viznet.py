"""Table 7: ablation on the VizNet dataset (Full split).

Paper numbers: Doduo 84.6 macro / 94.3 micro; DosoloSCol 77.4 / 90.2.
Expected shape: the multi-column model beats the single-column model on both
averages (table context carries signal the single column cannot).
"""

import numpy as np

from repro.evaluation import multiclass_macro_f1, multiclass_micro_f1

from common import (
    doduo_viznet,
    dosolo_scol_viznet,
    pct,
    print_table,
    viznet_splits,
)


def _evaluate(trainer, dataset):
    predictions = trainer.predict_types(dataset.tables)
    y_true = np.concatenate([
        [dataset.type_id(col.type_labels[0]) for col in table.columns]
        for table in dataset.tables
    ])
    y_pred = np.concatenate(predictions)
    return (
        multiclass_macro_f1(y_true, y_pred, dataset.num_types),
        multiclass_micro_f1(y_true, y_pred).f1,
    )


def run_experiment():
    splits = viznet_splits()
    results = {
        "Doduo": _evaluate(doduo_viznet(), splits.test),
        "DosoloSCol": _evaluate(dosolo_scol_viznet(), splits.test),
    }
    rows = [
        (method, pct(macro), pct(micro))
        for method, (macro, micro) in results.items()
    ]
    print_table(
        "Table 7: VizNet ablation (Full)",
        ["Method", "Macro F1", "Micro F1"],
        rows,
    )
    return results


def test_table7_ablation_viznet(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert results["Doduo"][1] >= results["DosoloSCol"][1] - 0.01
    assert results["Doduo"][0] >= results["DosoloSCol"][0] - 0.01
