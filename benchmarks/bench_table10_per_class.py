"""Table 10: per-class comparison of Doduo vs Dosolo on WikiTable.

The paper reports per-type and per-relation F1 for six hand-picked classes
and observes that multi-task learning helps most on classes that are hard to
distinguish (artist vs writer; place_of_birth vs place_lived).  This bench
reports the same comparison for the classes our generator makes confusable,
plus the aggregate win/loss count across all classes.
"""

import numpy as np

from repro.evaluation import multilabel_per_label_f1

from common import (
    doduo_wikitable,
    dosolo_wikitable,
    pct,
    print_table,
    wikitable_splits,
)

FOCUS_TYPES = [
    "film.director", "film.producer", "film.actor",
    "music.artist", "book.author", "sports.athlete",
]
FOCUS_RELATIONS = [
    "film.directed_by", "film.produced_by", "film.starring",
    "person.place_of_birth", "person.place_of_death", "person.place_lived",
]


def _type_indicators(trainer, dataset):
    predictions = trainer.predict_types(dataset.tables)
    y_pred = np.concatenate(predictions, axis=0)
    y_true = np.concatenate(
        [trainer._indicator_for(t, dataset) for t in dataset.tables], axis=0
    )
    return y_true, y_pred


def _relation_indicators(trainer, dataset):
    predictions = trainer.predict_relations(dataset.tables)
    true_rows, pred_rows = [], []
    for table, table_pred in zip(dataset.tables, predictions):
        for pair in sorted(table.relation_labels):
            row = np.zeros(dataset.num_relations, dtype=bool)
            for name in table.relation_labels[pair]:
                row[dataset.relation_id(name)] = True
            true_rows.append(row)
            pred_rows.append(table_pred[pair])
    return np.stack(true_rows), np.stack(pred_rows)


def run_experiment():
    splits = wikitable_splits()
    test = splits.test
    doduo = doduo_wikitable()
    dosolo_type = dosolo_wikitable("type")
    dosolo_rel = dosolo_wikitable("relation")

    yt, yp = _type_indicators(doduo, test)
    doduo_type_scores = multilabel_per_label_f1(yt, yp)
    yt2, yp2 = _type_indicators(dosolo_type, test)
    dosolo_type_scores = multilabel_per_label_f1(yt2, yp2)

    rows = []
    type_results = {}
    for name in FOCUS_TYPES:
        idx = test.type_id(name)
        d, s = doduo_type_scores[idx].f1, dosolo_type_scores[idx].f1
        type_results[name] = (d, s)
        rows.append((name, pct(d), pct(s)))
    print_table(
        "Table 10 (left): column types, Doduo vs Dosolo (F1)",
        ["Column type", "Doduo", "Dosolo"],
        rows,
    )

    yt, yp = _relation_indicators(doduo, test)
    doduo_rel_scores = multilabel_per_label_f1(yt, yp)
    yt2, yp2 = _relation_indicators(dosolo_rel, test)
    dosolo_rel_scores = multilabel_per_label_f1(yt2, yp2)

    rows = []
    rel_results = {}
    for name in FOCUS_RELATIONS:
        idx = test.relation_id(name)
        d, s = doduo_rel_scores[idx].f1, dosolo_rel_scores[idx].f1
        rel_results[name] = (d, s)
        rows.append((name, pct(d), pct(s)))
    print_table(
        "Table 10 (right): column relations, Doduo vs Dosolo (F1)",
        ["Column relation", "Doduo", "Dosolo"],
        rows,
    )

    wins = sum(1 for d, s in list(type_results.values()) + list(rel_results.values()) if d >= s)
    print_table(
        "Table 10 summary",
        ["Doduo >= Dosolo (out of 12 focus classes)"],
        [(wins,)],
    )
    return {"types": type_results, "relations": rel_results, "wins": wins}


def test_table10_per_class(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Shape: multi-task learning helps on at least half the focus classes.
    assert results["wins"] >= 6
