"""Shared experiment context for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  They share a
single substrate (KB, tokenizer, pre-trained LM) and cache fine-tuned models
per configuration, because several experiments evaluate the same model from
different angles (e.g. Table 4, Table 5, and Figure 5 all use the VizNet
DODUO model).

Benchmarks run each experiment exactly once (``benchmark.pedantic`` with one
round): the interesting output is the regenerated table, printed in the
paper's format, not the wall-clock time.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro.baselines import (
    SatoConfig,
    SatoModel,
    SherlockConfig,
    SherlockModel,
    make_turl_trainer,
)
from repro.core import (
    DoduoConfig,
    DoduoTrainer,
    PipelineConfig,
    build_knowledge_base,
    build_pretrained_lm,
    make_trainer,
)
from repro.serving import AnnotationEngine, EngineConfig
from repro.core.trainer import RELATION_TASK, TYPE_TASK
from repro.datasets import (
    DatasetSplits,
    KnowledgeBase,
    generate_viznet_dataset,
    generate_wikitable_dataset,
    split_dataset,
    training_fraction,
)

# ---------------------------------------------------------------------------
# Shared experiment constants (one substrate for the whole suite)
# ---------------------------------------------------------------------------

# Smoke mode (REPRO_BENCH_SMOKE=1): shrink the substrate so serving/perf
# benchmarks finish in CI minutes.  The *structure* of every experiment is
# unchanged — same workloads, same assertions — only corpus sizes and
# training budgets drop, so paper-accuracy numbers are NOT comparable in
# this mode (CI runs it to keep the scripts from rotting, not to
# regenerate tables).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() not in ("", "0", "false")

PIPELINE = PipelineConfig(pretrain_epochs=1 if SMOKE else 4)

WIKITABLE_TABLES = 80 if SMOKE else 320
WIKITABLE_SEED = 7
VIZNET_TABLES = 150 if SMOKE else 900
VIZNET_SEED = 3
EPOCHS = 2 if SMOKE else 14
BATCH_SIZE = 8
MAX_TOKENS = 16

_CACHE: Dict[str, object] = {}


def substrate():
    """(tokenizer, pretrained LM) shared by every benchmark."""
    if "substrate" not in _CACHE:
        _CACHE["substrate"] = build_pretrained_lm(PIPELINE)
    return _CACHE["substrate"]


def knowledge_base() -> KnowledgeBase:
    if "kb" not in _CACHE:
        _CACHE["kb"] = build_knowledge_base(PIPELINE)
    return _CACHE["kb"]


def wikitable_splits() -> DatasetSplits:
    if "wikitable" not in _CACHE:
        dataset = generate_wikitable_dataset(
            num_tables=WIKITABLE_TABLES, seed=WIKITABLE_SEED, kb=knowledge_base()
        )
        _CACHE["wikitable"] = split_dataset(dataset, seed=1)
    return _CACHE["wikitable"]


def viznet_splits() -> DatasetSplits:
    if "viznet" not in _CACHE:
        dataset = generate_viznet_dataset(num_tables=VIZNET_TABLES, seed=VIZNET_SEED)
        _CACHE["viznet"] = split_dataset(dataset, seed=2)
    return _CACHE["viznet"]


# ---------------------------------------------------------------------------
# Model factories (cached)
# ---------------------------------------------------------------------------

def _train(key: str, splits: DatasetSplits, config: DoduoConfig,
           turl: bool = False) -> DoduoTrainer:
    if key in _CACHE:
        return _CACHE[key]
    tokenizer, pretrained = substrate()
    if turl:
        trainer = make_turl_trainer(
            splits.train,
            tokenizer,
            PIPELINE.encoder_config(tokenizer.vocab_size),
            config,
            pretrained_encoder_state=pretrained.encoder.state_dict(),
        )
    else:
        trainer = make_trainer(splits.train, tokenizer, PIPELINE, config,
                               pretrained=pretrained)
    trainer.train(valid_dataset=splits.valid)
    _CACHE[key] = trainer
    return trainer


def _wikitable_config(**overrides) -> DoduoConfig:
    defaults = dict(
        tasks=(TYPE_TASK, RELATION_TASK), multi_label=True,
        epochs=EPOCHS, batch_size=BATCH_SIZE, max_tokens_per_column=MAX_TOKENS,
    )
    defaults.update(overrides)
    return DoduoConfig(**defaults)


def _viznet_config(**overrides) -> DoduoConfig:
    # VizNet models get a few extra epochs: the single-label task converges
    # more slowly to its plateau than the multi-label WikiTable task at this
    # scale, and every method (Sherlock/Sato train for 40) is given its
    # converged budget.
    defaults = dict(
        tasks=(TYPE_TASK,), multi_label=False,
        epochs=EPOCHS + 4, batch_size=BATCH_SIZE, max_tokens_per_column=MAX_TOKENS,
    )
    defaults.update(overrides)
    return DoduoConfig(**defaults)


def doduo_wikitable(max_tokens: int = MAX_TOKENS,
                    include_headers: bool = False) -> DoduoTrainer:
    key = f"doduo-wt-mt{max_tokens}-hdr{include_headers}"
    return _train(key, wikitable_splits(),
                  _wikitable_config(max_tokens_per_column=max_tokens,
                                    include_headers=include_headers))


def turl_wikitable(include_headers: bool = False) -> DoduoTrainer:
    key = f"turl-wt-hdr{include_headers}"
    return _train(key, wikitable_splits(),
                  _wikitable_config(include_headers=include_headers), turl=True)


def dosolo_wikitable(task: str) -> DoduoTrainer:
    return _train(f"dosolo-wt-{task}", wikitable_splits(),
                  _wikitable_config(tasks=(task,)))


def dosolo_scol_wikitable() -> DoduoTrainer:
    return _train("scol-wt", wikitable_splits(),
                  _wikitable_config(single_column=True))


def doduo_viznet(max_tokens: int = MAX_TOKENS) -> DoduoTrainer:
    return _train(f"doduo-vz-mt{max_tokens}", viznet_splits(),
                  _viznet_config(max_tokens_per_column=max_tokens))


def dosolo_scol_viznet(max_tokens: int = MAX_TOKENS) -> DoduoTrainer:
    return _train(f"scol-vz-mt{max_tokens}", viznet_splits(),
                  _viznet_config(single_column=True,
                                 max_tokens_per_column=max_tokens))


def sherlock_viznet() -> SherlockModel:
    if "sherlock-vz" not in _CACHE:
        model = SherlockModel(viznet_splits().train, SherlockConfig(epochs=40))
        model.fit()
        _CACHE["sherlock-vz"] = model
    return _CACHE["sherlock-vz"]


def sherlock_wikitable() -> SherlockModel:
    if "sherlock-wt" not in _CACHE:
        model = SherlockModel(
            wikitable_splits().train,
            SherlockConfig(epochs=40, multi_label=True),
        )
        model.fit()
        _CACHE["sherlock-wt"] = model
    return _CACHE["sherlock-wt"]


def sato_viznet() -> SatoModel:
    if "sato-vz" not in _CACHE:
        model = SatoModel(
            viznet_splits().train,
            SatoConfig(epochs=40, num_topics=12, lda_iterations=25),
        )
        model.fit()
        _CACHE["sato-vz"] = model
    return _CACHE["sato-vz"]


def custom_wikitable_trainer(
    key: str,
    pretrained: bool = True,
    splits: Optional[DatasetSplits] = None,
    **config_overrides,
) -> DoduoTrainer:
    """Train a WikiTable DODUO variant (ablation benches).

    ``pretrained=False`` starts from random encoder weights — the Appendix
    A.5 comparison.  ``splits`` overrides the training data (e.g. the
    shuffled-table protocol of Table 6).  Config overrides feed straight
    into :func:`_wikitable_config`.
    """
    cache_key = f"custom-wt-{key}"
    if cache_key in _CACHE:
        return _CACHE[cache_key]
    tokenizer, pretrained_lm = substrate()
    if splits is None:
        splits = wikitable_splits()
    trainer = make_trainer(
        splits.train, tokenizer, PIPELINE, _wikitable_config(**config_overrides),
        pretrained=pretrained_lm if pretrained else None,
    )
    trainer.train(valid_dataset=splits.valid)
    _CACHE[cache_key] = trainer
    return trainer


def fraction_trainer(fraction: float, tasks: Tuple[str, ...]) -> DoduoTrainer:
    """Doduo / Dosolo trained on a fraction of WikiTable (Figure 4)."""
    key = f"frac-{fraction:.2f}-{'-'.join(tasks)}"
    if key in _CACHE:
        return _CACHE[key]
    splits = training_fraction(wikitable_splits(), fraction, seed=0)
    return _train(key, splits, _wikitable_config(tasks=tasks))


def annotation_engine(trainer: DoduoTrainer, batch_size: int = 8,
                      cache_size: int = 256, **config_kwargs) -> AnnotationEngine:
    """A serving engine over a benchmark-trained model.

    Engines are intentionally *not* cached: each caller gets fresh stats and
    an empty serialization cache, so throughput measurements stay honest.
    Extra keyword arguments land on :class:`EngineConfig` verbatim
    (``precision=``, ``waste_budget=``, ...).
    """
    return AnnotationEngine(
        trainer,
        EngineConfig(
            batch_size=batch_size, cache_size=cache_size, **config_kwargs
        ),
    )


# ---------------------------------------------------------------------------
# Output formatting
# ---------------------------------------------------------------------------

RESULTS_FILE = Path(__file__).parent / "results.txt"


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print an experiment table in a paper-like fixed-width format.

    The table is also appended to ``benchmarks/results.txt`` so regenerated
    experiment tables survive pytest's output capture.
    """
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines = [f"\n=== {title} ===", line, "-" * len(line)]
    lines += ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
              for row in rows]
    text = "\n".join(lines)
    print(text)
    with open(RESULTS_FILE, "a") as f:
        f.write(text + "\n")


def print_block(text: str) -> None:
    """Print a pre-rendered block (chart, heatmap) and keep it in results.txt."""
    print(text)
    with open(RESULTS_FILE, "a") as f:
        f.write("\n" + text + "\n")


def pct(value: float) -> str:
    return f"{value * 100:.2f}"
