"""Figure 4: F1 vs training-data fraction on WikiTable, Doduo vs Dosolo.

The paper trains with 10/25/50/100% of the training tables and shows that
(a) F1 grows with data for both models, and (b) the multi-task Doduo
dominates the single-task Dosolo, especially at small fractions.  This bench
regenerates both curves (type and relation tasks).

Mini-scale caveat (recorded in EXPERIMENTS.md): property (a) and the
full-data ordering Doduo >= Dosolo reproduce, but at intermediate fractions
our hundred-times-smaller encoder shows task *interference* instead of task
transfer — the paper's smallest fraction is still ~40k tables, two orders
of magnitude more multi-task signal than our largest.  The assertions below
therefore pin the monotone-growth shape and the full-data ordering, which
are the claims Table 6 cross-checks.
"""

from repro.evaluation import line_chart

from common import (
    doduo_wikitable,
    dosolo_wikitable,
    fraction_trainer,
    pct,
    print_block,
    print_table,
    wikitable_splits,
)

FRACTIONS = (0.10, 0.25, 0.50, 1.00)


def run_experiment():
    splits = wikitable_splits()
    curves = {"Doduo": {}, "Dosolo": {}}

    for fraction in FRACTIONS:
        if fraction == 1.00:
            doduo = doduo_wikitable()
            solo_type = dosolo_wikitable("type")
            solo_rel = dosolo_wikitable("relation")
        else:
            doduo = fraction_trainer(fraction, ("type", "relation"))
            solo_type = fraction_trainer(fraction, ("type",))
            solo_rel = fraction_trainer(fraction, ("relation",))
        doduo_scores = doduo.evaluate(splits.test)
        curves["Doduo"][fraction] = (
            doduo_scores["type"].f1, doduo_scores["relation"].f1
        )
        curves["Dosolo"][fraction] = (
            solo_type.evaluate(splits.test)["type"].f1,
            solo_rel.evaluate(splits.test)["relation"].f1,
        )

    for task_index, task in enumerate(("type", "relation")):
        rows = [
            (
                f"{int(fraction * 100)}%",
                pct(curves["Doduo"][fraction][task_index]),
                pct(curves["Dosolo"][fraction][task_index]),
            )
            for fraction in FRACTIONS
        ]
        print_table(
            f"Figure 4{'ab'[task_index]}: column {task} prediction vs training size",
            ["Training data", "Doduo F1", "Dosolo F1"],
            rows,
        )
        print_block(line_chart(
            {
                "Doduo": [curves["Doduo"][f][task_index] for f in FRACTIONS],
                "Dosolo": [curves["Dosolo"][f][task_index] for f in FRACTIONS],
            },
            x_labels=[f"{int(f * 100)}%" for f in FRACTIONS],
            title=f"Figure 4{'ab'[task_index]} ({task}) as a chart",
        ))
    return curves


def test_fig4_data_efficiency(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Shape: more data helps both models on both tasks.
    for model in ("Doduo", "Dosolo"):
        for task_index in (0, 1):
            assert (
                curves[model][1.00][task_index]
                >= curves[model][0.10][task_index] - 0.02
            )
    # Shape: with the full training set, multi-task learning is at least as
    # good as single-task on both tasks (the Table 6 ordering).
    for task_index in (0, 1):
        assert (
            curves["Doduo"][1.00][task_index]
            >= curves["Dosolo"][1.00][task_index] - 0.02
        )
