"""Table 9: column-clustering case study on the enterprise HR database.

Paper numbers (Prec/Recall/F1 = Homogeneity/Completeness/V-measure):
Doduo+column value emb 68.19/70.40/69.28; Doduo+predicted type
44.87/61.32/51.82; fastText+column value emb 35.90/76.61/48.89;
fastText+column name emb 56.62/74.68/64.40; COMA 58.47/66.06/62.03;
DistributionBased 23.87/69.51/35.53.

Protocol: the Doduo model is trained on WikiTable (out-of-domain, Section 7)
and fastText is "off-the-shelf" — trained on the substrate text corpus, not
on the enterprise data being clustered.

Reproduced shapes (asserted): contextualized column embeddings beat the
predicted-type criterion by a wide margin (the paper's key recommendation),
and DistributionBased has by far the worst precision of any method (it
merges the overlapping-range ID/count/timestamp/rating columns into one
giant component).  Documented deviation (EXPERIMENTS.md): the paper's
*absolute* ranking puts Doduo embeddings first; at mini scale
character-n-gram methods rank higher than they do on real data, because the
synthetic values have clean, cluster-identifying formats and our
out-of-domain substrate covers 18 types rather than 255.
"""

import numpy as np

from repro.datasets import generate_enterprise_dataset
from repro.matching import FastTextLike, run_case_study

from common import PIPELINE, doduo_wikitable, knowledge_base, pct, print_table


def run_experiment():
    trainer = doduo_wikitable()
    enterprise = generate_enterprise_dataset(seed=23)

    # Off-the-shelf embeddings: trained on the substrate corpus (our stand-in
    # for the web corpus behind released fastText vectors), never on the
    # enterprise tables themselves.
    corpus = knowledge_base().verbalize(np.random.default_rng(PIPELINE.pretrain_seed))
    fasttext = FastTextLike(dim=32, seed=0)
    fasttext.train(list(corpus), epochs=2)

    result = run_case_study(enterprise, trainer, fasttext, seed=0)
    rows = [
        (method, pct(h), pct(c), pct(v))
        for method, h, c, v in result.rows()
    ]
    print_table(
        "Table 9: case study (clustering 50 enterprise columns)",
        ["Method", "Prec.", "Recall", "F1"],
        rows,
    )
    return result.scores


def test_table9_case_study(benchmark):
    scores = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert len(scores) == 6
    doduo_emb = scores["Doduo+column value emb"][2]
    # Contextualized embeddings beat the predicted-type criterion (the
    # paper's recommendation for the toolbox).
    assert doduo_emb > scores["Doduo+predicted type"][2] + 0.05
    # Among the schema matchers and non-contextual embeddings,
    # DistributionBased has the worst precision (the paper's Table 9
    # failure mode: it merges numeric attributes into giant components).
    dist_precision = scores["DistributionBased (with column name)"][0]
    for method in (
        "COMA (with column name)",
        "fastText+column value emb",
        "fastText+column name emb",
    ):
        assert dist_precision <= scores[method][0] + 1e-9
    for h, c, v in scores.values():
        assert 0.0 <= v <= 1.0
