"""Table 11: token budget sweep on VizNet, Doduo vs DosoloSCol.

Paper numbers (macro / micro F1): Doduo 81.0/92.5 (8), 83.6/93.6 (16),
83.4/94.2 (32); DosoloSCol 72.7/87.2 (8), 76.1/89.1 (16), 77.4/90.2 (32).
Expected shape: the multi-column model dominates the single-column model at
every budget, and both improve (or saturate) with more tokens.
"""

import numpy as np

from repro.evaluation import multiclass_macro_f1, multiclass_micro_f1

from common import (
    doduo_viznet,
    dosolo_scol_viznet,
    pct,
    print_table,
    viznet_splits,
)

TOKEN_BUDGETS = (8, 16)


def _evaluate(trainer, dataset):
    predictions = trainer.predict_types(dataset.tables)
    y_true = np.concatenate([
        [dataset.type_id(col.type_labels[0]) for col in table.columns]
        for table in dataset.tables
    ])
    y_pred = np.concatenate(predictions)
    return (
        multiclass_macro_f1(y_true, y_pred, dataset.num_types),
        multiclass_micro_f1(y_true, y_pred).f1,
    )


def run_experiment():
    splits = viznet_splits()
    results = {}
    rows = []
    for method, factory in (("Doduo", doduo_viznet), ("DosoloSCol", dosolo_scol_viznet)):
        for budget in TOKEN_BUDGETS:
            trainer = factory(max_tokens=budget)
            macro, micro = _evaluate(trainer, splits.test)
            results[(method, budget)] = (macro, micro)
            rows.append((method, budget, pct(macro), pct(micro)))
    print_table(
        "Table 11: VizNet token budget sweep",
        ["Method", "MaxToken/col", "Macro F1", "Micro F1"],
        rows,
    )
    return results


def test_table11_viznet_tokens(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Shape: table context dominates at the largest budget.
    top = max(TOKEN_BUDGETS)
    assert results[("Doduo", top)][1] >= results[("DosoloSCol", top)][1] - 0.02
