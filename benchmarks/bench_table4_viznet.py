"""Table 4: performance on the VizNet dataset (macro / micro F1).

Paper numbers: Sherlock 69.2/86.7 (Full) and 64.2/87.9 (multi-column only);
Sato 75.6/88.4 and 73.5/92.5; Doduo 84.6/94.3 and 83.8/96.4.
Expected shape: Doduo > Sato > Sherlock on both splits.
"""

import numpy as np

from repro.datasets import multi_column_only
from repro.evaluation import multiclass_macro_f1, multiclass_micro_f1

from common import (
    doduo_viznet,
    pct,
    print_table,
    sato_viznet,
    sherlock_viznet,
    viznet_splits,
)


def _labels_and_predictions_doduo(trainer, dataset):
    predictions = trainer.predict_types(dataset.tables)
    y_true = np.concatenate([
        [dataset.type_id(col.type_labels[0]) for col in table.columns]
        for table in dataset.tables
    ])
    y_pred = np.concatenate(predictions)
    return y_true, y_pred


def _scores(y_true, y_pred, num_classes):
    return (
        multiclass_macro_f1(y_true, y_pred, num_classes),
        multiclass_micro_f1(y_true, y_pred).f1,
    )


def run_experiment():
    splits = viznet_splits()
    full = splits.test
    multi = multi_column_only(splits.test)
    num_classes = full.num_types
    results = {}

    sherlock = sherlock_viznet()
    for name, subset in (("Full", full), ("Multi-column only", multi)):
        columns, labels = sherlock._collect_columns(subset.tables)
        predictions = sherlock.predict(columns)
        results.setdefault("Sherlock", {})[name] = _scores(labels, predictions, num_classes)

    sato = sato_viznet()
    for name, subset in (("Full", full), ("Multi-column only", multi)):
        y_true, y_pred = [], []
        for table in subset.tables:
            y_true.extend(sato._table_labels(table).tolist())
            y_pred.extend(sato.predict_table(table))
        results.setdefault("Sato", {})[name] = _scores(
            np.asarray(y_true), np.asarray(y_pred), num_classes
        )

    doduo = doduo_viznet()
    for name, subset in (("Full", full), ("Multi-column only", multi)):
        y_true, y_pred = _labels_and_predictions_doduo(doduo, subset)
        results.setdefault("Doduo", {})[name] = _scores(y_true, y_pred, num_classes)

    rows = [
        (
            method,
            pct(scores["Full"][0]), pct(scores["Full"][1]),
            pct(scores["Multi-column only"][0]), pct(scores["Multi-column only"][1]),
        )
        for method, scores in results.items()
    ]
    print_table(
        "Table 4: VizNet",
        ["Method", "Full Macro F1", "Full Micro F1", "MC Macro F1", "MC Micro F1"],
        rows,
    )
    return results


def test_table4_viznet(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Shape: Doduo beats Sherlock on every metric; Doduo >= Sato (micro).
    for split in ("Full", "Multi-column only"):
        assert results["Doduo"][split][1] > results["Sherlock"][split][1]
        assert results["Doduo"][split][1] >= results["Sato"][split][1] - 0.02
