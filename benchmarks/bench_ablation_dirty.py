"""Ablation: robustness to dirty data (Appendix B of the paper).

The paper assumes "correct and clean" table values and cites evidence
[26, 27] that pre-trained-LM approaches degrade gracefully on dirty data
(missing or misplaced values).  This bench makes the claim concrete: the
VizNet DODUO model is evaluated on corrupted copies of the test set with
increasing corruption rates per error mode.

Expected shape: F1 decreases monotonically-ish with the corruption rate;
mild corruption (10% of cells) costs only a few points; misplaced values
hurt more than missing values at the same rate because they actively insert
wrong-type evidence rather than removing evidence.
"""

from repro.datasets import CorruptionConfig, corrupt_dataset

from common import doduo_viznet, pct, print_table, viznet_splits

RATES = (0.0, 0.1, 0.3, 0.5)


def run_experiment():
    trainer = doduo_viznet()
    test = viznet_splits().test

    results = {}
    for mode in ("missing", "misplaced", "typo"):
        series = []
        for rate in RATES:
            config = CorruptionConfig(**{f"{mode}_rate": rate})
            dirty = corrupt_dataset(test, config, seed=13)
            series.append(trainer.evaluate(dirty)["type"].f1)
        results[mode] = series

    rows = [
        (mode, *[pct(f1) for f1 in series])
        for mode, series in results.items()
    ]
    print_table(
        "Ablation: VizNet type F1 under dirty data (Appendix B)",
        ["Corruption", *[f"rate={r}" for r in RATES]],
        rows,
    )
    return results


def test_ablation_dirty(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for mode, series in results.items():
        clean = series[0]
        # Mild corruption degrades gracefully...
        assert series[1] > 0.5 * clean, (mode, series)
        # ...and heavy corruption never *helps*.
        assert series[-1] <= clean + 0.02, (mode, series)
