"""Socket serving overhead: the TCP front door vs in-process submit().

Not a paper table — this measures the ISSUE-5 serving refactor: the
asyncio :class:`~repro.serving.AnnotationServer` speaking the
newline-delimited JSON protocol over a real socket, against the same
gateway driven in-process through ``submit()`` futures.

The socket path pays for JSON encode/decode on both ends, TCP framing,
the event loop, and the per-connection answer FIFO; the in-process
baseline pays none of that but also cannot serve remote clients.  The
acceptance bar: pipelined socket throughput within 15% of in-process
``submit()`` at smoke scale.

Also asserts correctness on the way: every socket answer is exactly the
in-process answer's ``to_dict`` record for the same table (the shared
protocol layer at work), and per-connection FIFO order holds under a
fully pipelined client.
"""

import json
import socket
import time

from common import SMOKE, doduo_wikitable, print_block, print_table, wikitable_splits

from repro.io import table_to_dict
from repro.serving import (
    AnnotationEngine,
    AnnotationGateway,
    EngineConfig,
    ModelRegistry,
    QueueConfig,
)
from repro.serving.server import ServerThread

WORKLOAD = 40

# Forward passes dominate at paper scale; at CI smoke scale the model is
# deliberately tiny, so wire/serde overhead weighs more per pass and the
# bar is held a little looser (the full-scale bar is the acceptance
# criterion).
RELATIVE_THROUGHPUT_FLOOR = 0.70 if SMOKE else 0.85


def _gateway(trainer):
    # cache_size=0: a private, disabled serialization cache per path so
    # neither inherits the other's warm serializations; max_batch=8 is
    # the serving default.
    registry = ModelRegistry()
    registry.register("doduo", AnnotationEngine(
        trainer, EngineConfig(batch_size=8, cache_size=0)
    ))
    return AnnotationGateway(registry, QueueConfig(max_batch=8, max_latency=0.005))


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_experiment():
    trainer = doduo_wikitable()
    source = wikitable_splits().test.tables
    tables = (source * ((WORKLOAD // len(source)) + 1))[:WORKLOAD]

    # In-process baseline: futures through gateway.submit, all in flight.
    inproc_results = []

    def run_inproc():
        futures = [inproc_gateway.submit(table) for table in tables]
        inproc_results.extend(f.result() for f in futures)

    with _gateway(trainer) as inproc_gateway:
        inproc_seconds = _timed(run_inproc)
    inproc_records = [r.to_dict(with_embeddings=False) for r in inproc_results]

    # Socket path: a twin gateway behind the TCP server, one pipelined
    # client connection writing every record before reading the answers
    # (the answer FIFO preserves order; TCP buffers absorb the burst).
    socket_answers = []
    socket_gateway = _gateway(trainer)

    def run_socket():
        with socket.create_connection(address, timeout=120) as sock:
            with sock.makefile("rw", encoding="utf-8", newline="\n") as stream:
                for i, table in enumerate(tables):
                    record = table_to_dict(table)
                    record["id"] = i
                    stream.write(json.dumps(record) + "\n")
                stream.flush()
                for _ in tables:
                    socket_answers.append(json.loads(stream.readline()))

    with socket_gateway, ServerThread(socket_gateway) as address:
        socket_seconds = _timed(run_socket)

    # Correctness ride-along: the wire changed nothing about the record.
    assert [a["id"] for a in socket_answers] == list(range(len(tables)))
    for answer, record in zip(socket_answers, inproc_records):
        got = dict(answer)
        got.pop("id")
        assert got == json.loads(json.dumps(record))

    relative = inproc_seconds / socket_seconds
    rows = [
        ("in-process submit()", f"{inproc_seconds:.3f}",
         f"{len(tables) / inproc_seconds:.1f}", "1.00"),
        ("TCP socket (pipelined client)", f"{socket_seconds:.3f}",
         f"{len(tables) / socket_seconds:.1f}", f"{relative:.2f}"),
    ]
    print_table(
        f"Socket serving ({len(tables)} requests, 1 connection)",
        ["Path", "Seconds", "Tables/s", "Relative"],
        rows,
    )

    summary = {
        "requests": len(tables),
        "inproc_seconds": round(inproc_seconds, 4),
        "socket_seconds": round(socket_seconds, 4),
        "relative_throughput": round(relative, 3),
    }
    print_block("server-socket-json: " + json.dumps(summary))
    return summary


def test_server_socket(benchmark):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The acceptance bar: the network face keeps pace with in-process
    # serving — the protocol and event loop must not become the engine.
    assert summary["relative_throughput"] >= RELATIVE_THROUGHPUT_FLOOR
