"""Figure 6: inter-column dependency via attention analysis (VizNet).

Aggregates last-layer CLS-to-CLS attention over multi-column test tables
into a type-by-type dependency matrix, normalized so the reference point is
zero.  The paper's headline observation: some dependencies are asymmetric —
e.g. ``age`` relies on ``origin`` while the reverse direction is weak.  Our
analogue: the context-only alias types (birthPlace, nationality, origin,
location) must draw *more* attention from their theme neighbours than
average, because their own values are uninformative.
"""

import numpy as np

from repro.analysis import compute_attention_dependency, render_heatmap_ascii
from repro.datasets import multi_column_only

from common import doduo_viznet, print_block, print_table, viznet_splits

CONTEXT_ONLY_TYPES = ("birthPlace", "nationality", "origin", "location")


def run_experiment():
    splits = viznet_splits()
    trainer = doduo_viznet()
    subset = multi_column_only(splits.test)
    dependency = compute_attention_dependency(trainer, subset.tables)

    strongest = dependency.strongest_dependencies(top_k=12)
    print_table(
        "Figure 6: strongest inter-column dependencies (relative attention)",
        ["column type", "relies on", "score"],
        [(a, b, f"{s:+.4f}") for a, b, s in strongest],
    )

    # Outgoing dependency mass of context-only types vs all types.
    outgoing = {}
    for i, type_name in enumerate(dependency.types):
        observed = dependency.counts[i] > 0
        if observed.any():
            outgoing[type_name] = float(dependency.matrix[i][observed].mean())
    context_scores = [v for k, v in outgoing.items() if k in CONTEXT_ONLY_TYPES]
    other_scores = [v for k, v in outgoing.items() if k not in CONTEXT_ONLY_TYPES]
    print_table(
        "Figure 6 summary: mean outgoing relative attention",
        ["group", "mean score"],
        [
            ("context-only types (birthPlace/nationality/origin/location)",
             f"{np.mean(context_scores):+.4f}"),
            ("all other types", f"{np.mean(other_scores):+.4f}"),
        ],
    )
    print_block(render_heatmap_ascii(dependency))
    return {
        "matrix_shape": dependency.matrix.shape,
        "context_mean": float(np.mean(context_scores)),
        "other_mean": float(np.mean(other_scores)),
        "asymmetric": bool(
            not np.allclose(dependency.matrix, dependency.matrix.T, atol=1e-6)
        ),
    }


def test_fig6_attention(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    n, m = results["matrix_shape"]
    assert n == m > 0
    # Shape: the dependency matrix is asymmetric, as in the paper.
    assert results["asymmetric"]
