"""Table 5: Doduo's performance on the 15 most numeric VizNet types.

For each of the paper's 15 numeric-leaning types the bench reports %num (the
fraction of cells castable to a numeric/date value) and the per-class F1 of
the VizNet DODUO model.  Paper shape: most numeric types score near the
overall macro F1, with ``ranking`` (33.2) and ``capacity`` (62.6) as notable
weak spots because their value ranges collide with sibling types.
"""

import numpy as np

from repro.datasets import NUMERIC_TYPES_TABLE5, numeric_fraction
from repro.evaluation import multiclass_macro_f1, per_class_f1

from common import doduo_viznet, pct, print_table, viznet_splits


def run_experiment():
    splits = viznet_splits()
    dataset = splits.test
    trainer = doduo_viznet()

    predictions = trainer.predict_types(dataset.tables)
    y_true = np.concatenate([
        [dataset.type_id(col.type_labels[0]) for col in table.columns]
        for table in dataset.tables
    ])
    y_pred = np.concatenate(predictions)
    scores = per_class_f1(y_true, y_pred, dataset.num_types)

    # %num measured over the whole test split per type.
    values_by_type = {t: [] for t in NUMERIC_TYPES_TABLE5}
    for table in dataset.tables:
        for col in table.columns:
            label = col.type_labels[0]
            if label in values_by_type:
                values_by_type[label].extend(col.values)

    rows, f1_by_type = [], {}
    for type_name in NUMERIC_TYPES_TABLE5:
        type_id = dataset.type_id(type_name)
        f1 = scores[type_id].f1
        f1_by_type[type_name] = f1
        pnum = numeric_fraction(values_by_type[type_name])
        support = int((y_true == type_id).sum())
        rows.append((type_name, f"{pnum * 100:.2f}", pct(f1), support))
    rows.sort(key=lambda r: -float(r[1]))
    print_table(
        "Table 5: Doduo on the 15 most numeric VizNet types",
        ["type", "%num", "F1", "support"],
        rows,
    )
    average = float(np.mean([f for f in f1_by_type.values()]))
    macro = multiclass_macro_f1(y_true, y_pred, dataset.num_types)
    print_table(
        "Table 5 summary",
        ["avg numeric-type F1", "overall macro F1"],
        [(pct(average), pct(macro))],
    )
    return {"per_type": f1_by_type, "average": average, "macro": macro}


def test_table5_numeric(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert set(results["per_type"]) == set(NUMERIC_TYPES_TABLE5)
    assert 0.0 <= results["average"] <= 1.0
    # Shape: the numeric types are handled, on average, in the same ballpark
    # as the overall macro F1 (the paper's conclusion for Table 5).
    assert results["average"] > results["macro"] - 0.35
