"""Table 12: language-model probing on WikiTable types and relations.

The *pre-trained, not fine-tuned* masked LM scores template sentences
("<value> is a <type>", "<s> was born in <o>") by pseudo-perplexity; the
bench reports the average rank of the true label and its PPL relative to the
candidate average, listing Top-5 / Bottom-5 exactly like the paper.

Expected shape: the LM knows substantially more than chance about frequent,
well-verbalized types/relations (average rank well below the midpoint for
the Top-5), with a long tail of poorly known ones.
"""

import numpy as np

from repro.analysis import (
    kb_relation_examples,
    kb_type_examples,
    probe_column_relations,
    probe_column_types,
)

from common import knowledge_base, print_table, substrate

# Fine entity types with single-token-ish names, as in the paper's filter.
TYPE_CANDIDATES = [
    "director", "producer", "athlete", "politician", "musician", "author",
    "actor", "coach", "city", "country", "state", "company", "film",
    "album", "book", "position", "genre", "language",
]

RELATION_CANDIDATES = [
    "film.directed_by", "film.produced_by", "film.release_country",
    "film.starring", "person.place_of_birth", "person.place_of_death",
    "person.place_lived", "person.nationality", "athlete.team_roster",
    "album.performed_by", "book.written_by", "city.located_in",
    "company.headquarters", "team.home_city",
]


def _report_rows(report, k=5):
    ordered = sorted(report.scores, key=lambda s: s.average_rank)
    rows = []
    for tag, bucket in (("Top", ordered[:k]), ("Bottom", ordered[-k:])):
        for score in bucket:
            rows.append((
                tag, score.label, f"{score.average_rank:.2f}",
                f"{score.normalized_ppl:.3f}",
            ))
    return rows, ordered


def run_experiment():
    tokenizer, pretrained = substrate()
    kb = knowledge_base()
    rng = np.random.default_rng(0)

    type_examples = [
        (v, t) for v, t in kb_type_examples(kb, rng, per_type=3)
        if t in TYPE_CANDIDATES
    ]
    type_report = probe_column_types(
        pretrained.model, tokenizer, type_examples, TYPE_CANDIDATES,
        max_examples_per_type=3,
    )
    rows, ordered_types = _report_rows(type_report)
    print_table(
        f"Table 12 (left): type probing ({type_report.num_candidates} candidates)",
        ["", "Column type", "Avg. rank", "PPL / Avg.PPL"],
        rows,
    )

    relation_examples = [
        e for e in kb_relation_examples(kb, rng, per_relation=3)
        if e[2] in RELATION_CANDIDATES
    ]
    relation_report = probe_column_relations(
        pretrained.model, tokenizer, relation_examples, RELATION_CANDIDATES,
        max_examples_per_relation=3,
    )
    rows, ordered_rels = _report_rows(relation_report)
    print_table(
        f"Table 12 (right): relation probing ({relation_report.num_candidates} candidates)",
        ["", "Column relation", "Avg. rank", "PPL / Avg.PPL"],
        rows,
    )
    return {
        "type_best_rank": ordered_types[0].average_rank,
        "type_worst_rank": ordered_types[-1].average_rank,
        "rel_best_rank": ordered_rels[0].average_rank,
        "num_type_candidates": type_report.num_candidates,
        "num_rel_candidates": relation_report.num_candidates,
    }


def test_table12_probing_wikitable(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    midpoint = (results["num_type_candidates"] + 1) / 2
    # Shape: the best-known type ranks clearly better than chance, and a
    # spread exists between best and worst.
    assert results["type_best_rank"] < midpoint
    assert results["type_worst_rank"] > results["type_best_rank"]
    assert results["rel_best_rank"] < (results["num_rel_candidates"] + 1) / 2
