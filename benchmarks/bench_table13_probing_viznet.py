"""Table 13: language-model probing on VizNet column types.

Same protocol as Table 12 but with VizNet-style type names and cell values
drawn from the VizNet generators.  The paper observes the same trend as on
WikiTable: frequent, well-verbalized types (year, state, language) are known
to the LM; opaque ones (nationality, birthPlace) are not — which is exactly
why the fine-tuned model struggles most on those types (Figure 5).
"""

import numpy as np

from repro.analysis import probe_column_types
from repro.datasets.viznet import VALUE_GENERATORS

from common import print_table, substrate

# VizNet types whose names read naturally in the "<value> is a <type>"
# template (the paper filtered to single-token type names similarly).
CANDIDATES = [
    "city", "country", "state", "company", "team", "album", "film",
    "language", "genre", "position", "year", "age", "name", "symbol",
    "nationality", "birthPlace",
]


def run_experiment():
    tokenizer, pretrained = substrate()
    rng = np.random.default_rng(1)
    examples = []
    for type_name in CANDIDATES:
        generator = VALUE_GENERATORS[type_name]
        for _ in range(3):
            examples.append((generator(rng), type_name))

    report = probe_column_types(
        pretrained.model, tokenizer, examples, CANDIDATES, max_examples_per_type=3
    )
    ordered = sorted(report.scores, key=lambda s: s.average_rank)
    rows = []
    for tag, bucket in (("Top", ordered[:5]), ("Bottom", ordered[-5:])):
        for score in bucket:
            rows.append((tag, score.label, f"{score.average_rank:.2f}",
                         f"{score.normalized_ppl:.3f}"))
    print_table(
        f"Table 13: VizNet type probing ({report.num_candidates} candidates)",
        ["", "Column type", "Avg. rank", "PPL / Avg.PPL"],
        rows,
    )
    ranks = {s.label: s.average_rank for s in report.scores}
    return ranks


def test_table13_probing_viznet(benchmark):
    ranks = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    midpoint = (len(CANDIDATES) + 1) / 2
    assert min(ranks.values()) < midpoint
    # Shape: the context-only alias types are NOT well known to the LM —
    # the KB corpus never verbalizes "X is a birthPlace".
    assert ranks["birthPlace"] >= min(ranks.values())
