"""Table 6: ablation study on the WikiTable dataset.

Paper numbers (micro F1, type / relation): Doduo 92.50 / 91.90; with
shuffled rows 91.94 / 91.61; with shuffled columns 92.68 / 91.98; Dosolo
91.37 / 91.24; DosoloSCol 82.45 / 83.08.

Protocol note: for the shuffled variants the paper "trained and evaluated
Doduo on two versions of the WikiTable dataset, where the input table's rows
(columns) were randomly shuffled" — i.e. the shuffle is applied to training
*and* evaluation data.  That is reproduced here.  A second diagnostic table
reports the stricter evaluation-only shuffle: BERT-base survives it thanks
to its depth, while the mini encoder's column-segment prior does not — and
the ``augment_column_shuffle`` training option recovers the invariance.

Expected shape: shuffling rows/columns (paper protocol) changes F1 only
marginally; removing multi-task learning (Dosolo) costs a little; removing
table context (DosoloSCol) costs the most on relations.
"""

import numpy as np

from repro.datasets import DatasetSplits, TableDataset

from common import (
    custom_wikitable_trainer,
    doduo_wikitable,
    dosolo_scol_wikitable,
    dosolo_wikitable,
    pct,
    print_table,
    wikitable_splits,
)


def _shuffled(dataset: TableDataset, mode: str, seed: int = 0) -> TableDataset:
    rng = np.random.default_rng(seed)
    if mode == "rows":
        tables = [t.shuffled_rows(rng) for t in dataset.tables]
    else:
        tables = [t.shuffled_columns(rng) for t in dataset.tables]
    return TableDataset(
        tables=tables,
        type_vocab=dataset.type_vocab,
        relation_vocab=dataset.relation_vocab,
        name=f"{dataset.name}-shuf-{mode}",
    )


def _shuffled_splits(mode: str) -> DatasetSplits:
    splits = wikitable_splits()
    return DatasetSplits(
        train=_shuffled(splits.train, mode, seed=1),
        valid=_shuffled(splits.valid, mode, seed=2),
        test=_shuffled(splits.test, mode, seed=3),
    )


def run_experiment():
    splits = wikitable_splits()
    results = {}

    doduo = doduo_wikitable()
    results["Doduo"] = doduo.evaluate(splits.test)

    # Paper protocol: train AND evaluate on the shuffled dataset versions.
    for mode in ("rows", "cols"):
        shuffled = _shuffled_splits(mode)
        variant = custom_wikitable_trainer(f"shuf-{mode}", splits=shuffled)
        results[f"w/ shuffled {mode}"] = variant.evaluate(shuffled.test)

    results["Dosolo"] = {
        "type": dosolo_wikitable("type").evaluate(splits.test)["type"],
        "relation": dosolo_wikitable("relation").evaluate(splits.test)["relation"],
    }
    results["DosoloSCol"] = dosolo_scol_wikitable().evaluate(splits.test)

    rows = [
        (method, pct(scores["type"].f1), pct(scores["relation"].f1))
        for method, scores in results.items()
    ]
    print_table(
        "Table 6: WikiTable ablation (micro F1)",
        ["Method", "Type prediction", "Relation prediction"],
        rows,
    )

    # Diagnostic: evaluation-only shuffle (stricter than the paper).
    augmented = custom_wikitable_trainer(
        "shuffle-augment", augment_column_shuffle=True
    )
    eval_only = {
        "Doduo on shuffled-row test": doduo.evaluate(
            _shuffled(splits.test, "rows")
        ),
        "Doduo on shuffled-col test": doduo.evaluate(
            _shuffled(splits.test, "cols")
        ),
        "Doduo+shuffle-augmentation on shuffled-col test": augmented.evaluate(
            _shuffled(splits.test, "cols")
        ),
    }
    print_table(
        "Table 6 diagnostic: evaluation-only shuffle (mini-scale property)",
        ["Setting", "Type F1", "Relation F1"],
        [
            (name, pct(scores["type"].f1), pct(scores["relation"].f1))
            for name, scores in eval_only.items()
        ],
    )

    flat = {m: {k: v.f1 for k, v in s.items()} for m, s in results.items()}
    flat["_eval_only"] = {
        name: scores["type"].f1 for name, scores in eval_only.items()
    }
    return flat


def test_table6_ablation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Paper protocol: shuffling rows/columns causes at most marginal change.
    assert abs(results["Doduo"]["type"] - results["w/ shuffled rows"]["type"]) < 0.08
    assert abs(results["Doduo"]["type"] - results["w/ shuffled cols"]["type"]) < 0.08
    # Single-column ablation is the big hit.
    assert results["DosoloSCol"]["relation"] <= results["Doduo"]["relation"]
    assert results["DosoloSCol"]["type"] <= results["Doduo"]["type"] + 0.01
    # Shuffle augmentation restores order invariance under eval-only shuffle.
    eval_only = results["_eval_only"]
    assert (
        eval_only["Doduo+shuffle-augmentation on shuffled-col test"]
        >= eval_only["Doduo on shuffled-col test"]
    )
