"""COMA-style schema matcher [Do & Rahm, VLDB'02].

COMA combines multiple similarity matchers and aggregates them.  We
reproduce the composite matcher the Valentine suite evaluates: name-based
similarities (normalized edit distance and character-trigram overlap of
column headers) combined with an instance-based similarity (value-set
overlap), averaged, then paired greedily above a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..datasets.tables import Table


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            insert = current[j - 1] + 1
            delete = previous[j] + 1
            substitute = previous[j - 1] + (ca != cb)
            current.append(min(insert, delete, substitute))
        previous = current
    return previous[-1]


def name_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance over lowercase names."""
    a, b = a.lower(), b.lower()
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def trigram_similarity(a: str, b: str) -> float:
    """Dice coefficient over character trigrams."""
    def trigrams(s: str) -> set:
        padded = f"  {s.lower()} "
        return {padded[i:i + 3] for i in range(len(padded) - 2)}

    ta, tb = trigrams(a), trigrams(b)
    if not ta and not tb:
        return 1.0
    return 2 * len(ta & tb) / (len(ta) + len(tb))


def instance_similarity(values_a: Sequence[str], values_b: Sequence[str]) -> float:
    """Jaccard overlap of value sets (COMA's instance matcher)."""
    sa = {v.lower() for v in values_a}
    sb = {v.lower() for v in values_b}
    if not sa and not sb:
        return 1.0
    union = sa | sb
    return len(sa & sb) / len(union) if union else 0.0


@dataclass(frozen=True)
class ComaConfig:
    """Matcher weights and decision threshold."""

    name_weight: float = 0.4
    trigram_weight: float = 0.3
    instance_weight: float = 0.3
    threshold: float = 0.45


class ComaMatcher:
    """Composite COMA matcher over two tables."""

    def __init__(self, config: ComaConfig = ComaConfig()) -> None:
        self.config = config

    def column_similarity(
        self,
        header_a: Optional[str],
        values_a: Sequence[str],
        header_b: Optional[str],
        values_b: Sequence[str],
    ) -> float:
        cfg = self.config
        name_a = header_a or ""
        name_b = header_b or ""
        score = (
            cfg.name_weight * name_similarity(name_a, name_b)
            + cfg.trigram_weight * trigram_similarity(name_a, name_b)
            + cfg.instance_weight * instance_similarity(values_a, values_b)
        )
        return score

    def match(self, table_a: Table, table_b: Table) -> List[Tuple[int, int, float]]:
        """Greedy stable 1:1 matching of columns above the threshold.

        Returns ``(col_index_a, col_index_b, score)`` triples.
        """
        scores: List[Tuple[float, int, int]] = []
        for i, col_a in enumerate(table_a.columns):
            for j, col_b in enumerate(table_b.columns):
                s = self.column_similarity(
                    col_a.header, col_a.values, col_b.header, col_b.values
                )
                if s >= self.config.threshold:
                    scores.append((s, i, j))
        scores.sort(reverse=True)
        used_a, used_b = set(), set()
        matches: List[Tuple[int, int, float]] = []
        for s, i, j in scores:
            if i in used_a or j in used_b:
                continue
            used_a.add(i)
            used_b.add(j)
            matches.append((i, j, s))
        return matches
