"""fastText-style subword embeddings (the case study's "go-to" baseline).

The paper compares DODUO's contextualized column embeddings against
fastText [Bojanowski et al., 2017] column-name and column-value embeddings.
This module reproduces fastText's two defining ingredients:

* a word vector is the sum of its character n-gram (3..5) bucket vectors plus
  a whole-word vector, and
* vectors are trained with CBOW + negative sampling on a text corpus.

Crucially for the case study's outcome, these embeddings are
*context-independent*: the same token always maps to the same vector, so
semantically different columns with overlapping surface forms land close
together — the over-clustering behaviour Table 9 reports.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..text.tokenizer import basic_tokenize


def _bucket(text: str, num_buckets: int) -> int:
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % num_buckets


class FastTextLike:
    """Trainable subword embedding model.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    num_buckets:
        Hash-bucket count for character n-grams.
    min_ngram, max_ngram:
        Character n-gram lengths (fastText uses 3..6; we default to 3..5).
    """

    def __init__(
        self,
        dim: int = 32,
        num_buckets: int = 4096,
        min_ngram: int = 3,
        max_ngram: int = 5,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.num_buckets = num_buckets
        self.min_ngram = min_ngram
        self.max_ngram = max_ngram
        self._rng = np.random.default_rng(seed)
        self.input_vectors = (
            self._rng.standard_normal((num_buckets, dim)).astype(np.float32) * 0.05
        )
        self.output_vectors: Dict[str, np.ndarray] = {}
        self._word_ngrams_cache: Dict[str, List[int]] = {}

    # -- subword machinery -------------------------------------------------------
    def _word_ngrams(self, word: str) -> List[int]:
        cached = self._word_ngrams_cache.get(word)
        if cached is not None:
            return cached
        wrapped = f"<{word}>"
        buckets = [_bucket(wrapped, self.num_buckets)]  # whole-word bucket
        for n in range(self.min_ngram, self.max_ngram + 1):
            for i in range(len(wrapped) - n + 1):
                buckets.append(_bucket(wrapped[i:i + n], self.num_buckets))
        self._word_ngrams_cache[word] = buckets
        return buckets

    def word_vector(self, word: str) -> np.ndarray:
        buckets = self._word_ngrams(word)
        return self.input_vectors[buckets].mean(axis=0)

    def text_vector(self, text: str) -> np.ndarray:
        """Average word vector of all tokens in ``text``."""
        tokens = basic_tokenize(text)
        if not tokens:
            return np.zeros(self.dim, dtype=np.float32)
        return np.mean([self.word_vector(t) for t in tokens], axis=0)

    def values_vector(self, values: Sequence[str]) -> np.ndarray:
        """Column-value embedding: average over all cell vectors."""
        if not values:
            return np.zeros(self.dim, dtype=np.float32)
        return np.mean([self.text_vector(v) for v in values], axis=0)

    # -- CBOW training -------------------------------------------------------------
    def train(
        self,
        corpus: Iterable[str],
        epochs: int = 2,
        window: int = 3,
        negatives: int = 3,
        lr: float = 0.05,
    ) -> "FastTextLike":
        """Train with CBOW + negative sampling over ``corpus`` sentences."""
        sentences = [basic_tokenize(line) for line in corpus]
        vocabulary = sorted({t for s in sentences for t in s})
        for word in vocabulary:
            if word not in self.output_vectors:
                self.output_vectors[word] = (
                    self._rng.standard_normal(self.dim).astype(np.float32) * 0.05
                )
        vocab_array = np.array(vocabulary)

        for _ in range(epochs):
            order = self._rng.permutation(len(sentences))
            for s_idx in order:
                sentence = sentences[s_idx]
                for center, target in enumerate(sentence):
                    lo = max(0, center - window)
                    hi = min(len(sentence), center + window + 1)
                    context = [sentence[i] for i in range(lo, hi) if i != center]
                    if not context:
                        continue
                    context_buckets = [
                        b for word in context for b in self._word_ngrams(word)
                    ]
                    hidden = self.input_vectors[context_buckets].mean(axis=0)

                    grad_hidden = np.zeros(self.dim, dtype=np.float32)
                    samples = [(target, 1.0)]
                    neg_words = vocab_array[
                        self._rng.integers(0, len(vocab_array), size=negatives)
                    ]
                    samples.extend((w, 0.0) for w in neg_words if w != target)
                    for word, label in samples:
                        out = self.output_vectors[word]
                        score = 1.0 / (1.0 + np.exp(-float(hidden @ out)))
                        g = (score - label) * lr
                        grad_hidden += g * out
                        self.output_vectors[word] = out - g * hidden
                    update = grad_hidden / len(context_buckets)
                    np.subtract.at(self.input_vectors, context_buckets, update)
        return self
