"""Schema matching and clustering substrate for the case study (Table 9)."""

from .case_study import CaseStudyResult, run_case_study
from .clustering import UnionFind, kmeans, matches_to_clusters
from .coma import ComaConfig, ComaMatcher, levenshtein, name_similarity, trigram_similarity
from .distribution import (
    DistributionBasedMatcher,
    DistributionConfig,
    quantile_distance,
    token_distribution_similarity,
)
from .fasttextlike import FastTextLike

__all__ = [
    "CaseStudyResult",
    "ComaConfig",
    "ComaMatcher",
    "DistributionBasedMatcher",
    "DistributionConfig",
    "FastTextLike",
    "UnionFind",
    "kmeans",
    "levenshtein",
    "matches_to_clusters",
    "name_similarity",
    "quantile_distance",
    "run_case_study",
    "token_distribution_similarity",
    "trigram_similarity",
]
