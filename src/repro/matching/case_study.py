"""Column-clustering case study harness (Section 7, Table 9).

Given the enterprise HR database and a DODUO model trained on WikiTable
(i.e. *out-of-domain*, as in the paper), this module runs the six clustering
methods of Table 9 and scores each against the ground-truth clusters with
Homogeneity (Precision), Completeness (Recall), and V-measure (F1):

1. ``Doduo+column value emb``   — k-means on contextualized column embeddings
2. ``Doduo+predicted type``     — columns grouped by predicted column type
3. ``fastText+column value emb``— k-means on fastText value embeddings
4. ``fastText+column name emb`` — k-means on fastText header embeddings
5. ``COMA (with column name)``  — pairwise schema matches -> connected comps
6. ``DistributionBased``        — distributional matches -> connected comps
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.trainer import DoduoTrainer
from ..datasets.tables import TableDataset
from ..evaluation.metrics import homogeneity_completeness_v
from .clustering import kmeans, matches_to_clusters
from .coma import ComaMatcher
from .distribution import DistributionBasedMatcher
from .fasttextlike import FastTextLike


@dataclass
class CaseStudyResult:
    """Homogeneity / completeness / V-measure per method."""

    scores: Dict[str, Tuple[float, float, float]]

    def best_method(self) -> str:
        return max(self.scores, key=lambda m: self.scores[m][2])

    def rows(self) -> List[Tuple[str, float, float, float]]:
        return [
            (method, *self.scores[method])
            for method in sorted(self.scores, key=lambda m: -self.scores[m][2])
        ]


def _ground_truth(dataset: TableDataset) -> List[int]:
    names = {}
    labels = []
    for table in dataset.tables:
        for column in table.columns:
            cluster = column.type_labels[0]
            if cluster not in names:
                names[cluster] = len(names)
            labels.append(names[cluster])
    return labels


def _column_items(dataset: TableDataset) -> List[Tuple[int, int]]:
    return [
        (t, c)
        for t, table in enumerate(dataset.tables)
        for c in range(table.num_columns)
    ]


def _l2_normalize(embeddings: np.ndarray) -> np.ndarray:
    """Row-normalize so k-means distances reflect direction, not norm."""
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    return embeddings / np.maximum(norms, 1e-12)


def run_case_study(
    dataset: TableDataset,
    doduo_trainer: DoduoTrainer,
    fasttext: FastTextLike,
    num_clusters: int | None = None,
    seed: int = 0,
) -> CaseStudyResult:
    """Run all six Table 9 methods and return their clustering scores."""
    rng = np.random.default_rng(seed)
    truth = _ground_truth(dataset)
    if num_clusters is None:
        num_clusters = len(set(truth))
    items = _column_items(dataset)
    scores: Dict[str, Tuple[float, float, float]] = {}

    # 1. Doduo + contextualized column value embeddings.  The embedding
    # serialization uses the widest per-column token budget that keeps every
    # table inside the encoder window: clustering benefits from more cell
    # evidence than the training truncation kept.
    window = doduo_trainer.serializer.config.max_sequence_length
    widest = max(table.num_columns for table in dataset.tables)
    budget = max(
        doduo_trainer.config.max_tokens_per_column,
        min(48, (window - 1) // widest - 1),
    )
    doduo_embeddings = _l2_normalize(np.concatenate(
        [
            doduo_trainer.column_embeddings(table, max_tokens_per_column=budget)
            for table in dataset.tables
        ],
        axis=0,
    ))
    assign = kmeans(doduo_embeddings, num_clusters, rng)
    scores["Doduo+column value emb"] = homogeneity_completeness_v(truth, assign)

    # 2. Doduo + predicted column type (argmax over the trained vocabulary).
    predicted: List[int] = []
    for table in dataset.tables:
        if doduo_trainer.config.single_column:
            encoded = [
                doduo_trainer.serializer.serialize_column(table, c)
                for c in range(table.num_columns)
            ]
        else:
            encoded = [doduo_trainer.serializer.serialize_table(table)]
        probs = doduo_trainer.model.predict_type_probs(
            encoded, doduo_trainer.config.multi_label
        )
        predicted.extend(probs.argmax(axis=-1).tolist())
    scores["Doduo+predicted type"] = homogeneity_completeness_v(truth, predicted)

    # 3. fastText + column value embeddings.
    value_embeddings = _l2_normalize(np.stack(
        [
            fasttext.values_vector(dataset.tables[t].columns[c].values)
            for (t, c) in items
        ]
    ))
    assign = kmeans(value_embeddings, num_clusters, rng)
    scores["fastText+column value emb"] = homogeneity_completeness_v(truth, assign)

    # 4. fastText + column name embeddings.
    name_embeddings = _l2_normalize(np.stack(
        [
            fasttext.text_vector(dataset.tables[t].columns[c].header or "")
            for (t, c) in items
        ]
    ))
    assign = kmeans(name_embeddings, num_clusters, rng)
    scores["fastText+column name emb"] = homogeneity_completeness_v(truth, assign)

    # 5. COMA over all table pairs -> connected components.
    coma = ComaMatcher()
    coma_matches = []
    for a in range(len(dataset.tables)):
        for b in range(a + 1, len(dataset.tables)):
            for i, j, _ in coma.match(dataset.tables[a], dataset.tables[b]):
                coma_matches.append(((a, i), (b, j)))
    assign = matches_to_clusters(items, coma_matches)
    scores["COMA (with column name)"] = homogeneity_completeness_v(truth, assign)

    # 6. DistributionBased matcher -> connected components.
    dist = DistributionBasedMatcher()
    dist_matches = []
    for a in range(len(dataset.tables)):
        for b in range(a + 1, len(dataset.tables)):
            for i, j, _ in dist.match(dataset.tables[a], dataset.tables[b]):
                dist_matches.append(((a, i), (b, j)))
    assign = matches_to_clusters(items, dist_matches)
    scores["DistributionBased (with column name)"] = homogeneity_completeness_v(
        truth, assign
    )

    return CaseStudyResult(scores=scores)
