"""Clustering utilities for the case study (Section 7).

The paper clusters column embeddings with k-means and converts the pairwise
matches returned by schema matchers into clusters via connected components;
both operations are implemented here.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    restarts: int = 4,
) -> np.ndarray:
    """k-means with k-means++ seeding; returns cluster assignments.

    Runs ``restarts`` independent initializations and keeps the solution with
    the lowest inertia, matching how a data scientist would apply a standard
    toolkit implementation.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    if n < num_clusters:
        raise ValueError(f"cannot form {num_clusters} clusters from {n} points")

    best_assign: np.ndarray | None = None
    best_inertia = np.inf
    for _ in range(restarts):
        centers = _kmeanspp_init(points, num_clusters, rng)
        assign = np.zeros(n, dtype=np.int64)
        for _ in range(max_iterations):
            distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=-1)
            new_assign = distances.argmin(axis=1)
            if (new_assign == assign).all():
                assign = new_assign
                break
            assign = new_assign
            for k in range(num_clusters):
                members = points[assign == k]
                if len(members):
                    centers[k] = members.mean(axis=0)
        inertia = float(
            ((points - centers[assign]) ** 2).sum()
        )
        if inertia < best_inertia:
            best_inertia = inertia
            best_assign = assign.copy()
    assert best_assign is not None
    return best_assign


def _kmeanspp_init(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    n = len(points)
    centers = [points[rng.integers(n)]]
    for _ in range(1, num_clusters):
        distances = np.min(
            [((points - c) ** 2).sum(axis=-1) for c in centers], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centers.append(points[rng.integers(n)])
            continue
        probabilities = distances / total
        centers.append(points[rng.choice(n, p=probabilities)])
    return np.stack(centers)


class UnionFind:
    """Disjoint-set forest over hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def components(self) -> Dict[Hashable, int]:
        """Map each item to a dense component id."""
        roots: Dict[Hashable, int] = {}
        result: Dict[Hashable, int] = {}
        for item in self._parent:
            root = self.find(item)
            if root not in roots:
                roots[root] = len(roots)
            result[item] = roots[root]
        return result


def matches_to_clusters(
    items: Sequence[Hashable],
    matches: Iterable[Tuple[Hashable, Hashable]],
) -> List[int]:
    """Convert pairwise matches into cluster labels via connected components.

    This is the paper's procedure for turning schema-matcher output (pairs of
    matched columns between two tables) into a clustering comparable with
    k-means output.
    """
    uf = UnionFind()
    for item in items:
        uf.add(item)
    for a, b in matches:
        uf.union(a, b)
    components = uf.components()
    return [components[item] for item in items]
