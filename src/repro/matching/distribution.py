"""DistributionBased schema matcher [Zhang et al., SIGMOD'11].

"Automatic discovery of attributes in relational databases" matches columns
by comparing their *value distributions* rather than their names: numeric
columns via quantile (Earth Mover's style) distance, string columns via
overlap of value distributions.  As in the paper's case study (Table 9), the
matcher is given both column names and content but relies primarily on the
distributional signal.

Fidelity note: the numeric comparison is *shape-based* — both samples are
min-max normalized before the quantile distance, so two uniform
distributions match regardless of their ranges.  This scale-free matching is
what lets the published method find attribute pairs across databases whose
value ranges drift, and it is also the method's reported weakness in the
DODUO case study (Table 9: homogeneity/precision 23.87): IDs, counts,
timestamps, and ratings are all near-uniform integers, so a shape matcher
merges them into one giant component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.tables import Table


def _numeric_values(values: Sequence[str]) -> Optional[np.ndarray]:
    parsed = []
    for value in values:
        try:
            parsed.append(float(value.replace(",", "")))
        except ValueError:
            return None
    return np.asarray(parsed) if parsed else None


def quantile_distance(a: np.ndarray, b: np.ndarray, quantiles: int = 10) -> float:
    """Shape-based EMD distance between two numeric samples.

    Each sample is min-max normalized to [0, 1] before the matched-quantile
    comparison, so the distance measures distribution *shape* independent of
    scale (see the module docstring for why this matches the published
    method's behaviour).  Constant samples normalize to all-zeros, so two
    constant columns are at distance zero from each other.
    """
    def normalize(x: np.ndarray) -> np.ndarray:
        lo, hi = float(x.min()), float(x.max())
        if hi - lo <= 0:
            return np.zeros_like(x, dtype=np.float64)
        return (x - lo) / (hi - lo)

    qs = np.linspace(0.0, 1.0, quantiles)
    qa = np.quantile(normalize(a), qs)
    qb = np.quantile(normalize(b), qs)
    return float(np.abs(qa - qb).mean())


def token_distribution_similarity(
    values_a: Sequence[str], values_b: Sequence[str]
) -> float:
    """Cosine similarity between token frequency distributions."""
    def distribution(values: Sequence[str]) -> dict:
        counts: dict = {}
        for value in values:
            for token in value.lower().split():
                counts[token] = counts.get(token, 0) + 1
        return counts

    da, db = distribution(values_a), distribution(values_b)
    if not da or not db:
        return 0.0
    keys = set(da) | set(db)
    va = np.array([da.get(k, 0) for k in keys], dtype=np.float64)
    vb = np.array([db.get(k, 0) for k in keys], dtype=np.float64)
    denom = np.linalg.norm(va) * np.linalg.norm(vb)
    return float(va @ vb / denom) if denom > 0 else 0.0


@dataclass(frozen=True)
class DistributionConfig:
    """Decision thresholds of the distribution matcher."""

    numeric_distance_threshold: float = 0.25
    string_similarity_threshold: float = 0.25
    length_shape_threshold: float = 0.12


class DistributionBasedMatcher:
    """Pairs columns whose value distributions look alike."""

    def __init__(self, config: DistributionConfig = DistributionConfig()) -> None:
        self.config = config

    def column_match_score(
        self, values_a: Sequence[str], values_b: Sequence[str]
    ) -> float:
        """Similarity in [0, 1]; >0 means the matcher would pair the columns."""
        numeric_a = _numeric_values(values_a)
        numeric_b = _numeric_values(values_b)
        cfg = self.config

        if numeric_a is not None and numeric_b is not None:
            distance = quantile_distance(numeric_a, numeric_b)
            if distance <= cfg.numeric_distance_threshold:
                return 1.0 - distance
            return 0.0
        if (numeric_a is None) != (numeric_b is None):
            return 0.0

        # Both string-typed: token-distribution overlap first; failing that,
        # the method falls back to the shape of the *cell-length*
        # distribution — the coarse surface statistic distribution matchers
        # use for categorical data, and the second source of the method's
        # low precision (short categorical vocabularies from different
        # clusters have near-identical length profiles).
        similarity = token_distribution_similarity(values_a, values_b)
        if similarity >= cfg.string_similarity_threshold:
            return similarity
        lengths_a = np.asarray([len(v) for v in values_a], dtype=np.float64)
        lengths_b = np.asarray([len(v) for v in values_b], dtype=np.float64)
        if not len(lengths_a) or not len(lengths_b):
            return 0.0
        mean_a, mean_b = lengths_a.mean(), lengths_b.mean()
        if mean_a <= 0 or mean_b <= 0:
            return 0.0
        if max(mean_a, mean_b) / min(mean_a, mean_b) > 1.6:
            return 0.0
        shape = quantile_distance(lengths_a, lengths_b)
        if shape <= cfg.length_shape_threshold:
            return 0.5 * (1.0 - shape)
        return 0.0

    def match(self, table_a: Table, table_b: Table) -> List[Tuple[int, int, float]]:
        """All column pairs whose distributions match (not 1:1 restricted —
        the source of the matcher's aggressive merging)."""
        matches: List[Tuple[int, int, float]] = []
        for i, col_a in enumerate(table_a.columns):
            for j, col_b in enumerate(table_b.columns):
                score = self.column_match_score(col_a.values, col_b.values)
                if score > 0:
                    matches.append((i, j, score))
        return matches
