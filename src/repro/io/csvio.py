"""CSV import/export for single tables.

CSV is the lowest common denominator for the data-science workflows the paper
targets (Section 7's case study starts from exported spreadsheets).  A CSV
file maps onto a :class:`~repro.datasets.tables.Table` column-wise: each CSV
column becomes one :class:`~repro.datasets.tables.Column`, optionally keeping
the header row as the column's ``header`` attribute (used only by the
"+metadata" model variants — the base DODUO model never reads it).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..datasets.tables import Column, Table

PathLike = Union[str, Path]


def read_table_csv(
    path: PathLike,
    has_header: bool = True,
    table_id: Optional[str] = None,
    max_rows: Optional[int] = None,
    delimiter: str = ",",
) -> Table:
    """Read one CSV file into a :class:`Table`.

    Parameters
    ----------
    path:
        CSV file to read.
    has_header:
        When true the first row is stored as column headers instead of data.
    table_id:
        Identifier for the resulting table; defaults to the file stem.
    max_rows:
        Optional cap on the number of *data* rows read (tables are usually
        truncated to a handful of rows before serialization anyway).
    delimiter:
        Cell separator, for TSV and friends.

    Raises
    ------
    ValueError
        If the file is empty or rows have inconsistent widths.
    """
    path = Path(path)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"{path} contains no rows")

    headers: List[Optional[str]]
    if has_header:
        headers = [cell.strip() or None for cell in rows[0]]
        data_rows = rows[1:]
    else:
        headers = [None] * len(rows[0])
        data_rows = rows

    width = len(headers)
    for i, row in enumerate(data_rows):
        if len(row) != width:
            raise ValueError(
                f"{path}: row {i + 1} has {len(row)} cells, expected {width}"
            )
    if max_rows is not None:
        data_rows = data_rows[:max_rows]

    columns = [
        Column(
            values=[row[c] for row in data_rows],
            header=headers[c],
        )
        for c in range(width)
    ]
    return Table(columns=columns, table_id=table_id or path.stem)


def write_table_csv(
    table: Table,
    path: PathLike,
    include_header: bool = True,
    delimiter: str = ",",
) -> None:
    """Write a :class:`Table` to CSV (row-major).

    Columns shorter than the table's row count are padded with empty cells so
    the output is rectangular.  Headers default to ``col0, col1, ...`` when a
    column carries none.
    """
    path = Path(path)
    num_rows = table.num_rows
    with open(path, "w", newline="", encoding="utf-8") as handle:
        # QUOTE_ALL keeps the format unambiguous: a row holding one empty
        # cell serializes as '""', not as a blank line the reader would skip.
        writer = csv.writer(handle, delimiter=delimiter, quoting=csv.QUOTE_ALL)
        if include_header:
            writer.writerow(
                col.header or f"col{c}" for c, col in enumerate(table.columns)
            )
        for r in range(num_rows):
            writer.writerow(
                col.values[r] if r < col.num_rows else ""
                for col in table.columns
            )


def read_tables_from_dir(
    directory: PathLike,
    pattern: str = "*.csv",
    has_header: bool = True,
    max_rows: Optional[int] = None,
) -> List[Table]:
    """Read every CSV in ``directory`` (sorted by name) into tables.

    This is the bulk entry point for the case-study workflow: point it at a
    directory of exported tables and hand the result to
    :meth:`repro.core.Doduo.annotate` or the clustering utilities.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"{directory} is not a directory")
    tables = []
    for path in sorted(directory.glob(pattern)):
        tables.append(read_table_csv(path, has_header=has_header, max_rows=max_rows))
    return tables


def column_major(rows: Sequence[Sequence[str]]) -> List[List[str]]:
    """Transpose row-major cell data into column-major lists.

    Helper for adapting in-memory row data (e.g. database cursors) to the
    column-wise :class:`Table` model; raises on ragged input.
    """
    if not rows:
        return []
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise ValueError("rows are ragged; all rows must have the same width")
    return [[str(row[c]) for row in rows] for c in range(width)]
