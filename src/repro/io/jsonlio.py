"""JSON Lines persistence for annotated table corpora.

A :class:`~repro.datasets.tables.TableDataset` is stored as one JSON object
per line:

* line 1 — a dataset header ``{"kind": "dataset", "name": ..., "type_vocab":
  [...], "relation_vocab": [...]}``
* every further line — one table (see :func:`table_to_dict`).

Relation keys are stored as ``"i-j"`` strings because JSON objects cannot use
tuple keys.  The format round-trips exactly: ``load(save(ds))`` reproduces the
dataset including annotations, headers, and metadata, which the tests assert
property-style on generated corpora.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Union

from ..datasets.tables import Column, Table, TableDataset

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def table_to_dict(table: Table) -> Dict:
    """Convert a table to a JSON-serializable dict."""
    return {
        "kind": "table",
        "table_id": table.table_id,
        "columns": [
            {
                "values": list(col.values),
                "type_labels": list(col.type_labels),
                "header": col.header,
            }
            for col in table.columns
        ],
        "relation_labels": {
            f"{i}-{j}": list(labels)
            for (i, j), labels in sorted(table.relation_labels.items())
        },
        "metadata": dict(table.metadata),
    }


def table_from_dict(payload: Dict) -> Table:
    """Inverse of :func:`table_to_dict`.

    Raises
    ------
    ValueError
        If the payload is not a table record or a relation key is malformed.
    """
    if payload.get("kind") != "table":
        raise ValueError(f"not a table record: kind={payload.get('kind')!r}")
    columns = [
        Column(
            values=[str(v) for v in col["values"]],
            type_labels=list(col.get("type_labels", [])),
            header=col.get("header"),
        )
        for col in payload["columns"]
    ]
    relations = {}
    for key, labels in payload.get("relation_labels", {}).items():
        parts = key.split("-")
        if len(parts) != 2 or not all(p.isdigit() for p in parts):
            raise ValueError(f"malformed relation key: {key!r}")
        relations[(int(parts[0]), int(parts[1]))] = list(labels)
    return Table(
        columns=columns,
        table_id=payload.get("table_id", ""),
        relation_labels=relations,
        metadata={str(k): str(v) for k, v in payload.get("metadata", {}).items()},
    )


def save_dataset_jsonl(dataset: TableDataset, path: PathLike) -> None:
    """Write a dataset (header line + one line per table) to ``path``."""
    path = Path(path)
    header = {
        "kind": "dataset",
        "version": _FORMAT_VERSION,
        "name": dataset.name,
        "type_vocab": list(dataset.type_vocab),
        "relation_vocab": list(dataset.relation_vocab),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for table in dataset.tables:
            handle.write(json.dumps(table_to_dict(table)) + "\n")


def _validate_header(header: Dict, path: Path) -> None:
    if header.get("kind") != "dataset":
        raise ValueError(f"{path}: first line must be a dataset header")
    version = header.get("version", 0)
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported format version {version} "
            f"(this build reads version {_FORMAT_VERSION})"
        )


def iter_tables_jsonl(path: PathLike) -> Iterator[Table]:
    """Lazily yield the tables of a dataset ``.jsonl``, one line at a time.

    The streaming counterpart of :func:`load_dataset_jsonl` for corpora that
    should not be materialized in memory (the ``repro annotate`` serving
    mode): the header line is validated, then each table line is parsed and
    yielded as it is read.  The dataset-level vocabularies are skipped —
    use :func:`load_dataset_jsonl` when you need them.
    """
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        header_line = next((line for line in handle if line.strip()), None)
        if header_line is None:
            raise ValueError(f"{path} is empty")
        _validate_header(json.loads(header_line), path)
        for line in handle:
            if line.strip():
                yield table_from_dict(json.loads(line))


def load_dataset_jsonl(path: PathLike) -> TableDataset:
    """Load a dataset written by :func:`save_dataset_jsonl`.

    Raises
    ------
    ValueError
        If the file is empty, the first line is not a dataset header, or the
        format version is unsupported.
    """
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    _validate_header(header, path)
    tables: List[Table] = [json.loads(line) for line in lines[1:]]
    return TableDataset(
        tables=[table_from_dict(t) for t in tables],
        type_vocab=list(header.get("type_vocab", [])),
        relation_vocab=list(header.get("relation_vocab", [])),
        name=header.get("name", path.stem),
    )


def load_table_json(path: PathLike) -> Table:
    """Load a single table stored as one JSON document."""
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return table_from_dict(payload)
