"""Table and dataset I/O.

The DODUO toolbox is meant to be pointed at real data: spreadsheets exported
as CSV, or whole annotated corpora exchanged as JSON Lines.  This package
provides both entry points:

* :mod:`repro.io.csvio` — one table per CSV file (values only, or values with
  a header row), matching the paper's assumption that tables arrive as raw
  cell values without reliable metadata.
* :mod:`repro.io.jsonlio` — whole :class:`~repro.datasets.tables.TableDataset`
  round-trips, including type/relation annotations and vocabularies, so
  generated benchmarks and human-labelled corpora can be stored and reloaded
  deterministically.
"""

from .csvio import (
    read_table_csv,
    read_tables_from_dir,
    write_table_csv,
)
from .jsonlio import (
    iter_tables_jsonl,
    load_dataset_jsonl,
    load_table_json,
    save_dataset_jsonl,
    table_from_dict,
    table_to_dict,
)

__all__ = [
    "iter_tables_jsonl",
    "load_dataset_jsonl",
    "load_table_json",
    "read_table_csv",
    "read_tables_from_dir",
    "save_dataset_jsonl",
    "table_from_dict",
    "table_to_dict",
    "write_table_csv",
]
