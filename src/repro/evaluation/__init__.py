"""Evaluation metrics, reports, and cross-validation."""

from .ascii_plots import bar_chart, heatmap, line_chart
from .crossval import CrossValResult, Fold, cross_validate, kfold, prf_to_dict
from .metrics import (
    PRF,
    confusion_matrix,
    homogeneity_completeness_v,
    multiclass_macro_f1,
    multiclass_micro_f1,
    multilabel_micro_prf,
    multilabel_per_label_f1,
    per_class_f1,
)
from .significance import (
    BootstrapInterval,
    PairedComparison,
    bootstrap_metric,
    paired_bootstrap,
)
from .reports import (
    ClassificationReport,
    ClassReport,
    classification_report,
    f1_by_numeric_fraction,
    most_confused_pairs,
    render_classification_report,
    render_table,
)

__all__ = [
    "BootstrapInterval",
    "PRF",
    "PairedComparison",
    "ClassReport",
    "ClassificationReport",
    "bootstrap_metric",
    "paired_bootstrap",
    "CrossValResult",
    "Fold",
    "bar_chart",
    "classification_report",
    "heatmap",
    "line_chart",
    "confusion_matrix",
    "cross_validate",
    "f1_by_numeric_fraction",
    "homogeneity_completeness_v",
    "kfold",
    "most_confused_pairs",
    "multiclass_macro_f1",
    "multiclass_micro_f1",
    "multilabel_micro_prf",
    "multilabel_per_label_f1",
    "per_class_f1",
    "prf_to_dict",
    "render_classification_report",
    "render_table",
]
