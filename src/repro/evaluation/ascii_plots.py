"""ASCII rendering for the paper's figures.

The benchmark harness regenerates every *table* as fixed-width text; the
*figures* (4, 5, 6) are line charts and a heatmap in the paper.  This module
renders the same shapes as terminal graphics so a figure bench's output can
be read the way the paper's figure is read — who is above whom, where curves
cross, which heatmap cells run hot — without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

_SHADES = " .:-=+*#%@"


def line_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[str],
    width: int = 60,
    height: int = 12,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Render named series as an ASCII line chart (Figure 4's shape).

    Each series is drawn with its own marker; a legend maps markers to
    names.  All series must have ``len(x_labels)`` points.
    """
    if not series:
        raise ValueError("series must be non-empty")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_labels)}"
            )
    markers = "ox+*sdv^"
    all_values = [v for values in series.values() for v in values]
    lo = min(all_values) if y_min is None else y_min
    hi = max(all_values) if y_max is None else y_max
    if hi == lo:
        hi = lo + 1e-9

    grid = [[" "] * width for _ in range(height)]
    num_points = len(x_labels)
    xs = (
        [0] if num_points == 1
        else [round(i * (width - 1) / (num_points - 1)) for i in range(num_points)]
    )
    for s, (name, values) in enumerate(series.items()):
        marker = markers[s % len(markers)]
        for i, value in enumerate(values):
            frac = (float(value) - lo) / (hi - lo)
            frac = min(1.0, max(0.0, frac))
            row = height - 1 - round(frac * (height - 1))
            grid[row][xs[i]] = marker

    lines: List[str] = []
    if title:
        lines.append(f"=== {title} ===")
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:7.3f} |"
        elif r == height - 1:
            label = f"{lo:7.3f} |"
        else:
            label = "        |"
        lines.append(label + "".join(row))
    lines.append("        +" + "-" * width)
    axis = [" "] * width
    for i, x in enumerate(xs):
        text = str(x_labels[i])
        start = min(x, width - len(text))
        for k, ch in enumerate(text):
            axis[start + k] = ch
    lines.append("         " + "".join(axis))
    legend = "  ".join(
        f"{markers[s % len(markers)]}={name}" for s, name in enumerate(series)
    )
    lines.append(f"        [{legend}]")
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: Optional[str] = None,
    label_width: int = 12,
) -> str:
    """Render a matrix as a shaded ASCII heatmap (Figure 6's shape).

    Values are mapped linearly onto a ten-step character ramp; the ramp and
    value range are printed beneath so hot/cold cells can be read back to
    numbers.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if matrix.shape[0] != len(row_labels) or matrix.shape[1] != len(col_labels):
        raise ValueError(
            f"matrix {matrix.shape} does not match "
            f"{len(row_labels)} row / {len(col_labels)} column labels"
        )
    lo, hi = float(matrix.min()), float(matrix.max())
    span = (hi - lo) or 1e-9

    def shade(value: float) -> str:
        index = int((value - lo) / span * (len(_SHADES) - 1))
        return _SHADES[index]

    lines: List[str] = []
    if title:
        lines.append(f"=== {title} ===")
    # Column header: first character of each label, plus a legend below.
    header = " " * (label_width + 1) + "".join(
        (label[:1] or "?") for label in col_labels
    )
    lines.append(header)
    for r, label in enumerate(row_labels):
        cells = "".join(shade(matrix[r, c]) for c in range(matrix.shape[1]))
        lines.append(f"{label[:label_width]:>{label_width}} {cells}")
    lines.append(f"ramp: '{_SHADES}'  range: [{lo:.4f}, {hi:.4f}]")
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render named values as horizontal bars (per-class F1, Figure 5's shape)."""
    if not values:
        raise ValueError("values must be non-empty")
    hi = max(values.values())
    if hi <= 0:
        hi = 1.0
    label_width = max(len(name) for name in values)
    lines: List[str] = []
    if title:
        lines.append(f"=== {title} ===")
    for name, value in values.items():
        bar = "#" * round(max(0.0, float(value)) / hi * width)
        lines.append(f"{name:>{label_width}} |{bar} {value:.3f}")
    return "\n".join(lines)
