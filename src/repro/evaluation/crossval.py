"""Cross-validation harness.

The VizNet benchmark (Sato, and Table 4 of the DODUO paper) is evaluated with
k-fold cross-validation over tables.  This module provides the deterministic
fold assignment and the fold-aggregation helpers that protocol needs, working
on any :class:`~repro.datasets.tables.TableDataset`.

Folds split *tables*, not columns — the paper's unit of exchange — so columns
of one table never leak between train and test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..datasets.splits import DatasetSplits
from ..datasets.tables import TableDataset
from .metrics import PRF


@dataclass(frozen=True)
class Fold:
    """One cross-validation fold (train/valid/test datasets plus its index)."""

    index: int
    splits: DatasetSplits


def kfold(
    dataset: TableDataset,
    k: int = 5,
    valid_fraction: float = 0.1,
    seed: int = 0,
) -> List[Fold]:
    """Deterministic k-fold assignment over tables.

    Each fold's *test* set is one of ``k`` disjoint chunks; the remaining
    tables are split into train and validation (``valid_fraction`` of the
    non-test tables, drawn deterministically from ``seed``).
    """
    if k < 2:
        raise ValueError(f"k must be >= 2: {k}")
    if len(dataset.tables) < k:
        raise ValueError(
            f"dataset has {len(dataset.tables)} tables, fewer than k={k}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset.tables))
    chunks = np.array_split(order, k)

    folds: List[Fold] = []
    for index in range(k):
        test_idx = chunks[index]
        rest = np.concatenate([chunks[j] for j in range(k) if j != index])
        n_valid = max(1, int(round(len(rest) * valid_fraction)))
        valid_idx = rest[:n_valid]
        train_idx = rest[n_valid:]
        folds.append(
            Fold(
                index=index,
                splits=DatasetSplits(
                    train=dataset.subset(train_idx, name=f"{dataset.name}-f{index}-train"),
                    valid=dataset.subset(valid_idx, name=f"{dataset.name}-f{index}-valid"),
                    test=dataset.subset(test_idx, name=f"{dataset.name}-f{index}-test"),
                ),
            )
        )
    return folds


@dataclass
class CrossValResult:
    """Per-fold scores plus their mean and standard deviation."""

    fold_scores: List[Dict[str, float]]

    def mean(self, metric: str) -> float:
        return float(np.mean([scores[metric] for scores in self.fold_scores]))

    def std(self, metric: str) -> float:
        return float(np.std([scores[metric] for scores in self.fold_scores]))

    def metrics(self) -> List[str]:
        return sorted(self.fold_scores[0]) if self.fold_scores else []

    def summary(self) -> Dict[str, str]:
        """``metric -> "mean ± std"`` rendering for report tables."""
        return {
            metric: f"{self.mean(metric):.4f} ± {self.std(metric):.4f}"
            for metric in self.metrics()
        }


def cross_validate(
    dataset: TableDataset,
    evaluate_fold: Callable[[Fold], Dict[str, float]],
    k: int = 5,
    valid_fraction: float = 0.1,
    seed: int = 0,
) -> CrossValResult:
    """Run ``evaluate_fold`` on every fold and aggregate the scores.

    ``evaluate_fold`` receives a :class:`Fold` and returns a flat
    ``metric -> value`` dict (e.g. ``{"micro_f1": ..., "macro_f1": ...}``).
    Every fold must return the same metric keys.
    """
    folds = kfold(dataset, k=k, valid_fraction=valid_fraction, seed=seed)
    scores: List[Dict[str, float]] = []
    expected_keys = None
    for fold in folds:
        result = evaluate_fold(fold)
        if expected_keys is None:
            expected_keys = set(result)
        elif set(result) != expected_keys:
            raise ValueError(
                f"fold {fold.index} returned metrics {sorted(result)}, "
                f"expected {sorted(expected_keys)}"
            )
        scores.append(dict(result))
    return CrossValResult(fold_scores=scores)


def prf_to_dict(prefix: str, prf: PRF) -> Dict[str, float]:
    """Flatten a :class:`PRF` into ``{prefix_precision: ..., ...}``."""
    return {
        f"{prefix}_precision": prf.precision,
        f"{prefix}_recall": prf.recall,
        f"{prefix}_f1": prf.f1,
    }
