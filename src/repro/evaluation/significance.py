"""Bootstrap uncertainty for evaluation metrics.

The paper (like most) reports point estimates; at reproduction scale the
test sets are small enough that single numbers can mislead.  This module
provides percentile-bootstrap confidence intervals for any per-sample metric
and a paired bootstrap test for "is model A actually better than model B on
this test set?" — the standard protocol for comparing classifiers on a
shared evaluation set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] @{self.confidence:.0%}"
        )

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_metric(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    metric: Callable[[np.ndarray, np.ndarray], float],
    num_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile-bootstrap CI for ``metric(y_true, y_pred)``.

    ``metric`` receives resampled aligned arrays and returns a scalar (e.g.
    ``lambda t, p: multiclass_micro_f1(t, p).f1``).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if not len(y_true):
        raise ValueError("cannot bootstrap an empty evaluation set")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")

    rng = np.random.default_rng(seed)
    n = len(y_true)
    samples = np.empty(num_resamples, dtype=np.float64)
    for b in range(num_resamples):
        index = rng.integers(0, n, size=n)
        samples[b] = metric(y_true[index], y_pred[index])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(metric(y_true, y_pred)),
        lower=float(np.quantile(samples, alpha)),
        upper=float(np.quantile(samples, 1.0 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired bootstrap comparison of two models."""

    delta: float                 # metric(A) - metric(B) on the full set
    p_value: float               # P(delta <= 0) under the bootstrap
    wins: float                  # fraction of resamples where A > B

    @property
    def significant(self) -> bool:
        """A beats B at the conventional 0.05 level."""
        return self.delta > 0 and self.p_value < 0.05


def paired_bootstrap(
    y_true: Sequence[int],
    pred_a: Sequence[int],
    pred_b: Sequence[int],
    metric: Callable[[np.ndarray, np.ndarray], float],
    num_resamples: int = 1000,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap test: does model A beat model B on this test set?

    Both models are scored on the *same* resample each round, so the
    comparison controls for which examples happen to be drawn — the paired
    protocol that makes small test sets usable for model comparison.
    """
    y_true = np.asarray(y_true)
    pred_a = np.asarray(pred_a)
    pred_b = np.asarray(pred_b)
    if not (y_true.shape == pred_a.shape == pred_b.shape):
        raise ValueError("all three arrays must have the same shape")
    if not len(y_true):
        raise ValueError("cannot bootstrap an empty evaluation set")

    rng = np.random.default_rng(seed)
    n = len(y_true)
    deltas = np.empty(num_resamples, dtype=np.float64)
    for b in range(num_resamples):
        index = rng.integers(0, n, size=n)
        deltas[b] = metric(y_true[index], pred_a[index]) - metric(
            y_true[index], pred_b[index]
        )
    return PairedComparison(
        delta=float(metric(y_true, pred_a) - metric(y_true, pred_b)),
        p_value=float((deltas <= 0).mean()),
        wins=float((deltas > 0).mean()),
    )
