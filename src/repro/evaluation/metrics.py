"""Evaluation metrics used across the paper's experiments.

* micro / macro precision, recall, F1 for multi-class prediction (VizNet),
* micro precision / recall / F1 for multi-label prediction (WikiTable),
* per-class F1 (Tables 5, 10, Figure 5),
* homogeneity / completeness / V-measure for the clustering case study
  (Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)


def _prf(tp: float, fp: float, fn: float) -> PRF:
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return PRF(precision, recall, f1)


# ---------------------------------------------------------------------------
# Multi-class (single-label) metrics
# ---------------------------------------------------------------------------

def multiclass_micro_f1(y_true: Sequence[int], y_pred: Sequence[int]) -> PRF:
    """Micro-averaged PRF; for single-label tasks this equals accuracy."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    correct = float((y_true == y_pred).sum())
    total = float(len(y_true))
    return _prf(correct, total - correct, total - correct)


def per_class_f1(
    y_true: Sequence[int], y_pred: Sequence[int], num_classes: int
) -> List[PRF]:
    """One PRF per class (one-vs-rest)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    scores = []
    for cls in range(num_classes):
        tp = float(((y_pred == cls) & (y_true == cls)).sum())
        fp = float(((y_pred == cls) & (y_true != cls)).sum())
        fn = float(((y_pred != cls) & (y_true == cls)).sum())
        scores.append(_prf(tp, fp, fn))
    return scores


def multiclass_macro_f1(
    y_true: Sequence[int], y_pred: Sequence[int], num_classes: int
) -> float:
    """Simple average of per-class F1 over classes present in y_true."""
    scores = per_class_f1(y_true, y_pred, num_classes)
    present = sorted(set(np.asarray(y_true).tolist()))
    if not present:
        return 0.0
    return float(np.mean([scores[c].f1 for c in present]))


# ---------------------------------------------------------------------------
# Multi-label metrics
# ---------------------------------------------------------------------------

def multilabel_micro_prf(y_true: np.ndarray, y_pred: np.ndarray) -> PRF:
    """Micro PRF over a binary indicator matrix ``(samples, labels)``."""
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    if y_true.shape != y_pred.shape:
        raise ValueError("indicator matrices must have the same shape")
    tp = float((y_true & y_pred).sum())
    fp = float((~y_true & y_pred).sum())
    fn = float((y_true & ~y_pred).sum())
    return _prf(tp, fp, fn)


def multilabel_per_label_f1(y_true: np.ndarray, y_pred: np.ndarray) -> List[PRF]:
    """Per-label PRF over an indicator matrix."""
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    scores = []
    for label in range(y_true.shape[1]):
        tp = float((y_true[:, label] & y_pred[:, label]).sum())
        fp = float((~y_true[:, label] & y_pred[:, label]).sum())
        fn = float((y_true[:, label] & ~y_pred[:, label]).sum())
        scores.append(_prf(tp, fp, fn))
    return scores


# ---------------------------------------------------------------------------
# Clustering metrics (Table 9): homogeneity / completeness / V-measure
# ---------------------------------------------------------------------------

def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log(probs)).sum())


def _contingency(labels_true: Sequence[int], labels_pred: Sequence[int]) -> np.ndarray:
    true_ids = {label: i for i, label in enumerate(sorted(set(labels_true)))}
    pred_ids = {label: i for i, label in enumerate(sorted(set(labels_pred)))}
    table = np.zeros((len(true_ids), len(pred_ids)), dtype=np.float64)
    for t, p in zip(labels_true, labels_pred):
        table[true_ids[t], pred_ids[p]] += 1
    return table


def homogeneity_completeness_v(
    labels_true: Sequence[int], labels_pred: Sequence[int]
) -> Tuple[float, float, float]:
    """Rosenberg & Hirschberg's homogeneity, completeness, V-measure.

    The paper reports these as Precision / Recall / F1 of the case study.
    """
    if len(labels_true) != len(labels_pred):
        raise ValueError("label sequences must have the same length")
    table = _contingency(labels_true, labels_pred)
    n = table.sum()
    if n == 0:
        return (1.0, 1.0, 1.0)

    h_true = _entropy(table.sum(axis=1))
    h_pred = _entropy(table.sum(axis=0))

    # Conditional entropies H(true|pred) and H(pred|true).
    h_true_given_pred = 0.0
    for j in range(table.shape[1]):
        column = table[:, j]
        weight = column.sum() / n
        h_true_given_pred += weight * _entropy(column)
    h_pred_given_true = 0.0
    for i in range(table.shape[0]):
        row = table[i]
        weight = row.sum() / n
        h_pred_given_true += weight * _entropy(row)

    homogeneity = 1.0 if h_true == 0 else 1.0 - h_true_given_pred / h_true
    completeness = 1.0 if h_pred == 0 else 1.0 - h_pred_given_true / h_pred
    if homogeneity + completeness == 0:
        v_measure = 0.0
    else:
        v_measure = 2 * homogeneity * completeness / (homogeneity + completeness)
    return (homogeneity, completeness, v_measure)


def confusion_matrix(
    y_true: Sequence[int], y_pred: Sequence[int], num_classes: int
) -> np.ndarray:
    """Dense confusion matrix ``(true, pred)``."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[t, p] += 1
    return matrix
