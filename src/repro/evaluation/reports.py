"""Human-readable evaluation reports.

The paper presents its results as fixed-width tables (Tables 3–13) and
per-class bar charts (Figure 5).  This module renders the same artifacts from
raw predictions: a classification report (per-class precision/recall/F1 with
support), a confusion summary (most-confused class pairs), and a plain-text
table formatter shared with the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import (
    PRF,
    confusion_matrix,
    multiclass_macro_f1,
    multiclass_micro_f1,
    per_class_f1,
)


@dataclass(frozen=True)
class ClassReport:
    """Per-class evaluation row."""

    name: str
    prf: PRF
    support: int


@dataclass
class ClassificationReport:
    """Full multi-class evaluation: per-class rows plus micro/macro summary."""

    classes: List[ClassReport]
    micro: PRF
    macro_f1: float

    def row(self, name: str) -> ClassReport:
        for entry in self.classes:
            if entry.name == name:
                return entry
        raise KeyError(f"no class named {name!r} in report")

    def hardest(self, k: int = 5, min_support: int = 1) -> List[ClassReport]:
        """The ``k`` classes with the lowest F1 among those with support."""
        eligible = [c for c in self.classes if c.support >= min_support]
        return sorted(eligible, key=lambda c: (c.prf.f1, c.name))[:k]

    def easiest(self, k: int = 5, min_support: int = 1) -> List[ClassReport]:
        """The ``k`` classes with the highest F1 among those with support."""
        eligible = [c for c in self.classes if c.support >= min_support]
        return sorted(eligible, key=lambda c: (-c.prf.f1, c.name))[:k]


def classification_report(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    class_names: Sequence[str],
) -> ClassificationReport:
    """Build a :class:`ClassificationReport` from integer predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    num_classes = len(class_names)
    if y_true.size and (y_true.max() >= num_classes or y_pred.max() >= num_classes):
        raise ValueError("label id exceeds the provided class_names")
    scores = per_class_f1(y_true, y_pred, num_classes)
    support = np.bincount(y_true, minlength=num_classes)
    classes = [
        ClassReport(name=class_names[c], prf=scores[c], support=int(support[c]))
        for c in range(num_classes)
    ]
    return ClassificationReport(
        classes=classes,
        micro=multiclass_micro_f1(y_true, y_pred),
        macro_f1=multiclass_macro_f1(y_true, y_pred, num_classes),
    )


def most_confused_pairs(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    class_names: Sequence[str],
    k: int = 10,
) -> List[Tuple[str, str, int]]:
    """The ``k`` most frequent (true, predicted) error pairs.

    This is the error-analysis view behind the paper's Table 10 discussion
    ("Doduo tends to perform better for column types that are less clearly
    distinguishable, e.g. artist vs. writer").
    """
    matrix = confusion_matrix(y_true, y_pred, len(class_names))
    np.fill_diagonal(matrix, 0)
    flat = [
        (class_names[t], class_names[p], int(matrix[t, p]))
        for t in range(matrix.shape[0])
        for p in range(matrix.shape[1])
        if matrix[t, p] > 0
    ]
    flat.sort(key=lambda item: (-item[2], item[0], item[1]))
    return flat[:k]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table in the benchmark suite's format."""
    str_rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines = []
    if title:
        lines.append(f"=== {title} ===")
    lines.append(header_line)
    lines.append("-" * len(header_line))
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in str_rows
    )
    return "\n".join(lines)


def render_classification_report(
    report: ClassificationReport,
    min_support: int = 0,
    sort_by: str = "name",
) -> str:
    """Plain-text classification report (sklearn-style, fixed width).

    ``sort_by`` is one of ``"name"``, ``"f1"``, or ``"support"``.
    """
    keys = {
        "name": lambda c: c.name,
        "f1": lambda c: (-c.prf.f1, c.name),
        "support": lambda c: (-c.support, c.name),
    }
    if sort_by not in keys:
        raise ValueError(f"sort_by must be one of {sorted(keys)}: {sort_by!r}")
    rows = [
        (
            entry.name,
            f"{entry.prf.precision:.3f}",
            f"{entry.prf.recall:.3f}",
            f"{entry.prf.f1:.3f}",
            entry.support,
        )
        for entry in sorted(report.classes, key=keys[sort_by])
        if entry.support >= min_support
    ]
    rows.append(("micro avg", f"{report.micro.precision:.3f}",
                 f"{report.micro.recall:.3f}", f"{report.micro.f1:.3f}",
                 sum(c.support for c in report.classes)))
    rows.append(("macro F1", "", "", f"{report.macro_f1:.3f}", ""))
    return render_table(("class", "precision", "recall", "f1", "support"), rows)


def f1_by_numeric_fraction(
    class_f1: Dict[str, float],
    numeric_fractions: Dict[str, float],
    top_k: int = 15,
) -> List[Tuple[str, float, float]]:
    """Rank classes by how numeric their values are (Table 5's view).

    Returns ``(type, %num, F1)`` rows for the ``top_k`` most numeric types,
    mirroring the paper's analysis of DODUO on numeric columns.
    """
    ranked = sorted(
        numeric_fractions.items(), key=lambda item: (-item[1], item[0])
    )[:top_k]
    return [
        (name, fraction, class_f1.get(name, 0.0)) for name, fraction in ranked
    ]
