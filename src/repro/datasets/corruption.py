"""Dirty-data injection (Appendix B: "Clean data vs. dirty data").

The paper assumes table values are "correct and clean" and cites evidence
that pre-trained-LM approaches stay robust when they are not — values missing
or *misplaced* (cells swapped into the wrong column).  This module makes that
claim testable: it injects controlled amounts of each corruption into a
dataset so the robustness ablation (``benchmarks/bench_ablation_dirty.py``)
can chart F1 as a function of the corruption rate.

Corruptions operate on *copies*; input tables are never mutated.  Labels are
left untouched on purpose — the evaluation question is how far predictions
degrade when the evidence degrades, against ground truth that stays fixed.

Supported corruptions
---------------------
* :func:`drop_cells` — replace a fraction of cells with the empty string
  (missing values).
* :func:`misplace_cells` — swap a fraction of cells between two columns of
  the same row (misfielded values, the classic spreadsheet error).
* :func:`typo_cells` — perturb characters inside a fraction of cells
  (duplicate / delete / transpose), modelling entry noise.
* :func:`corrupt_dataset` — apply a :class:`CorruptionConfig` mix to a whole
  dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .tables import Column, Table, TableDataset


def _copy_table(table: Table) -> Table:
    return Table(
        columns=[
            Column(
                values=list(col.values),
                type_labels=list(col.type_labels),
                header=col.header,
            )
            for col in table.columns
        ],
        table_id=table.table_id,
        relation_labels={k: list(v) for k, v in table.relation_labels.items()},
        metadata=dict(table.metadata),
    )


def drop_cells(table: Table, rate: float, rng: np.random.Generator) -> Table:
    """Replace ``rate`` of all cells with the empty string."""
    _check_rate(rate)
    out = _copy_table(table)
    for column in out.columns:
        for r in range(column.num_rows):
            if rng.random() < rate:
                column.values[r] = ""
    return out


def misplace_cells(table: Table, rate: float, rng: np.random.Generator) -> Table:
    """Swap ``rate`` of cells with the same row's cell in another column.

    Tables with a single column are returned unchanged (there is nowhere to
    misplace a value to).
    """
    _check_rate(rate)
    out = _copy_table(table)
    if out.num_columns < 2:
        return out
    for c, column in enumerate(out.columns):
        for r in range(column.num_rows):
            if rng.random() >= rate:
                continue
            other = int(rng.integers(out.num_columns - 1))
            if other >= c:
                other += 1
            other_col = out.columns[other]
            if r < other_col.num_rows:
                column.values[r], other_col.values[r] = (
                    other_col.values[r],
                    column.values[r],
                )
    return out


def _typo(value: str, rng: np.random.Generator) -> str:
    """Apply one random character-level edit (duplicate / delete / transpose)."""
    if not value:
        return value
    pos = int(rng.integers(len(value)))
    kind = int(rng.integers(3))
    chars = list(value)
    if kind == 0:  # duplicate a character
        chars.insert(pos, chars[pos])
    elif kind == 1 and len(chars) > 1:  # delete a character
        del chars[pos]
    elif len(chars) > 1:  # transpose with the next character
        nxt = min(pos + 1, len(chars) - 1)
        chars[pos], chars[nxt] = chars[nxt], chars[pos]
    return "".join(chars)


def typo_cells(table: Table, rate: float, rng: np.random.Generator) -> Table:
    """Introduce one character-level typo into ``rate`` of cells."""
    _check_rate(rate)
    out = _copy_table(table)
    for column in out.columns:
        for r in range(column.num_rows):
            if rng.random() < rate:
                column.values[r] = _typo(column.values[r], rng)
    return out


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"corruption rate must be in [0, 1]: {rate}")


@dataclass(frozen=True)
class CorruptionConfig:
    """Mix of corruption rates applied per cell.

    Rates are independent probabilities per corruption type; a cell can be
    hit by several corruptions (e.g. misplaced and then typo'd), mirroring
    real dirty data where error modes compound.
    """

    missing_rate: float = 0.0
    misplaced_rate: float = 0.0
    typo_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("missing_rate", "misplaced_rate", "typo_rate"):
            _check_rate(getattr(self, name))

    @property
    def is_clean(self) -> bool:
        return self.missing_rate == self.misplaced_rate == self.typo_rate == 0.0


def corrupt_table(
    table: Table, config: CorruptionConfig, rng: np.random.Generator
) -> Table:
    """Apply the configured corruption mix to one table (labels unchanged)."""
    out = table
    if config.misplaced_rate > 0:
        out = misplace_cells(out, config.misplaced_rate, rng)
    if config.typo_rate > 0:
        out = typo_cells(out, config.typo_rate, rng)
    if config.missing_rate > 0:
        out = drop_cells(out, config.missing_rate, rng)
    return out if out is not table else _copy_table(table)


def corrupt_dataset(
    dataset: TableDataset,
    config: CorruptionConfig,
    seed: int = 0,
) -> TableDataset:
    """Corrupted copy of a dataset (same vocabularies, same labels)."""
    rng = np.random.default_rng(seed)
    tables: List[Table] = [
        corrupt_table(table, config, rng) for table in dataset.tables
    ]
    suffix = (
        f"-dirty(m{config.missing_rate:.2f}"
        f",x{config.misplaced_rate:.2f},t{config.typo_rate:.2f})"
    )
    return TableDataset(
        tables=tables,
        type_vocab=dataset.type_vocab,
        relation_vocab=dataset.relation_vocab,
        name=dataset.name + suffix,
    )
