"""Synthetic typed knowledge base.

This module replaces the role Freebase/DBpedia play for the paper's datasets
(see DESIGN.md).  It generates a world of typed entities — people with
professions, works, places, organizations — connected by binary relations
(``directed_by``, ``place_of_birth``, ``team_roster``, ...).  Tables are then
*views* over this KB, which guarantees row-wise consistency, and the same KB
is verbalized into the pre-training corpus so the language model can acquire
the factual knowledge the paper's probing analysis measures.

Ambiguity is generated deliberately: person subtypes (director, producer,
athlete, politician, ...) draw names from overlapping pools, exactly like the
paper's "George Miller" example, so single-column models cannot fully
disambiguate and table context carries signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Name-part pools.  Kept small on purpose so the WordPiece vocabulary stays
# compact and the mini-LM can actually learn distributional structure.
# ---------------------------------------------------------------------------

FIRST_NAMES = [
    "george", "judy", "warren", "bill", "doug", "john", "joe", "darla", "david",
    "sam", "dick", "ian", "simon", "max", "thomas", "derrick", "emma", "olivia",
    "liam", "noah", "ava", "mia", "lucas", "henry", "amelia", "jack", "ella",
    "oscar", "ruby", "felix", "clara", "hugo", "nina", "marco", "lena", "paulo",
    "anna", "victor", "rosa", "ivan",
]

LAST_NAMES = [
    "miller", "coleman", "morris", "mitchell", "lasseter", "ranft", "anderson",
    "bowers", "fell", "clement", "frenais", "nye", "browne", "tyner", "henry",
    "smith", "johnson", "williams", "brown", "jones", "garcia", "davis",
    "wilson", "moore", "taylor", "thomas", "lee", "harris", "clark", "lewis",
    "walker", "hall", "allen", "young", "king", "wright", "scott", "green",
    "baker", "adams", "nelson", "hill", "campbell", "carter", "diaz", "evans",
]

CITY_PARTS_A = [
    "spring", "oak", "maple", "river", "lake", "hill", "stone", "clear",
    "fair", "green", "silver", "north", "south", "east", "west", "new",
    "port", "fort", "glen", "ash",
]

CITY_PARTS_B = [
    "field", "ville", "town", "burg", "dale", "ford", "haven", "wood",
    "brook", "view", "port", "mont", "land", "side", "crest", "bridge",
]

COUNTRIES = [
    "usa", "uk", "france", "germany", "japan", "brazil", "canada", "australia",
    "italy", "spain", "mexico", "india", "china", "sweden", "norway", "poland",
    "egypt", "kenya", "chile", "peru",
]

STATES = [
    "washington", "oregon", "florida", "alabama", "california", "texas",
    "ohio", "georgia", "nevada", "utah", "kansas", "iowa", "maine", "idaho",
    "montana", "arizona",
]

FILM_WORDS_A = [
    "happy", "flushed", "silent", "broken", "hidden", "golden", "crimson",
    "frozen", "electric", "lonely", "burning", "midnight", "distant",
    "forgotten", "rising", "falling", "secret", "final", "lost", "brave",
]

FILM_WORDS_B = [
    "feet", "away", "cars", "dreams", "river", "empire", "garden", "shadow",
    "voyage", "kingdom", "summer", "winter", "station", "horizon", "echo",
    "storm", "canyon", "harbor", "signal", "mirror",
]

COMPANY_WORDS = [
    "pixel", "vertex", "solar", "quantum", "alpine", "atlas", "nova", "delta",
    "summit", "orbit", "prime", "fusion", "cedar", "falcon", "aurora",
    "zenith", "cobalt", "ember", "lumen", "drift",
]

COMPANY_SUFFIXES = ["studios", "pictures", "media", "works", "group", "labs", "films"]

TEAM_MASCOTS = [
    "tigers", "eagles", "sharks", "wolves", "hawks", "bears", "lions",
    "panthers", "falcons", "raptors", "comets", "rockets", "pirates",
    "knights", "titans", "storm",
]

POSITIONS = [
    "quarterback", "running back", "linebacker", "wide receiver", "safety",
    "cornerback", "kicker", "tight end", "center", "guard",
]

GENRES = [
    "drama", "comedy", "thriller", "animation", "documentary", "horror",
    "romance", "adventure", "fantasy", "western",
]

LANGUAGES = [
    "english", "french", "german", "japanese", "portuguese", "spanish",
    "italian", "mandarin", "hindi", "swedish",
]

# Person subtypes and the slice of the first-name pool each draws from.
# Slices overlap heavily, creating cross-profession name ambiguity.
PERSON_PROFESSIONS: Dict[str, Tuple[int, int]] = {
    "director": (0, 28),
    "producer": (6, 34),
    "athlete": (12, 40),
    "politician": (4, 32),
    "musician": (8, 36),
    "author": (2, 30),
    "actor": (10, 38),
    "coach": (14, 40),
}


@dataclass
class Entity:
    """A KB entity: a surface name, a fine type, and attribute links."""

    name: str
    entity_type: str
    attributes: Dict[str, "Entity"] = field(default_factory=dict)
    numeric: Dict[str, str] = field(default_factory=dict)

    def attribute_name(self, relation: str) -> Optional[str]:
        if relation in self.attributes:
            return self.attributes[relation].name
        return self.numeric.get(relation)


# Relation name -> (subject fine type family, object type, verbalization)
RELATION_TEMPLATES: Dict[str, Tuple[str, str, str]] = {
    "film.directed_by": ("film", "director", "{s} is directed by {o}"),
    "film.produced_by": ("film", "producer", "{s} is produced by {o}"),
    "film.release_country": ("film", "country", "{s} was released in {o}"),
    "film.studio": ("film", "company", "{s} was made by {o}"),
    "film.starring": ("film", "actor", "{s} is starring {o}"),
    "film.genre": ("film", "genre", "{s} is a {o} film"),
    "person.place_of_birth": ("person", "city", "{s} was born in {o}"),
    "person.place_of_death": ("person", "city", "{s} died in {o}"),
    "person.place_lived": ("person", "city", "{s} lived in {o}"),
    "person.nationality": ("person", "country", "{s} is from {o}"),
    "athlete.team_roster": ("athlete", "sports_team", "{s} plays for {o}"),
    "athlete.position": ("athlete", "position", "{s} plays as {o}"),
    "album.performed_by": ("album", "musician", "{s} is performed by {o}"),
    "album.label": ("album", "company", "{s} was released by {o}"),
    "book.written_by": ("book", "author", "{s} is written by {o}"),
    "book.publisher": ("book", "company", "{s} was published by {o}"),
    "book.language": ("book", "language", "{s} is written in {o}"),
    "city.located_in": ("city", "country", "{s} is located in {o}"),
    "company.headquarters": ("company", "city", "{s} is based in {o}"),
    "team.home_city": ("sports_team", "city", "{s} is based in {o}"),
    "politician.office_country": ("politician", "country", "{s} holds office in {o}"),
}

# Numeric attribute -> (value range description used by generators)
NUMERIC_ATTRIBUTES = {
    "film.release_year": (1950, 2021),
    "film.runtime": (70, 200),
    "person.birth_year": (1930, 2003),
    "person.death_year": (1985, 2021),
    "album.release_year": (1960, 2021),
    "book.publication_year": (1900, 2021),
    "city.population": (10_000, 9_000_000),
    "company.founded_year": (1900, 2020),
}


class KnowledgeBase:
    """A deterministic, seeded synthetic knowledge base.

    Parameters
    ----------
    rng:
        Source of randomness; the KB is fully determined by it.
    scale:
        Multiplier on entity counts (1.0 gives ~600 entities).
    """

    def __init__(self, rng: np.random.Generator, scale: float = 1.0) -> None:
        self._rng = rng
        self.entities: Dict[str, List[Entity]] = {}
        self._build(scale)

    # -- construction --------------------------------------------------------
    def _unique_names(self, candidates: List[str], count: int) -> List[str]:
        self._rng.shuffle(candidates)
        return candidates[:count]

    def _build(self, scale: float) -> None:
        rng = self._rng
        n = lambda base: max(4, int(base * scale))

        # Locations first (other entities point at them).
        city_names = []
        for a in CITY_PARTS_A:
            for b in CITY_PARTS_B:
                city_names.append(a + b)
        rng.shuffle(city_names)
        cities = [Entity(name, "city") for name in city_names[: n(60)]]
        countries = [Entity(name, "country") for name in COUNTRIES]
        for city in cities:
            city.attributes["city.located_in"] = countries[rng.integers(len(countries))]
            lo, hi = NUMERIC_ATTRIBUTES["city.population"]
            city.numeric["city.population"] = str(int(rng.integers(lo, hi)))
        self.entities["city"] = cities
        self.entities["country"] = countries
        self.entities["state"] = [Entity(name, "state") for name in STATES]

        # Organizations.
        companies = []
        used = set()
        while len(companies) < n(30):
            name = (
                COMPANY_WORDS[rng.integers(len(COMPANY_WORDS))]
                + " "
                + COMPANY_SUFFIXES[rng.integers(len(COMPANY_SUFFIXES))]
            )
            if name in used:
                continue
            used.add(name)
            company = Entity(name, "company")
            company.attributes["company.headquarters"] = cities[rng.integers(len(cities))]
            lo, hi = NUMERIC_ATTRIBUTES["company.founded_year"]
            company.numeric["company.founded_year"] = str(int(rng.integers(lo, hi)))
            companies.append(company)
        self.entities["company"] = companies

        teams = []
        used = set()
        while len(teams) < n(20):
            city = cities[rng.integers(len(cities))]
            name = city.name + " " + TEAM_MASCOTS[rng.integers(len(TEAM_MASCOTS))]
            if name in used:
                continue
            used.add(name)
            team = Entity(name, "sports_team")
            team.attributes["team.home_city"] = city
            teams.append(team)
        self.entities["sports_team"] = teams

        # Small closed-class types.
        self.entities["position"] = [Entity(p, "position") for p in POSITIONS]
        self.entities["genre"] = [Entity(g, "genre") for g in GENRES]
        self.entities["language"] = [Entity(l, "language") for l in LANGUAGES]

        # People, with overlapping name pools per profession.
        for profession, (lo_idx, hi_idx) in PERSON_PROFESSIONS.items():
            pool = FIRST_NAMES[lo_idx:hi_idx]
            people = []
            used_names = set()
            attempts = 0
            while len(people) < n(40) and attempts < 5000:
                attempts += 1
                name = (
                    pool[rng.integers(len(pool))]
                    + " "
                    + LAST_NAMES[rng.integers(len(LAST_NAMES))]
                )
                if name in used_names:
                    continue
                used_names.add(name)
                person = Entity(name, profession)
                person.attributes["person.place_of_birth"] = cities[rng.integers(len(cities))]
                person.attributes["person.place_of_death"] = cities[rng.integers(len(cities))]
                person.attributes["person.place_lived"] = cities[rng.integers(len(cities))]
                person.attributes["person.nationality"] = countries[rng.integers(len(countries))]
                lo, hi = NUMERIC_ATTRIBUTES["person.birth_year"]
                person.numeric["person.birth_year"] = str(int(rng.integers(lo, hi)))
                lo, hi = NUMERIC_ATTRIBUTES["person.death_year"]
                person.numeric["person.death_year"] = str(int(rng.integers(lo, hi)))
                if profession == "athlete":
                    person.attributes["athlete.team_roster"] = teams[rng.integers(len(teams))]
                    person.attributes["athlete.position"] = self.entities["position"][
                        rng.integers(len(self.entities["position"]))
                    ]
                if profession == "politician":
                    person.attributes["politician.office_country"] = countries[
                        rng.integers(len(countries))
                    ]
                people.append(person)
            self.entities[profession] = people

        # Works.
        films = []
        used = set()
        while len(films) < n(60):
            name = (
                FILM_WORDS_A[rng.integers(len(FILM_WORDS_A))]
                + " "
                + FILM_WORDS_B[rng.integers(len(FILM_WORDS_B))]
            )
            if name in used:
                continue
            used.add(name)
            film = Entity(name, "film")
            film.attributes["film.directed_by"] = self._pick("director")
            film.attributes["film.produced_by"] = self._pick("producer")
            film.attributes["film.release_country"] = self._pick("country")
            film.attributes["film.studio"] = self._pick("company")
            film.attributes["film.starring"] = self._pick("actor")
            film.attributes["film.genre"] = self._pick("genre")
            lo, hi = NUMERIC_ATTRIBUTES["film.release_year"]
            film.numeric["film.release_year"] = str(int(rng.integers(lo, hi)))
            lo, hi = NUMERIC_ATTRIBUTES["film.runtime"]
            film.numeric["film.runtime"] = str(int(rng.integers(lo, hi)))
            films.append(film)
        self.entities["film"] = films

        albums = []
        used = set()
        while len(albums) < n(40):
            name = (
                FILM_WORDS_A[rng.integers(len(FILM_WORDS_A))]
                + " "
                + FILM_WORDS_B[rng.integers(len(FILM_WORDS_B))]
                + " "
                + ("lp" if rng.random() < 0.5 else "sessions")
            )
            if name in used:
                continue
            used.add(name)
            album = Entity(name, "album")
            album.attributes["album.performed_by"] = self._pick("musician")
            album.attributes["album.label"] = self._pick("company")
            lo, hi = NUMERIC_ATTRIBUTES["album.release_year"]
            album.numeric["album.release_year"] = str(int(rng.integers(lo, hi)))
            albums.append(album)
        self.entities["album"] = albums

        books = []
        used = set()
        while len(books) < n(40):
            name = (
                "the "
                + FILM_WORDS_A[rng.integers(len(FILM_WORDS_A))]
                + " "
                + FILM_WORDS_B[rng.integers(len(FILM_WORDS_B))]
            )
            if name in used:
                continue
            used.add(name)
            book = Entity(name, "book")
            book.attributes["book.written_by"] = self._pick("author")
            book.attributes["book.publisher"] = self._pick("company")
            book.attributes["book.language"] = self._pick("language")
            lo, hi = NUMERIC_ATTRIBUTES["book.publication_year"]
            book.numeric["book.publication_year"] = str(int(rng.integers(lo, hi)))
            books.append(book)
        self.entities["book"] = books

    def _pick(self, entity_type: str) -> Entity:
        pool = self.entities[entity_type]
        return pool[self._rng.integers(len(pool))]

    # -- queries --------------------------------------------------------------
    def sample(self, entity_type: str, count: int, rng: np.random.Generator) -> List[Entity]:
        """Sample ``count`` distinct entities of ``entity_type``."""
        pool = self.entities[entity_type]
        if count > len(pool):
            raise ValueError(
                f"cannot sample {count} distinct {entity_type} entities "
                f"(only {len(pool)} exist)"
            )
        indices = rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in indices]

    def types(self) -> List[str]:
        return sorted(self.entities)

    def all_entities(self) -> List[Entity]:
        return [e for pool in self.entities.values() for e in pool]

    # -- corpus verbalization ---------------------------------------------------
    def verbalize(self, rng: np.random.Generator, sentences_per_fact: int = 1) -> List[str]:
        """Render every KB fact as natural-language sentences.

        These sentences form the masked-LM pre-training corpus, playing the
        role Wikipedia plays for BERT: factual knowledge the fine-tuned model
        can exploit, and the knowledge the probing analysis (Tables 12/13)
        looks for.
        """
        sentences: List[str] = []
        for entity in self.all_entities():
            for relation, target in entity.attributes.items():
                template = RELATION_TEMPLATES.get(relation)
                if template is None:
                    continue
                for _ in range(sentences_per_fact):
                    sentences.append(template[2].format(s=entity.name, o=target.name))
            for attribute, value in entity.numeric.items():
                short = attribute.split(".")[-1].replace("_", " ")
                sentences.append(f"the {short} of {entity.name} is {value}")
            # Type statements: "<name> is a <type>" — the exact pattern the
            # LM-probing template queries.
            sentences.append(f"{entity.name} is a {entity.entity_type}")
        rng.shuffle(sentences)
        return sentences
