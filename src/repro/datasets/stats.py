"""Dataset statistics (the paper's Table 2, "Dataset description").

The paper summarises its two benchmarks by table count, annotated column
count, and label vocabulary sizes.  :func:`dataset_statistics` computes the
same summary for any :class:`~repro.datasets.tables.TableDataset`, plus a
few shape diagnostics (column/row distributions, label coverage) that the
generators' tests use to assert the synthetic corpora match the task shape
the paper relies on (multi-label vs single-label, single-column tables
present or not, and so on).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .tables import TableDataset


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary of a table corpus (one row of the paper's Table 2)."""

    name: str
    num_tables: int
    num_columns: int
    num_annotated_columns: int
    num_annotated_pairs: int
    num_types: int
    num_relations: int
    max_labels_per_column: int
    mean_columns_per_table: float
    mean_rows_per_table: float
    single_column_tables: int

    @property
    def is_multi_label(self) -> bool:
        """Whether any column carries more than one type annotation."""
        return self.max_labels_per_column > 1

    def as_row(self) -> List[object]:
        """Row for the Table 2 rendering: name, #tables, #col, #types, #rels."""
        return [
            self.name,
            self.num_tables,
            self.num_columns,
            self.num_types,
            self.num_relations if self.num_relations else "–",
        ]


def dataset_statistics(dataset: TableDataset) -> DatasetStatistics:
    """Compute corpus statistics for ``dataset``."""
    num_columns = sum(t.num_columns for t in dataset.tables)
    max_labels = max(
        (len(col.type_labels) for t in dataset.tables for col in t.columns),
        default=0,
    )
    columns_per_table = [t.num_columns for t in dataset.tables]
    rows_per_table = [t.num_rows for t in dataset.tables]
    return DatasetStatistics(
        name=dataset.name or "(unnamed)",
        num_tables=len(dataset.tables),
        num_columns=num_columns,
        num_annotated_columns=dataset.num_annotated_columns(),
        num_annotated_pairs=dataset.num_annotated_pairs(),
        num_types=dataset.num_types,
        num_relations=dataset.num_relations,
        max_labels_per_column=max_labels,
        mean_columns_per_table=float(np.mean(columns_per_table)) if columns_per_table else 0.0,
        mean_rows_per_table=float(np.mean(rows_per_table)) if rows_per_table else 0.0,
        single_column_tables=sum(1 for n in columns_per_table if n == 1),
    )


def type_label_distribution(dataset: TableDataset) -> Dict[str, int]:
    """How many columns carry each type label (class-imbalance diagnostics).

    The paper's Figure 5 discussion attributes Sato's zero-F1 classes to
    labels with under ~25 training columns; this distribution is what the
    per-class benches use to annotate their output with support counts.
    """
    counts: Counter[str] = Counter()
    for table in dataset.tables:
        for column in table.columns:
            counts.update(column.type_labels)
    return dict(counts)


def relation_label_distribution(dataset: TableDataset) -> Dict[str, int]:
    """How many column pairs carry each relation label."""
    counts: Counter[str] = Counter()
    for table in dataset.tables:
        for labels in table.relation_labels.values():
            counts.update(labels)
    return dict(counts)
