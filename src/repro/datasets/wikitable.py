"""Synthetic WikiTable-style benchmark (multi-label types + relations).

The original WikiTable benchmark [Deng et al., TURL] annotates columns with
Freebase types (multi-label) and column pairs ``(0, k)`` with Freebase
relations.  We reproduce the same *task shape* from the synthetic
:class:`~repro.datasets.kb.KnowledgeBase`: every table is a consistent view
over KB facts, columns carry one or more hierarchical type labels, and the
relation between the subject column and each attribute column is the KB
relation that produced it.

Deliberate properties, mirrored from the paper's motivation (Figure 2):

* Person columns across professions share surface names, so intra-column
  evidence alone cannot reliably distinguish ``film.director`` from
  ``film.producer`` — table context (e.g. the film column) is needed.
* ``person.place_of_birth`` and ``person.place_lived`` produce identical
  (person, city) value pairs; only the *other* columns of the table (a birth
  year vs a nationality column) disambiguate the relation, which is what
  makes the table-wise model outperform the single-pair model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .kb import KnowledgeBase, PERSON_PROFESSIONS
from .tables import Column, Table, TableDataset

# Fine entity type -> hierarchical multi-label annotation (Freebase-style).
TYPE_HIERARCHY: Dict[str, List[str]] = {
    "director": ["people.person", "film.director"],
    "producer": ["people.person", "film.producer"],
    "athlete": ["people.person", "sports.athlete"],
    "politician": ["people.person", "government.politician"],
    "musician": ["people.person", "music.artist"],
    "author": ["people.person", "book.author"],
    "actor": ["people.person", "film.actor"],
    "coach": ["people.person", "sports.coach"],
    "person": ["people.person"],
    "city": ["location.location", "location.city"],
    "country": ["location.location", "location.country"],
    "state": ["location.location", "location.state"],
    "company": ["organization.organization", "business.company"],
    "sports_team": ["organization.organization", "sports.sports_team"],
    "film": ["film.film"],
    "album": ["music.album"],
    "book": ["book.book"],
    "position": ["sports.position"],
    "genre": ["film.genre"],
    "language": ["language.language"],
    "year": ["time.year"],
    "population": ["measure.population"],
    "runtime": ["measure.runtime"],
}

# Attribute relation -> (object fine type, header name).
ATTRIBUTE_INFO: Dict[str, Tuple[str, str]] = {
    "film.directed_by": ("director", "director"),
    "film.produced_by": ("producer", "producer"),
    "film.release_country": ("country", "country"),
    "film.studio": ("company", "studio"),
    "film.starring": ("actor", "starring"),
    "film.genre": ("genre", "genre"),
    "person.place_of_birth": ("city", "place of birth"),
    "person.place_of_death": ("city", "place of death"),
    "person.place_lived": ("city", "residence"),
    "person.nationality": ("country", "nationality"),
    "athlete.team_roster": ("sports_team", "team"),
    "athlete.position": ("position", "position"),
    "album.performed_by": ("musician", "artist"),
    "album.label": ("company", "label"),
    "book.written_by": ("author", "author"),
    "book.publisher": ("company", "publisher"),
    "book.language": ("language", "language"),
    "city.located_in": ("country", "country"),
    "company.headquarters": ("city", "headquarters"),
    "team.home_city": ("city", "city"),
    "politician.office_country": ("country", "country"),
}

# Numeric attribute -> (type label key, header name).
NUMERIC_INFO: Dict[str, Tuple[str, str]] = {
    "film.release_year": ("year", "year"),
    "film.runtime": ("runtime", "runtime"),
    "person.birth_year": ("year", "born"),
    "person.death_year": ("year", "died"),
    "album.release_year": ("year", "year"),
    "book.publication_year": ("year", "published"),
    "city.population": ("population", "population"),
    "company.founded_year": ("year", "founded"),
}


@dataclass(frozen=True)
class TableSchema:
    """A table template: subject type(s) + attribute columns.

    ``subject_types`` with several entries produces a mixed-profession person
    column labelled only with the shared supertype.
    """

    name: str
    subject_types: Tuple[str, ...]
    subject_header: str
    attributes: Tuple[str, ...]
    weight: float = 1.0

    def subject_labels(self) -> List[str]:
        if len(self.subject_types) == 1:
            return list(TYPE_HIERARCHY[self.subject_types[0]])
        return ["people.person"]


SCHEMAS: Tuple[TableSchema, ...] = (
    TableSchema(
        "films_crew", ("film",), "film",
        ("film.directed_by", "film.produced_by", "film.release_country"), 1.6,
    ),
    TableSchema(
        "films_release", ("film",), "film",
        ("film.release_year", "film.studio", "film.genre"), 1.2,
    ),
    TableSchema(
        "films_cast", ("film",), "film",
        ("film.starring", "film.directed_by", "film.release_year"), 1.2,
    ),
    TableSchema(
        "birth_records",
        tuple(PERSON_PROFESSIONS), "person",
        ("person.place_of_birth", "person.birth_year"), 1.4,
    ),
    TableSchema(
        "residences",
        tuple(PERSON_PROFESSIONS), "person",
        ("person.place_lived", "person.nationality"), 1.4,
    ),
    # death_records has the *same column types* as birth_records
    # (person, city, year); only the year distribution hints at which
    # relation holds — the paper's own place_of_birth/place_of_death example.
    TableSchema(
        "death_records",
        tuple(PERSON_PROFESSIONS), "person",
        ("person.place_of_death", "person.death_year"), 1.0,
    ),
    TableSchema(
        "rosters", ("athlete",), "player",
        ("person.place_of_birth", "athlete.team_roster", "athlete.position"), 1.4,
    ),
    TableSchema(
        "albums", ("album",), "album",
        ("album.performed_by", "album.release_year", "album.label"), 1.0,
    ),
    TableSchema(
        "books", ("book",), "title",
        ("book.written_by", "book.publisher", "book.publication_year"), 1.0,
    ),
    TableSchema(
        "books_lang", ("book",), "title",
        ("book.written_by", "book.language"), 0.8,
    ),
    TableSchema(
        "cities", ("city",), "city",
        ("city.located_in", "city.population"), 1.0,
    ),
    TableSchema(
        "companies", ("company",), "company",
        ("company.headquarters", "company.founded_year"), 1.0,
    ),
    TableSchema(
        "teams", ("sports_team",), "team",
        ("team.home_city",), 0.8,
    ),
    TableSchema(
        "politicians", ("politician",), "name",
        ("politician.office_country", "person.birth_year"), 1.0,
    ),
)


def _attribute_labels(relation: str) -> List[str]:
    if relation in ATTRIBUTE_INFO:
        fine_type, _ = ATTRIBUTE_INFO[relation]
        return list(TYPE_HIERARCHY[fine_type])
    fine_type, _ = NUMERIC_INFO[relation]
    return list(TYPE_HIERARCHY[fine_type])


def _attribute_header(relation: str) -> str:
    if relation in ATTRIBUTE_INFO:
        return ATTRIBUTE_INFO[relation][1]
    return NUMERIC_INFO[relation][1]


def wikitable_type_vocab() -> List[str]:
    labels = set()
    for entry in TYPE_HIERARCHY.values():
        labels.update(entry)
    return sorted(labels)


def wikitable_relation_vocab() -> List[str]:
    relations = set(ATTRIBUTE_INFO) | set(NUMERIC_INFO)
    return sorted(relations)


def generate_table(
    kb: KnowledgeBase,
    schema: TableSchema,
    rng: np.random.Generator,
    min_rows: int = 3,
    max_rows: int = 8,
    cell_noise: float = 0.0,
    table_id: str = "",
) -> Table:
    """Materialize one table from ``schema`` with KB-consistent rows."""
    num_rows = int(rng.integers(min_rows, max_rows + 1))

    if len(schema.subject_types) == 1:
        subjects = kb.sample(schema.subject_types[0], num_rows, rng)
    else:
        subjects = []
        for _ in range(num_rows):
            profession = schema.subject_types[rng.integers(len(schema.subject_types))]
            pool = kb.entities[profession]
            subjects.append(pool[rng.integers(len(pool))])

    columns: List[Column] = [
        Column(
            values=[s.name for s in subjects],
            type_labels=schema.subject_labels(),
            header=schema.subject_header,
        )
    ]
    relation_labels: Dict[Tuple[int, int], List[str]] = {}

    for col_index, relation in enumerate(schema.attributes, start=1):
        values: List[str] = []
        for subject in subjects:
            value = subject.attribute_name(relation)
            if value is None:
                # Mixed-person schemas can include attributes some professions
                # lack; fall back to a random same-typed value (noisy cell).
                if relation in ATTRIBUTE_INFO:
                    value = kb._pick(ATTRIBUTE_INFO[relation][0]).name
                else:
                    value = "0"
            if cell_noise > 0 and rng.random() < cell_noise:
                if relation in ATTRIBUTE_INFO:
                    value = kb._pick(ATTRIBUTE_INFO[relation][0]).name
            values.append(value)
        columns.append(
            Column(
                values=values,
                type_labels=_attribute_labels(relation),
                header=_attribute_header(relation),
            )
        )
        relation_labels[(0, col_index)] = [relation]

    return Table(
        columns=columns,
        table_id=table_id or f"{schema.name}-{rng.integers(1 << 30)}",
        relation_labels=relation_labels,
        metadata={"schema": schema.name},
    )


def _sibling_types(fine_type: str) -> List[str]:
    """Fine types sharing a coarse parent (candidates for label noise)."""
    parent = TYPE_HIERARCHY[fine_type][0]
    return [
        t for t, labels in TYPE_HIERARCHY.items()
        if labels[0] == parent and t != fine_type and len(labels) > 1
    ]


def _sibling_relations(relation: str) -> List[str]:
    """Relations with the same object type (candidates for label noise)."""
    if relation in ATTRIBUTE_INFO:
        object_type = ATTRIBUTE_INFO[relation][0]
        return [
            r for r, (obj, _) in ATTRIBUTE_INFO.items()
            if obj == object_type and r != relation
        ]
    object_type = NUMERIC_INFO[relation][0]
    return [
        r for r, (obj, _) in NUMERIC_INFO.items()
        if obj == object_type and r != relation
    ]


def _apply_label_noise(table: Table, rng: np.random.Generator, rate: float) -> None:
    """Corrupt annotations in place, emulating the heuristic labelling noise
    of the real WikiTable benchmark (labels are aggregated entity links, not
    human annotations — Section 5.1)."""
    for column in table.columns:
        if rng.random() >= rate or len(column.type_labels) < 2:
            continue
        fine = None
        for label in column.type_labels:
            for fine_type, labels in TYPE_HIERARCHY.items():
                if len(labels) > 1 and labels[1] == label:
                    fine = fine_type
        if fine is None:
            continue
        siblings = _sibling_types(fine)
        if siblings:
            replacement = siblings[rng.integers(len(siblings))]
            column.type_labels = list(TYPE_HIERARCHY[replacement])
    for pair in list(table.relation_labels):
        if rng.random() >= rate:
            continue
        current = table.relation_labels[pair][0]
        siblings = _sibling_relations(current)
        if siblings:
            table.relation_labels[pair] = [siblings[rng.integers(len(siblings))]]


def generate_wikitable_dataset(
    num_tables: int = 600,
    seed: int = 7,
    kb: Optional[KnowledgeBase] = None,
    cell_noise: float = 0.05,
    label_noise: float = 0.08,
    min_rows: int = 3,
    max_rows: int = 8,
) -> TableDataset:
    """Generate the full synthetic WikiTable-style dataset.

    Tables are drawn from :data:`SCHEMAS` proportional to their weights; the
    KB defaults to a fresh one seeded from ``seed``.  ``label_noise``
    corrupts a fraction of fine type / relation labels with sibling labels,
    mirroring the heuristic (entity-link derived) annotations of the real
    benchmark and bounding achievable F1 away from a saturated 1.0.
    """
    rng = np.random.default_rng(seed)
    if kb is None:
        kb = KnowledgeBase(np.random.default_rng(seed + 1))
    weights = np.array([s.weight for s in SCHEMAS], dtype=np.float64)
    weights /= weights.sum()

    tables = []
    for i in range(num_tables):
        schema = SCHEMAS[rng.choice(len(SCHEMAS), p=weights)]
        table = generate_table(
            kb,
            schema,
            rng,
            min_rows=min_rows,
            max_rows=max_rows,
            cell_noise=cell_noise,
            table_id=f"wikitable-{i}",
        )
        if label_noise > 0:
            _apply_label_noise(table, rng, label_noise)
        tables.append(table)
    return TableDataset(
        tables=tables,
        type_vocab=wikitable_type_vocab(),
        relation_vocab=wikitable_relation_vocab(),
        name="wikitable",
    )
