"""Relational data model used throughout the library.

A :class:`Table` is an ordered collection of :class:`Column` objects plus the
annotations the paper's two tasks target: per-column *type labels* (multi-label
on WikiTable, single-label on VizNet) and *relation labels* between the
subject column (column 0, following TURL's convention) and each other column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Column:
    """A single table column: string cell values plus annotations."""

    values: List[str]
    type_labels: List[str] = field(default_factory=list)
    header: Optional[str] = None

    def __post_init__(self) -> None:
        self.values = [str(v) for v in self.values]

    @property
    def num_rows(self) -> int:
        return len(self.values)

    def head(self, n: int) -> List[str]:
        return self.values[:n]


@dataclass
class Table:
    """A table with optional column-pair relation annotations.

    ``relation_labels`` maps a column-index pair ``(i, j)`` to the list of
    relation names that hold between columns ``i`` and ``j``.
    """

    columns: List[Column]
    table_id: str = ""
    relation_labels: Dict[Tuple[int, int], List[str]] = field(default_factory=dict)
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def num_rows(self) -> int:
        return max((col.num_rows for col in self.columns), default=0)

    def column_values(self, index: int) -> List[str]:
        return self.columns[index].values

    def shuffled_rows(self, rng) -> "Table":
        """Return a copy with rows permuted identically across columns."""
        order = rng.permutation(self.num_rows)
        new_columns = [
            Column(
                values=[col.values[i] for i in order if i < col.num_rows],
                type_labels=list(col.type_labels),
                header=col.header,
            )
            for col in self.columns
        ]
        return Table(
            columns=new_columns,
            table_id=self.table_id,
            relation_labels=dict(self.relation_labels),
            metadata=dict(self.metadata),
        )

    def shuffled_columns(self, rng) -> "Table":
        """Return a copy with columns permuted (relation pairs remapped)."""
        order = list(rng.permutation(self.num_columns))
        position = {old: new for new, old in enumerate(order)}
        new_columns = [
            Column(
                values=list(self.columns[old].values),
                type_labels=list(self.columns[old].type_labels),
                header=self.columns[old].header,
            )
            for old in order
        ]
        new_relations = {}
        for (i, j), labels in self.relation_labels.items():
            new_relations[(position[i], position[j])] = list(labels)
        return Table(
            columns=new_columns,
            table_id=self.table_id,
            relation_labels=new_relations,
            metadata=dict(self.metadata),
        )


@dataclass
class TableDataset:
    """A collection of annotated tables plus fixed label vocabularies."""

    tables: List[Table]
    type_vocab: List[str]
    relation_vocab: List[str] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        self._type_index = {t: i for i, t in enumerate(self.type_vocab)}
        self._relation_index = {r: i for i, r in enumerate(self.relation_vocab)}

    def __len__(self) -> int:
        return len(self.tables)

    def type_id(self, label: str) -> int:
        if label not in self._type_index:
            raise KeyError(f"unknown type label: {label}")
        return self._type_index[label]

    def relation_id(self, label: str) -> int:
        if label not in self._relation_index:
            raise KeyError(f"unknown relation label: {label}")
        return self._relation_index[label]

    @property
    def num_types(self) -> int:
        return len(self.type_vocab)

    @property
    def num_relations(self) -> int:
        return len(self.relation_vocab)

    def num_annotated_columns(self) -> int:
        return sum(
            1 for table in self.tables for col in table.columns if col.type_labels
        )

    def num_annotated_pairs(self) -> int:
        return sum(len(table.relation_labels) for table in self.tables)

    def subset(self, indices: Sequence[int], name: str = "") -> "TableDataset":
        return TableDataset(
            tables=[self.tables[i] for i in indices],
            type_vocab=self.type_vocab,
            relation_vocab=self.relation_vocab,
            name=name or self.name,
        )

    def all_cell_text(self) -> List[str]:
        """Every cell value in the dataset (tokenizer / embedding training)."""
        return [
            value
            for table in self.tables
            for col in table.columns
            for value in col.values
        ]
