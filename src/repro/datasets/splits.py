"""Train/validation/test splitting utilities."""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .tables import TableDataset


@dataclass(frozen=True)
class DatasetSplits:
    """A train/valid/test partition of a :class:`TableDataset`."""

    train: TableDataset
    valid: TableDataset
    test: TableDataset


def split_dataset(
    dataset: TableDataset,
    valid_fraction: float = 0.1,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> DatasetSplits:
    """Randomly partition tables into train/valid/test subsets."""
    if valid_fraction + test_fraction >= 1.0:
        raise ValueError("valid_fraction + test_fraction must be < 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset.tables))
    n_test = int(round(len(order) * test_fraction))
    n_valid = int(round(len(order) * valid_fraction))
    test_idx = order[:n_test]
    valid_idx = order[n_test:n_test + n_valid]
    train_idx = order[n_test + n_valid:]
    return DatasetSplits(
        train=dataset.subset(train_idx, name=f"{dataset.name}-train"),
        valid=dataset.subset(valid_idx, name=f"{dataset.name}-valid"),
        test=dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )


def training_fraction(splits: DatasetSplits, fraction: float, seed: int = 0) -> DatasetSplits:
    """Reduce the training set to ``fraction`` of its tables (Figure 4)."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1]: {fraction}")
    rng = np.random.default_rng(seed)
    count = max(1, int(round(len(splits.train.tables) * fraction)))
    indices = rng.choice(len(splits.train.tables), size=count, replace=False)
    return DatasetSplits(
        train=splits.train.subset(indices, name=f"{splits.train.name}-{fraction:.2f}"),
        valid=splits.valid,
        test=splits.test,
    )
