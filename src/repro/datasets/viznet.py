"""Synthetic VizNet-style benchmark (single-label column types).

The original VizNet benchmark [Zhang et al., Sato] annotates WebTable columns
with a single DBpedia type out of 78.  This generator reproduces the task
shape with 32 types, including all 15 "most numeric" types the paper studies
in Table 5 (plays, rank, depth, sales, year, fileSize, elevation, ranking,
age, birthDate, grades, weight, isbn, capacity, code).

Intentional confusions (so the *shape* of Tables 4/5 and Figure 5 holds):

* ``ranking`` draws from the same integer range as ``rank`` — the paper
  reports ranking at 33.2 F1.
* ``capacity`` overlaps with ``sales``/``plays`` magnitudes — the paper
  reports capacity at 62.6 F1.
* ``birthPlace`` / ``location`` / ``city`` share one value distribution
  (city names), and ``nationality`` / ``origin`` / ``country`` share another
  (country names).  These types are *only* separable through table context —
  the same types the paper's analyses single out as context-dependent
  (Figure 6: "age relies on origin"; Figure 5: birthPlace and nationality are
  among the hardest types).  They are what separates multi-column models
  (Doduo, Sato) from single-column ones (DosoloSCol, Sherlock).

Tables mix 1–4 columns drawn from topical themes; single-column tables are
kept so the paper's "Full" vs "Multi-column only" evaluation split exists.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from .kb import (
    CITY_PARTS_A,
    CITY_PARTS_B,
    COMPANY_SUFFIXES,
    COMPANY_WORDS,
    COUNTRIES,
    FILM_WORDS_A,
    FILM_WORDS_B,
    FIRST_NAMES,
    GENRES,
    LANGUAGES,
    LAST_NAMES,
    POSITIONS,
    STATES,
    TEAM_MASCOTS,
)
from .tables import Column, Table, TableDataset

ValueGenerator = Callable[[np.random.Generator], str]


def _person_name(rng: np.random.Generator) -> str:
    return f"{FIRST_NAMES[rng.integers(len(FIRST_NAMES))]} {LAST_NAMES[rng.integers(len(LAST_NAMES))]}"


def _city(rng: np.random.Generator) -> str:
    return CITY_PARTS_A[rng.integers(len(CITY_PARTS_A))] + CITY_PARTS_B[rng.integers(len(CITY_PARTS_B))]


def _company(rng: np.random.Generator) -> str:
    return f"{COMPANY_WORDS[rng.integers(len(COMPANY_WORDS))]} {COMPANY_SUFFIXES[rng.integers(len(COMPANY_SUFFIXES))]}"


def _team(rng: np.random.Generator) -> str:
    return f"{_city(rng)} {TEAM_MASCOTS[rng.integers(len(TEAM_MASCOTS))]}"


def _album(rng: np.random.Generator) -> str:
    return (
        f"{FILM_WORDS_A[rng.integers(len(FILM_WORDS_A))]} "
        f"{FILM_WORDS_B[rng.integers(len(FILM_WORDS_B))]} lp"
    )


def _film(rng: np.random.Generator) -> str:
    return (
        f"{FILM_WORDS_A[rng.integers(len(FILM_WORDS_A))]} "
        f"{FILM_WORDS_B[rng.integers(len(FILM_WORDS_B))]}"
    )


_MONTHS = [
    "january", "february", "march", "april", "may", "june",
    "july", "august", "september", "october", "november", "december",
]
_DAYS = ["monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday"]
_STATUSES = ["active", "pending", "closed", "open", "archived", "cancelled"]
_CATEGORIES = ["electronics", "clothing", "furniture", "grocery", "toys", "sports", "books"]
_RESULTS = ["win", "loss", "draw", "w", "l", "d"]
_GENDERS = ["male", "female", "m", "f"]
_GRADE_LETTERS = ["a", "a-", "b+", "b", "b-", "c+", "c"]
_SYMBOLS = ["au", "ag", "fe", "cu", "zn", "pb", "sn", "ni", "al", "ti"]


def _grades(rng: np.random.Generator) -> str:
    # ~67% numeric, matching the %num column of Table 5.
    if rng.random() < 0.67:
        return str(int(rng.integers(55, 101)))
    return _GRADE_LETTERS[rng.integers(len(_GRADE_LETTERS))]


def _weight(rng: np.random.Generator) -> str:
    if rng.random() < 0.6:
        return str(int(rng.integers(45, 130)))
    return f"{int(rng.integers(45, 130))} kg"


def _isbn(rng: np.random.Generator) -> str:
    if rng.random() < 0.44:
        return "".join(str(rng.integers(10)) for _ in range(13))
    return f"978-{rng.integers(10)}-{rng.integers(100, 999)}-{rng.integers(10000, 99999)}-{rng.integers(10)}"


def _capacity(rng: np.random.Generator) -> str:
    if rng.random() < 0.42:
        return str(int(rng.integers(1_000, 90_000)))
    return f"{int(rng.integers(1, 90))},{int(rng.integers(100, 999))} seats"


def _code(rng: np.random.Generator) -> str:
    if rng.random() < 0.36:
        return str(int(rng.integers(100, 99999)))
    letters = "abcdefghijklmnopqrstuvwxyz"
    return "".join(letters[rng.integers(26)] for _ in range(3)).upper() + str(int(rng.integers(10, 99)))


def _birth_date(rng: np.random.Generator) -> str:
    if rng.random() < 0.68:
        return f"{int(rng.integers(1, 13))}/{int(rng.integers(1, 29))}/{int(rng.integers(1930, 2005))}"
    return f"{_MONTHS[rng.integers(12)]} {int(rng.integers(1, 29))}, {int(rng.integers(1930, 2005))}"


def _file_size(rng: np.random.Generator) -> str:
    if rng.random() < 0.88:
        return f"{rng.random() * 900 + 1:.1f}"
    return f"{rng.random() * 900 + 1:.1f} mb"


def _elevation(rng: np.random.Generator) -> str:
    if rng.random() < 0.87:
        return str(int(rng.integers(100, 8900)))
    return f"{int(rng.integers(100, 8900))} m"


def _depth(rng: np.random.Generator) -> str:
    if rng.random() < 0.93:
        return str(int(rng.integers(5, 400)))
    return f"{int(rng.integers(5, 400))} m"


def _sales(rng: np.random.Generator) -> str:
    if rng.random() < 0.92:
        return str(int(rng.integers(10_000, 5_000_000)))
    return f"{int(rng.integers(10, 5000))}k"


def _address(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(1, 999))} {_city(rng)} st"


def _description(rng: np.random.Generator) -> str:
    a = FILM_WORDS_A[rng.integers(len(FILM_WORDS_A))]
    b = FILM_WORDS_B[rng.integers(len(FILM_WORDS_B))]
    return f"a {a} story about the {b}"


# type -> generator. Typed deliberately after the VizNet label set.
VALUE_GENERATORS: Dict[str, ValueGenerator] = {
    # textual types
    "name": _person_name,
    "city": _city,
    "birthPlace": _city,      # same distribution as city: context-only type
    "location": _city,        # same distribution as city: context-only type
    "country": lambda rng: COUNTRIES[rng.integers(len(COUNTRIES))],
    "nationality": lambda rng: COUNTRIES[rng.integers(len(COUNTRIES))],  # context-only
    "origin": lambda rng: COUNTRIES[rng.integers(len(COUNTRIES))],       # context-only
    "state": lambda rng: STATES[rng.integers(len(STATES))],
    "company": _company,
    "team": _team,
    "album": _album,
    "film": _film,
    "language": lambda rng: LANGUAGES[rng.integers(len(LANGUAGES))],
    "genre": lambda rng: GENRES[rng.integers(len(GENRES))],
    "position": lambda rng: POSITIONS[rng.integers(len(POSITIONS))],
    "gender": lambda rng: _GENDERS[rng.integers(len(_GENDERS))],
    "status": lambda rng: _STATUSES[rng.integers(len(_STATUSES))],
    "category": lambda rng: _CATEGORIES[rng.integers(len(_CATEGORIES))],
    "day": lambda rng: _DAYS[rng.integers(len(_DAYS))],
    "symbol": lambda rng: _SYMBOLS[rng.integers(len(_SYMBOLS))],
    "result": lambda rng: _RESULTS[rng.integers(len(_RESULTS))],
    "address": _address,
    "description": _description,
    # numeric-leaning types (the 15 of Table 5 among them)
    "plays": lambda rng: str(int(rng.integers(1, 2_000_000))),
    "rank": lambda rng: str(int(rng.integers(1, 21))),
    "ranking": lambda rng: str(int(rng.integers(1, 25))),
    "depth": _depth,
    "sales": _sales,
    "year": lambda rng: str(int(rng.integers(1900, 2022))),
    "fileSize": _file_size,
    "elevation": _elevation,
    "age": lambda rng: str(int(rng.integers(1, 100))),
    "birthDate": _birth_date,
    "grades": _grades,
    "weight": _weight,
    "isbn": _isbn,
    "capacity": _capacity,
    "code": _code,
}

NUMERIC_TYPES_TABLE5 = [
    "plays", "rank", "depth", "sales", "year", "fileSize", "elevation",
    "ranking", "age", "birthDate", "grades", "weight", "isbn", "capacity",
    "code",
]

# Topical themes: a table samples a subset of one theme's types.  The
# context-only alias types (birthPlace/location vs city; nationality/origin
# vs country) are pinned to distinct themes so the rest of the table is what
# identifies them.
THEMES: Dict[str, List[str]] = {
    "people": ["name", "age", "birthDate", "gender", "birthPlace", "nationality"],
    "sports": ["name", "team", "position", "rank", "plays", "result"],
    "competition": ["name", "ranking", "grades", "state", "age"],
    "music": ["album", "name", "year", "sales", "genre", "origin"],
    "film": ["film", "name", "year", "genre", "code"],
    "books": ["name", "isbn", "year", "language", "company"],
    "geo": ["city", "country", "state", "elevation", "depth"],
    "business": ["company", "location", "year", "sales", "status", "category"],
    "stadiums": ["team", "city", "capacity", "year"],
    "files": ["description", "fileSize", "code", "day", "status"],
    "records": ["name", "code", "weight", "symbol", "address"],
}


def viznet_type_vocab() -> List[str]:
    return sorted(VALUE_GENERATORS)


def numeric_fraction(column_values: List[str]) -> float:
    """Fraction of cells castable to int/float/date-like (the %num measure)."""
    def is_numeric(value: str) -> bool:
        v = value.strip().replace(",", "")
        try:
            float(v)
            return True
        except ValueError:
            pass
        # simple date pattern d/m/y
        parts = v.split("/")
        if len(parts) == 3 and all(p.isdigit() for p in parts):
            return True
        return False

    if not column_values:
        return 0.0
    return sum(1 for v in column_values if is_numeric(v)) / len(column_values)


def generate_viznet_table(
    rng: np.random.Generator,
    min_rows: int = 4,
    max_rows: int = 10,
    max_columns: int = 4,
    single_column_prob: float = 0.25,
    table_id: str = "",
) -> Table:
    """Generate one VizNet-style table from a random theme."""
    theme_names = sorted(THEMES)
    theme = THEMES[theme_names[rng.integers(len(theme_names))]]
    if rng.random() < single_column_prob:
        num_cols = 1
    else:
        num_cols = int(rng.integers(2, min(max_columns, len(theme)) + 1))
    chosen = list(rng.choice(len(theme), size=num_cols, replace=False))
    types = [theme[i] for i in chosen]
    num_rows = int(rng.integers(min_rows, max_rows + 1))

    columns = [
        Column(
            values=[VALUE_GENERATORS[t](rng) for _ in range(num_rows)],
            type_labels=[t],
            header=t,
        )
        for t in types
    ]
    return Table(columns=columns, table_id=table_id, metadata={"theme": "viznet"})


def generate_viznet_dataset(
    num_tables: int = 800,
    seed: int = 11,
    min_rows: int = 4,
    max_rows: int = 10,
    single_column_prob: float = 0.25,
) -> TableDataset:
    """Generate the full synthetic VizNet-style dataset (single-label)."""
    rng = np.random.default_rng(seed)
    tables = [
        generate_viznet_table(
            rng,
            min_rows=min_rows,
            max_rows=max_rows,
            single_column_prob=single_column_prob,
            table_id=f"viznet-{i}",
        )
        for i in range(num_tables)
    ]
    return TableDataset(
        tables=tables,
        type_vocab=viznet_type_vocab(),
        relation_vocab=[],
        name="viznet",
    )


def multi_column_only(dataset: TableDataset) -> TableDataset:
    """The paper's "Multi-column only" split: tables with >= 2 columns."""
    indices = [i for i, t in enumerate(dataset.tables) if t.num_columns >= 2]
    return dataset.subset(indices, name=f"{dataset.name}-multicol")
