"""Datasets: synthetic KB, WikiTable/VizNet-style benchmarks, case study DB."""

from .corruption import (
    CorruptionConfig,
    corrupt_dataset,
    corrupt_table,
    drop_cells,
    misplace_cells,
    typo_cells,
)
from .enterprise import case_study_clusters, generate_enterprise_dataset
from .kb import Entity, KnowledgeBase, RELATION_TEMPLATES
from .splits import DatasetSplits, split_dataset, training_fraction
from .stats import (
    DatasetStatistics,
    dataset_statistics,
    relation_label_distribution,
    type_label_distribution,
)
from .tables import Column, Table, TableDataset
from .viznet import (
    NUMERIC_TYPES_TABLE5,
    generate_viznet_dataset,
    multi_column_only,
    numeric_fraction,
    viznet_type_vocab,
)
from .wikitable import (
    SCHEMAS,
    TYPE_HIERARCHY,
    generate_wikitable_dataset,
    wikitable_relation_vocab,
    wikitable_type_vocab,
)

__all__ = [
    "Column",
    "CorruptionConfig",
    "DatasetSplits",
    "DatasetStatistics",
    "dataset_statistics",
    "relation_label_distribution",
    "type_label_distribution",
    "Entity",
    "KnowledgeBase",
    "NUMERIC_TYPES_TABLE5",
    "RELATION_TEMPLATES",
    "SCHEMAS",
    "TYPE_HIERARCHY",
    "Table",
    "TableDataset",
    "case_study_clusters",
    "corrupt_dataset",
    "corrupt_table",
    "drop_cells",
    "generate_enterprise_dataset",
    "generate_viznet_dataset",
    "generate_wikitable_dataset",
    "misplace_cells",
    "multi_column_only",
    "numeric_fraction",
    "split_dataset",
    "training_fraction",
    "typo_cells",
    "viznet_type_vocab",
    "wikitable_relation_vocab",
    "wikitable_type_vocab",
]
