"""Synthetic enterprise HR database for the Section 7 case study.

The paper's case study uses 10 in-production "jobsearch"/"review" tables with
50 columns total (29 string, 21 integer) whose ground truth groups them into
15 semantic clusters:

    date, IP address, job title, timestamp (unixtime), timestamp (hhmm),
    counts, status, file path, browser, location, search term, rating,
    company ID, review ID, user ID

Two properties of real enterprise data make this clustering hard, and both
are generated here on purpose because they are what separates the Table 9
methods:

* **Cross-cluster surface collisions.**  The three ID clusters and the
  counts cluster are all plain integers with *overlapping ranges* (auto-
  increment IDs from different services), and different teams reuse the same
  header word for different things (``time`` for unixtime and hh:mm,
  ``location`` for geography and file paths, ``score`` for ratings and
  counts).  Distribution- and name-based matchers merge across clusters —
  the paper's low-precision failure mode for DistributionBased and COMA.

* **Within-cluster distribution drift.**  The same semantic column has a
  different distribution per table: each table's ID column covers its own
  auto-increment window, counts columns differ by orders of magnitude
  (per-session vs aggregate), dates come from different export periods.
  Value-distribution matchers miss these same-cluster pairs (recall loss),
  while the signal that survives is *format* plus *table context* — exactly
  what DODUO's contextualized column embeddings capture.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from .kb import CITY_PARTS_A, CITY_PARTS_B
from .tables import Column, Table, TableDataset

# A per-column value sampler, created fresh for every (table, column) so the
# column can carry its own distribution parameters (drift).
ValueGen = Callable[[np.random.Generator], str]
ColumnFactory = Callable[[np.random.Generator], ValueGen]

_JOB_TITLES = [
    "software engineer", "data scientist", "product manager", "designer",
    "accountant", "nurse", "sales associate", "marketing manager",
    "technician", "analyst", "recruiter", "teacher",
]

_BROWSERS = ["chrome", "firefox", "safari", "edge", "opera"]

_STATUSES = ["active", "pending", "approved", "rejected", "expired", "draft"]

_SEARCH_TERMS = [
    "remote jobs", "salary data", "best companies", "part time work",
    "engineering roles", "entry level", "benefits review", "hybrid office",
    "internships", "career change",
]


def _date_factory(rng: np.random.Generator) -> ValueGen:
    # Each table is an export from its own period: a distinct year and a
    # narrow month window (within-cluster drift).
    year = int(rng.integers(2018, 2023))
    month_low = int(rng.integers(1, 10))

    def gen(r: np.random.Generator) -> str:
        month = int(r.integers(month_low, month_low + 3))
        return f"{year}-{month:02d}-{int(r.integers(1, 29)):02d}"

    return gen


def _ip_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return ".".join(str(int(r.integers(1, 255))) for _ in range(4))

    return gen


def _unixtime_factory(rng: np.random.Generator) -> ValueGen:
    # Ten-digit epoch seconds; each table covers its own few-month window.
    start = int(rng.integers(1_500_000_000, 1_630_000_000))

    def gen(r: np.random.Generator) -> str:
        return str(start + int(r.integers(0, 10_000_000)))

    return gen


def _hhmm_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return f"{int(r.integers(0, 24)):02d}:{int(r.integers(0, 60)):02d}"

    return gen


def _counts_factory(rng: np.random.Generator) -> ValueGen:
    # Orders-of-magnitude drift: session counts vs aggregate counts.  The
    # largest scale overlaps the ID ranges — the precision trap for
    # distribution matching.
    scale = int(rng.choice([80, 900, 40_000, 2_000_000]))

    def gen(r: np.random.Generator) -> str:
        return str(int(r.integers(0, scale)))

    return gen


def _status_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return _STATUSES[r.integers(len(_STATUSES))]

    return gen


def _file_path_factory(rng: np.random.Generator) -> ValueGen:
    parts = ["var", "data", "logs", "export", "tmp", "jobs", "reviews"]

    def gen(r: np.random.Generator) -> str:
        depth = int(r.integers(2, 4))
        segs = [parts[r.integers(len(parts))] for _ in range(depth)]
        return "/" + "/".join(segs) + f"/file{int(r.integers(100))}.csv"

    return gen


def _browser_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return _BROWSERS[r.integers(len(_BROWSERS))]

    return gen


def _location_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return (
            CITY_PARTS_A[r.integers(len(CITY_PARTS_A))]
            + CITY_PARTS_B[r.integers(len(CITY_PARTS_B))]
        )

    return gen


def _search_term_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return _SEARCH_TERMS[r.integers(len(_SEARCH_TERMS))]

    return gen


def _job_title_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return _JOB_TITLES[r.integers(len(_JOB_TITLES))]

    return gen


def _rating_factory(rng: np.random.Generator) -> ValueGen:
    def gen(r: np.random.Generator) -> str:
        return f"{r.random() * 4 + 1:.1f}"

    return gen


def _id_factory(rng: np.random.Generator) -> ValueGen:
    """Auto-increment ID window shared by all three ID clusters.

    Every ID column — user, company, review — draws a window from the same
    global range, so windows overlap *across* clusters as often as *within*
    one: plain integers carry no cluster signal, only table context does.
    """
    low = int(rng.integers(100_000, 6_000_000))

    def gen(r: np.random.Generator) -> str:
        return str(low + int(r.integers(0, int(low * 0.8))))

    return gen


CLUSTER_FACTORIES: Dict[str, ColumnFactory] = {
    "date": _date_factory,
    "ip_address": _ip_factory,
    "job_title": _job_title_factory,
    "timestamp_unixtime": _unixtime_factory,
    "timestamp_hhmm": _hhmm_factory,
    "counts": _counts_factory,
    "status": _status_factory,
    "file_path": _file_path_factory,
    "browser": _browser_factory,
    "location": _location_factory,
    "search_term": _search_term_factory,
    "rating": _rating_factory,
    "company_id": _id_factory,
    "review_id": _id_factory,
    "user_id": _id_factory,
}

# Header variants per cluster.  Several names are deliberately shared across
# clusters ("time", "location", "score", "id", "ref") — different teams,
# different conventions, same word for different things.
HEADER_VARIANTS: Dict[str, List[str]] = {
    "date": ["date", "event_date", "day", "dt"],
    "ip_address": ["ip", "ip_address", "client_ip", "remote_addr"],
    "job_title": ["job_title", "title", "position", "role_name"],
    "timestamp_unixtime": ["ts", "time", "created_ts", "epoch"],
    "timestamp_hhmm": ["time", "hhmm", "clock_time", "time_of_day"],
    "counts": ["count", "n", "total", "score"],
    "status": ["status", "state", "review_status", "flag"],
    "file_path": ["path", "file_path", "source_file", "location"],
    "browser": ["browser", "user_agent", "client", "ua_family"],
    "location": ["location", "city", "job_location", "geo"],
    "search_term": ["query", "search_term", "keywords", "q"],
    "rating": ["rating", "score", "stars", "review_score"],
    "company_id": ["company_id", "id", "employer_ref", "ref"],
    "review_id": ["review_id", "id", "review_ref", "ref"],
    "user_id": ["user_id", "id", "member_ref", "ref"],
}

# Ten tables x five columns = 50 columns; every cluster appears >= 2 times.
TABLE_LAYOUTS: List[Tuple[str, List[str]]] = [
    ("jobsearch_events", ["date", "user_id", "search_term", "location", "counts"]),
    ("jobsearch_clicks", ["timestamp_unixtime", "user_id", "job_title", "browser", "ip_address"]),
    ("jobsearch_sessions", ["date", "timestamp_hhmm", "user_id", "ip_address", "browser"]),
    ("jobsearch_queries", ["search_term", "counts", "date", "status", "user_id"]),
    ("jobsearch_exports", ["file_path", "date", "counts", "status", "timestamp_unixtime"]),
    ("review_ratings", ["review_id", "company_id", "rating", "date", "user_id"]),
    ("review_moderation", ["review_id", "status", "timestamp_unixtime", "user_id", "counts"]),
    ("review_companies", ["company_id", "location", "rating", "counts", "status"]),
    ("review_imports", ["file_path", "review_id", "timestamp_hhmm", "date", "counts"]),
    ("review_titles", ["job_title", "company_id", "rating", "search_term", "location"]),
]


def case_study_clusters() -> List[str]:
    return sorted(CLUSTER_FACTORIES)


def generate_enterprise_dataset(
    seed: int = 23,
    num_rows: int = 12,
) -> TableDataset:
    """Generate the 10-table, 50-column case-study database.

    Column ``type_labels`` hold the ground-truth cluster name (used only for
    evaluation, exactly like the paper's manually refined ground truth).
    """
    rng = np.random.default_rng(seed)
    tables = []
    for table_name, clusters in TABLE_LAYOUTS:
        columns = []
        for cluster in clusters:
            variants = HEADER_VARIANTS[cluster]
            header = variants[rng.integers(len(variants))]
            generator = CLUSTER_FACTORIES[cluster](rng)
            columns.append(
                Column(
                    values=[generator(rng) for _ in range(num_rows)],
                    type_labels=[cluster],
                    header=header,
                )
            )
        tables.append(Table(columns=columns, table_id=table_name))
    return TableDataset(
        tables=tables,
        type_vocab=case_study_clusters(),
        relation_vocab=[],
        name="enterprise-hr",
    )
