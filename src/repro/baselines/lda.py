"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

Sato augments Sherlock's per-column features with an LDA topic vector of the
whole table as *table context*.  This is a compact, dependency-free LDA
implementation: training runs collapsed Gibbs sampling; inference folds in a
new document with the topic-word counts held fixed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..text.tokenizer import basic_tokenize


class LdaModel:
    """Collapsed-Gibbs LDA over bag-of-words documents.

    Parameters
    ----------
    num_topics:
        Size of the topic vector appended to Sato's features.
    alpha, beta:
        Symmetric Dirichlet priors for document-topic and topic-word
        distributions.
    """

    def __init__(
        self,
        num_topics: int = 10,
        alpha: float = 0.1,
        beta: float = 0.01,
        iterations: int = 30,
        seed: int = 0,
    ) -> None:
        if num_topics < 1:
            raise ValueError("num_topics must be >= 1")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self.iterations = iterations
        self._rng = np.random.default_rng(seed)
        self.vocabulary: Dict[str, int] = {}
        self._topic_word: np.ndarray | None = None
        self._topic_totals: np.ndarray | None = None

    # -- vocabulary -----------------------------------------------------------
    def _doc_to_ids(self, document: str, grow: bool) -> List[int]:
        ids = []
        for token in basic_tokenize(document):
            if token not in self.vocabulary:
                if not grow:
                    continue
                self.vocabulary[token] = len(self.vocabulary)
            ids.append(self.vocabulary[token])
        return ids

    # -- training ------------------------------------------------------------
    def fit(self, documents: Sequence[str]) -> "LdaModel":
        """Run collapsed Gibbs sampling over ``documents``."""
        docs = [self._doc_to_ids(doc, grow=True) for doc in documents]
        vocab_size = max(len(self.vocabulary), 1)
        K = self.num_topics

        topic_word = np.zeros((K, vocab_size), dtype=np.float64)
        topic_totals = np.zeros(K, dtype=np.float64)
        doc_topic = np.zeros((len(docs), K), dtype=np.float64)
        assignments: List[np.ndarray] = []

        for d, doc in enumerate(docs):
            z = self._rng.integers(0, K, size=len(doc))
            assignments.append(z)
            for word, topic in zip(doc, z):
                topic_word[topic, word] += 1
                topic_totals[topic] += 1
                doc_topic[d, topic] += 1

        V_beta = vocab_size * self.beta
        for _ in range(self.iterations):
            for d, doc in enumerate(docs):
                z = assignments[d]
                for i, word in enumerate(doc):
                    topic = z[i]
                    topic_word[topic, word] -= 1
                    topic_totals[topic] -= 1
                    doc_topic[d, topic] -= 1

                    weights = (
                        (topic_word[:, word] + self.beta)
                        / (topic_totals + V_beta)
                        * (doc_topic[d] + self.alpha)
                    )
                    weights /= weights.sum()
                    topic = int(self._rng.choice(K, p=weights))

                    z[i] = topic
                    topic_word[topic, word] += 1
                    topic_totals[topic] += 1
                    doc_topic[d, topic] += 1

        self._topic_word = topic_word
        self._topic_totals = topic_totals
        return self

    # -- inference -----------------------------------------------------------
    def transform(self, document: str, fold_in_iterations: int = 25) -> np.ndarray:
        """Topic proportions for a new document.

        Uses deterministic mean-field fold-in (iterated expected topic
        assignments with the topic-word distribution fixed), which is far
        more stable than a single Gibbs chain for the short "documents"
        tables produce.
        """
        if self._topic_word is None or self._topic_totals is None:
            raise RuntimeError("LdaModel.transform called before fit")
        doc = self._doc_to_ids(document, grow=False)
        K = self.num_topics
        if not doc:
            return np.full(K, 1.0 / K, dtype=np.float32)

        vocab_size = self._topic_word.shape[1]
        V_beta = vocab_size * self.beta
        word_given_topic = (self._topic_word + self.beta) / (
            self._topic_totals[:, None] + V_beta
        )  # (K, V)
        words = np.asarray(doc)
        likelihood = word_given_topic[:, words].T  # (N, K)

        theta = np.full(K, 1.0 / K, dtype=np.float64)
        for _ in range(fold_in_iterations):
            responsibility = likelihood * theta[None, :]
            responsibility /= responsibility.sum(axis=1, keepdims=True)
            counts = responsibility.sum(axis=0)
            theta = (counts + self.alpha) / (counts.sum() + K * self.alpha)
        return theta.astype(np.float32)

    def top_words(self, topic: int, count: int = 10) -> List[str]:
        """Most probable words of a topic (debugging / inspection)."""
        if self._topic_word is None:
            raise RuntimeError("LdaModel.top_words called before fit")
        reverse = {i: w for w, i in self.vocabulary.items()}
        order = np.argsort(self._topic_word[topic])[::-1][:count]
        return [reverse[i] for i in order if i in reverse]
