"""The Sato baseline [Zhang et al., VLDB'20].

Sato extends Sherlock in two ways, both reproduced here:

1. **Table context** — an LDA topic vector computed over *all* cell text of
   the table is appended to every column's features.
2. **Structured prediction** — a linear-chain CRF over the table's column
   sequence replaces per-column argmax, so the predicted types of neighbour
   columns influence each other.

Sato is a single-label (multi-class) model; the paper evaluates it on VizNet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.tables import Table, TableDataset
from ..evaluation.metrics import PRF, multiclass_micro_f1
from ..nn import Adam, Linear, Module, Tensor, concatenate
from .crf import LinearChainCRF
from .features import ColumnFeaturizer, FeatureConfig
from .lda import LdaModel
from .sherlock import _SubNetwork


class SatoNetwork(Module):
    """Sherlock-style subnetworks plus an LDA-context subnetwork."""

    def __init__(
        self,
        feature_config: FeatureConfig,
        num_topics: int,
        num_types: int,
        rng: np.random.Generator,
        subnet_dim: int = 24,
        primary_hidden: int = 64,
    ) -> None:
        super().__init__()
        self.char_net = _SubNetwork(feature_config.char_dim, 48, subnet_dim, rng)
        self.word_net = _SubNetwork(feature_config.word_dim, 48, subnet_dim, rng)
        self.paragraph_net = _SubNetwork(feature_config.paragraph_dim, 32, subnet_dim, rng)
        self.topic_net = _SubNetwork(num_topics, 16, subnet_dim // 2, rng)
        primary_in = 3 * subnet_dim + subnet_dim // 2 + feature_config.stats_dim
        self.primary1 = Linear(primary_in, primary_hidden, rng)
        self.primary2 = Linear(primary_hidden, num_types, rng)

    def forward(self, features: Dict[str, np.ndarray]) -> Tensor:
        parts = [
            self.char_net(Tensor(features["char"])),
            self.word_net(Tensor(features["word"])),
            self.paragraph_net(Tensor(features["paragraph"])),
            self.topic_net(Tensor(features["topic"])),
            Tensor(features["stats"]),
        ]
        combined = concatenate(parts, axis=-1)
        return self.primary2(self.primary1(combined).relu())


@dataclass
class SatoConfig:
    """Training hyper-parameters for the Sato baseline."""

    epochs: int = 30
    batch_size: int = 8  # tables per batch
    learning_rate: float = 1e-3
    num_topics: int = 10
    lda_iterations: int = 20
    seed: int = 0


class SatoModel:
    """Trainable Sato column-type predictor (single-label)."""

    def __init__(
        self,
        dataset: TableDataset,
        config: SatoConfig = SatoConfig(),
        feature_config: FeatureConfig = FeatureConfig(),
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.featurizer = ColumnFeaturizer(feature_config)
        rng = np.random.default_rng(config.seed)
        self.network = SatoNetwork(
            feature_config, config.num_topics, dataset.num_types, rng
        )
        self.crf = LinearChainCRF(dataset.num_types, rng)
        self.lda = LdaModel(
            num_topics=config.num_topics,
            iterations=config.lda_iterations,
            seed=config.seed,
        )
        self._rng = rng
        self._topic_cache: Dict[int, np.ndarray] = {}

    # -- feature preparation -------------------------------------------------
    def _table_document(self, table: Table) -> str:
        return " ".join(
            value for column in table.columns for value in column.values
        )

    def _table_features(self, table: Table) -> Dict[str, np.ndarray]:
        features = self.featurizer.featurize_many(
            [column.values for column in table.columns]
        )
        cache_key = id(table)
        topic = self._topic_cache.get(cache_key)
        if topic is None:
            topic = self.lda.transform(self._table_document(table))
            self._topic_cache[cache_key] = topic
        features["topic"] = np.tile(topic, (table.num_columns, 1))
        return features

    def _table_labels(self, table: Table) -> np.ndarray:
        return np.asarray(
            [self.dataset.type_id(col.type_labels[0]) for col in table.columns],
            dtype=np.int64,
        )

    # -- training -------------------------------------------------------------
    def fit(self, tables: Optional[Sequence[Table]] = None) -> List[float]:
        """Fit LDA, then jointly train the network and CRF; returns losses."""
        if tables is None:
            tables = self.dataset.tables
        tables = list(tables)
        self.lda.fit([self._table_document(t) for t in tables])
        self._topic_cache.clear()

        params = self.network.parameters() + self.crf.parameters()
        optimizer = Adam(params, lr=self.config.learning_rate)
        losses: List[float] = []
        self.network.train()
        for _ in range(self.config.epochs):
            order = self._rng.permutation(len(tables))
            epoch_loss, batches = 0.0, 0
            for start in range(0, len(order), self.config.batch_size):
                batch = [tables[i] for i in order[start:start + self.config.batch_size]]
                total = None
                for table in batch:
                    unary = self.network(self._table_features(table))
                    nll = self.crf.negative_log_likelihood(
                        unary, self._table_labels(table)
                    )
                    total = nll if total is None else total + nll
                loss = total * (1.0 / len(batch))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self.network.eval()
        return losses

    # -- inference -------------------------------------------------------------
    def predict_table(self, table: Table) -> List[int]:
        """Jointly decode the column types of ``table`` with Viterbi."""
        self.network.eval()
        unary = self.network(self._table_features(table)).data
        return self.crf.viterbi(unary)

    def predict(self, tables: Sequence[Table]) -> List[List[int]]:
        return [self.predict_table(table) for table in tables]

    def evaluate(self, tables: Sequence[Table]) -> PRF:
        y_true: List[int] = []
        y_pred: List[int] = []
        for table in tables:
            y_true.extend(self._table_labels(table).tolist())
            y_pred.extend(self.predict_table(table))
        return multiclass_micro_f1(y_true, y_pred)
