"""Linear-chain conditional random field over a table's column sequence.

Sato places a CRF on top of per-column (unary) scores so that column-type
predictions within the same table are made jointly — its "structured output
prediction" component.  Training maximizes the exact sequence log-likelihood
(forward algorithm); decoding uses Viterbi.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import Module, Tensor
from ..nn import functional as F


class LinearChainCRF(Module):
    """Pairwise transition potentials between adjacent columns."""

    def __init__(self, num_labels: int, rng: np.random.Generator) -> None:
        super().__init__()
        if num_labels < 1:
            raise ValueError("num_labels must be >= 1")
        self.num_labels = num_labels
        self.transitions = Tensor(
            (rng.standard_normal((num_labels, num_labels)) * 0.01).astype(np.float32),
            requires_grad=True,
        )

    # -- training objective ------------------------------------------------------
    def log_likelihood(self, unary: Tensor, labels: np.ndarray) -> Tensor:
        """Log p(labels | unary) for one sequence.

        Parameters
        ----------
        unary:
            Tensor ``(T, L)`` of per-position label scores.
        labels:
            Integer array ``(T,)`` of gold labels.
        """
        labels = np.asarray(labels)
        T = unary.shape[0]
        if T == 0:
            raise ValueError("empty sequence")
        if labels.shape != (T,):
            raise ValueError(f"labels shape {labels.shape} != ({T},)")

        # Gold path score.
        positions = np.arange(T)
        score = unary[(positions, labels)].sum()
        if T > 1:
            score = score + self.transitions[(labels[:-1], labels[1:])].sum()

        # Partition function via the forward algorithm.
        alpha = unary[0]
        for t in range(1, T):
            # (L_prev, 1) + (L_prev, L_next) + (1, L_next) -> logsumexp over prev
            scores = (
                alpha.reshape(self.num_labels, 1)
                + self.transitions
                + unary[t].reshape(1, self.num_labels)
            )
            alpha = F.logsumexp(scores, axis=0)
        log_z = F.logsumexp(alpha, axis=0)
        return score - log_z

    def negative_log_likelihood(self, unary: Tensor, labels: np.ndarray) -> Tensor:
        return -self.log_likelihood(unary, labels)

    # -- decoding -----------------------------------------------------------------
    def viterbi(self, unary: np.ndarray) -> List[int]:
        """Most likely label sequence for ``unary`` scores ``(T, L)``."""
        unary = np.asarray(unary, dtype=np.float64)
        T, L = unary.shape
        transitions = self.transitions.data.astype(np.float64)
        delta = unary[0].copy()
        backpointers = np.zeros((T, L), dtype=np.int64)
        for t in range(1, T):
            scores = delta[:, None] + transitions + unary[t][None, :]
            backpointers[t] = scores.argmax(axis=0)
            delta = scores.max(axis=0)
        path = [int(delta.argmax())]
        for t in range(T - 1, 0, -1):
            path.append(int(backpointers[t, path[-1]]))
        path.reverse()
        return path

    def marginal_probabilities(self, unary: np.ndarray) -> np.ndarray:
        """Per-position label marginals via forward-backward (for analysis)."""
        unary = np.asarray(unary, dtype=np.float64)
        T, L = unary.shape
        transitions = self.transitions.data.astype(np.float64)

        def lse(x: np.ndarray, axis: int) -> np.ndarray:
            shift = x.max(axis=axis, keepdims=True)
            return (shift + np.log(np.exp(x - shift).sum(axis=axis, keepdims=True))).squeeze(axis)

        alpha = np.zeros((T, L))
        alpha[0] = unary[0]
        for t in range(1, T):
            alpha[t] = unary[t] + lse(alpha[t - 1][:, None] + transitions, axis=0)
        beta = np.zeros((T, L))
        for t in range(T - 2, -1, -1):
            beta[t] = lse(transitions + unary[t + 1][None, :] + beta[t + 1][None, :], axis=1)
        log_marginals = alpha + beta
        log_marginals -= lse(log_marginals, axis=1)[:, None]
        return np.exp(log_marginals)
