"""The Sherlock baseline [Hulsebos et al., KDD'19].

Single-column feature-based neural network: each feature set (characters,
word embeddings, paragraph vector) passes through its own "sub" network
producing a compact dense vector; those vectors plus the raw column
statistics feed a "primary" network of two fully-connected layers that
predicts the column type.  Sherlock sees one column at a time — no table
context — which is exactly the property the paper's comparison exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.tables import Table, TableDataset
from ..evaluation.metrics import PRF, multiclass_micro_f1, multilabel_micro_prf
from ..nn import Adam, Linear, Module, Tensor, concatenate
from ..nn import functional as F
from .features import ColumnFeaturizer, FeatureConfig


class _SubNetwork(Module):
    """Per-feature-set compression network (Linear + ReLU + Linear)."""

    def __init__(self, in_dim: int, hidden: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc1 = Linear(in_dim, hidden, rng)
        self.fc2 = Linear(hidden, out_dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())


class SherlockNetwork(Module):
    """Sub-networks per feature set + two-layer primary network."""

    def __init__(
        self,
        feature_config: FeatureConfig,
        num_types: int,
        rng: np.random.Generator,
        subnet_dim: int = 24,
        primary_hidden: int = 64,
    ) -> None:
        super().__init__()
        self.char_net = _SubNetwork(feature_config.char_dim, 48, subnet_dim, rng)
        self.word_net = _SubNetwork(feature_config.word_dim, 48, subnet_dim, rng)
        self.paragraph_net = _SubNetwork(feature_config.paragraph_dim, 32, subnet_dim, rng)
        primary_in = 3 * subnet_dim + feature_config.stats_dim
        self.primary1 = Linear(primary_in, primary_hidden, rng)
        self.primary2 = Linear(primary_hidden, num_types, rng)

    def forward(self, features: Dict[str, np.ndarray]) -> Tensor:
        char = self.char_net(Tensor(features["char"]))
        word = self.word_net(Tensor(features["word"]))
        paragraph = self.paragraph_net(Tensor(features["paragraph"]))
        stats = Tensor(features["stats"])
        combined = concatenate([char, word, paragraph, stats], axis=-1)
        return self.primary2(self.primary1(combined).relu())


@dataclass
class SherlockConfig:
    """Training hyper-parameters for the Sherlock baseline."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 1e-3
    multi_label: bool = False
    seed: int = 0


class SherlockModel:
    """Trainable Sherlock column-type predictor."""

    def __init__(
        self,
        dataset: TableDataset,
        config: SherlockConfig = SherlockConfig(),
        feature_config: FeatureConfig = FeatureConfig(),
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.featurizer = ColumnFeaturizer(feature_config)
        rng = np.random.default_rng(config.seed)
        self.network = SherlockNetwork(feature_config, dataset.num_types, rng)
        self._rng = rng

    # -- data preparation -------------------------------------------------------
    def _collect_columns(self, tables: Sequence[Table]):
        columns, labels = [], []
        for table in tables:
            for column in table.columns:
                if not column.type_labels:
                    continue
                columns.append(column.values)
                if self.config.multi_label:
                    row = np.zeros(self.dataset.num_types, dtype=np.float32)
                    for name in column.type_labels:
                        row[self.dataset.type_id(name)] = 1.0
                    labels.append(row)
                else:
                    labels.append(self.dataset.type_id(column.type_labels[0]))
        if self.config.multi_label:
            return columns, np.stack(labels)
        return columns, np.asarray(labels, dtype=np.int64)

    # -- training ------------------------------------------------------------------
    def fit(self, tables: Optional[Sequence[Table]] = None) -> List[float]:
        """Train on ``tables`` (defaults to the whole dataset); returns losses."""
        if tables is None:
            tables = self.dataset.tables
        columns, labels = self._collect_columns(tables)
        features = self.featurizer.featurize_many(columns)
        optimizer = Adam(self.network.parameters(), lr=self.config.learning_rate)
        n = len(columns)
        losses: List[float] = []
        self.network.train()
        for _ in range(self.config.epochs):
            order = self._rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, self.config.batch_size):
                idx = order[start:start + self.config.batch_size]
                batch_features = {k: v[idx] for k, v in features.items()}
                logits = self.network(batch_features)
                if self.config.multi_label:
                    loss = F.binary_cross_entropy_logits(logits, labels[idx])
                else:
                    loss = F.cross_entropy_logits(logits, labels[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self.network.eval()
        return losses

    # -- inference -----------------------------------------------------------------
    def predict_logits(self, columns: Sequence[Sequence[str]]) -> np.ndarray:
        features = self.featurizer.featurize_many(columns)
        self.network.eval()
        return self.network(features).data

    def predict(self, columns: Sequence[Sequence[str]]) -> np.ndarray:
        logits = self.predict_logits(columns)
        if self.config.multi_label:
            probs = 1.0 / (1.0 + np.exp(-logits))
            predictions = probs >= 0.5
            predictions[np.arange(len(probs)), probs.argmax(axis=-1)] = True
            return predictions
        return logits.argmax(axis=-1)

    def evaluate(self, tables: Sequence[Table]) -> PRF:
        columns, labels = self._collect_columns(tables)
        predictions = self.predict(columns)
        if self.config.multi_label:
            return multilabel_micro_prf(labels.astype(bool), predictions)
        return multiclass_micro_f1(labels, predictions)
