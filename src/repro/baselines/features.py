"""Column feature extraction for the Sherlock / Sato baselines.

Sherlock [Hulsebos et al., KDD'19] extracts several per-column feature sets:
character-level distributions, aggregated word embeddings, a paragraph
vector, and global column statistics.  We reproduce each set:

* character distribution — frequency of each character over all cells,
* word embeddings — mean/max over hashed token embeddings (deterministic
  random vectors per token, substituting for pre-trained GloVe vectors),
* paragraph vector — hashed character-trigram sketch of the whole column,
* column statistics — cell length moments, numeric fraction, uniqueness, etc.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..text.tokenizer import basic_tokenize

_CHARSET = "abcdefghijklmnopqrstuvwxyz0123456789.,:;/-_#@%$()[]'\" +"
_CHAR_INDEX = {ch: i for i, ch in enumerate(_CHARSET)}


def _stable_hash(text: str) -> int:
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def char_distribution(values: Sequence[str]) -> np.ndarray:
    """Normalized character frequencies over all cell text."""
    counts = np.zeros(len(_CHARSET) + 1, dtype=np.float64)  # +1 = other
    total = 0
    for value in values:
        for ch in value.lower():
            counts[_CHAR_INDEX.get(ch, len(_CHARSET))] += 1
            total += 1
    if total > 0:
        counts /= total
    return counts.astype(np.float32)


class HashedWordEmbeddings:
    """Deterministic per-token random vectors (GloVe substitute).

    Every distinct token maps to a fixed pseudo-random unit vector derived
    from its hash, so identical tokens share identical vectors — the property
    the downstream network actually exploits.
    """

    def __init__(self, dim: int = 32) -> None:
        self.dim = dim
        self._cache: dict[str, np.ndarray] = {}

    def vector(self, token: str) -> np.ndarray:
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        rng = np.random.default_rng(_stable_hash(token))
        vec = rng.standard_normal(self.dim).astype(np.float32)
        vec /= np.linalg.norm(vec) + 1e-8
        self._cache[token] = vec
        return vec

    def column_feature(self, values: Sequence[str]) -> np.ndarray:
        """Mean and max pooling of token vectors over the column."""
        vectors = [
            self.vector(token)
            for value in values
            for token in basic_tokenize(value)
        ]
        if not vectors:
            return np.zeros(2 * self.dim, dtype=np.float32)
        matrix = np.stack(vectors)
        return np.concatenate([matrix.mean(axis=0), matrix.max(axis=0)]).astype(np.float32)


def paragraph_vector(values: Sequence[str], dim: int = 24) -> np.ndarray:
    """Hashed character-trigram sketch of the concatenated column text."""
    sketch = np.zeros(dim, dtype=np.float64)
    text = " ".join(v.lower() for v in values)
    for i in range(len(text) - 2):
        trigram = text[i:i + 3]
        h = _stable_hash(trigram)
        sketch[h % dim] += 1.0 if (h >> 8) % 2 == 0 else -1.0
    norm = np.linalg.norm(sketch)
    if norm > 0:
        sketch /= norm
    return sketch.astype(np.float32)


def _is_float(value: str) -> bool:
    try:
        float(value.replace(",", ""))
        return True
    except ValueError:
        return False


def column_statistics(values: Sequence[str]) -> np.ndarray:
    """Global statistics of the column (Sherlock's fourth feature set)."""
    if not values:
        return np.zeros(12, dtype=np.float32)
    lengths = np.array([len(v) for v in values], dtype=np.float64)
    numeric_mask = np.array([_is_float(v) for v in values])
    numeric_values = [
        float(v.replace(",", "")) for v, m in zip(values, numeric_mask) if m
    ]
    if numeric_values:
        arr = np.array(numeric_values)
        log_mean = float(np.log1p(np.abs(arr).mean()))
        log_std = float(np.log1p(arr.std()))
        frac_int = float(np.mean([v == int(v) for v in arr]))
    else:
        log_mean, log_std, frac_int = 0.0, 0.0, 0.0
    tokens_per_cell = np.array(
        [len(basic_tokenize(v)) for v in values], dtype=np.float64
    )
    stats = np.array(
        [
            lengths.mean(),
            lengths.std(),
            lengths.min(),
            lengths.max(),
            float(numeric_mask.mean()),
            log_mean,
            log_std,
            frac_int,
            len(set(values)) / len(values),
            tokens_per_cell.mean(),
            float(np.mean([v.isupper() for v in values if v])),
            float(np.mean([" " in v for v in values])),
        ],
        dtype=np.float64,
    )
    return stats.astype(np.float32)


@dataclass(frozen=True)
class FeatureConfig:
    """Sizes of the Sherlock feature sets."""

    word_embedding_dim: int = 32
    paragraph_dim: int = 24

    @property
    def char_dim(self) -> int:
        return len(_CHARSET) + 1

    @property
    def word_dim(self) -> int:
        return 2 * self.word_embedding_dim

    @property
    def stats_dim(self) -> int:
        return 12


class ColumnFeaturizer:
    """Extracts the four Sherlock feature sets for a column."""

    def __init__(self, config: FeatureConfig = FeatureConfig()) -> None:
        self.config = config
        self._word_embeddings = HashedWordEmbeddings(config.word_embedding_dim)

    def featurize(self, values: Sequence[str]) -> dict[str, np.ndarray]:
        return {
            "char": char_distribution(values),
            "word": self._word_embeddings.column_feature(values),
            "paragraph": paragraph_vector(values, self.config.paragraph_dim),
            "stats": column_statistics(values),
        }

    def featurize_many(self, columns: Sequence[Sequence[str]]) -> dict[str, np.ndarray]:
        features = [self.featurize(col) for col in columns]
        return {
            key: np.stack([f[key] for f in features])
            for key in ("char", "word", "paragraph", "stats")
        }
