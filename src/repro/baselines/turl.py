"""The TURL baseline [Deng et al., VLDB'20].

Architecturally, the defining difference between TURL and DODUO (Section 5.4
of the paper) is TURL's *visibility matrix*: self-attention edges that cross
column boundaries are removed, so a column's ``[CLS]`` cannot attend to cell
values of other columns.  We reproduce TURL as the same fine-tuned
Transformer with the visibility matrix switched on
(:func:`repro.core.serialization.column_visibility`), pre-trained on the same
corpus — exactly the "variant of TURL pre-trained on table values" the paper
compares against for fairness.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..datasets.tables import TableDataset
from ..nn import TransformerConfig
from ..text import WordPieceTokenizer
from ..core.trainer import DoduoConfig, DoduoTrainer


def make_turl_trainer(
    dataset: TableDataset,
    tokenizer: WordPieceTokenizer,
    encoder_config: TransformerConfig,
    base_config: Optional[DoduoConfig] = None,
    pretrained_encoder_state: Optional[Dict[str, np.ndarray]] = None,
) -> DoduoTrainer:
    """Build a trainer configured as the TURL baseline.

    Identical to DODUO except ``use_visibility_matrix=True``; trained on the
    same tasks so the comparison isolates the attention-structure difference,
    as in Table 3.
    """
    if base_config is None:
        base_config = DoduoConfig()
    turl_config = DoduoConfig(
        tasks=base_config.tasks,
        multi_label=base_config.multi_label,
        single_column=False,
        use_visibility_matrix=True,
        max_tokens_per_column=base_config.max_tokens_per_column,
        include_headers=base_config.include_headers,
        epochs=base_config.epochs,
        batch_size=base_config.batch_size,
        learning_rate=base_config.learning_rate,
        seed=base_config.seed,
        keep_best_checkpoint=base_config.keep_best_checkpoint,
    )
    return DoduoTrainer(
        dataset,
        tokenizer,
        encoder_config,
        turl_config,
        pretrained_encoder_state=pretrained_encoder_state,
    )
