"""Baselines: Sherlock, Sato (LDA + CRF), TURL (visibility matrix)."""

from .crf import LinearChainCRF
from .features import (
    ColumnFeaturizer,
    FeatureConfig,
    HashedWordEmbeddings,
    char_distribution,
    column_statistics,
    paragraph_vector,
)
from .lda import LdaModel
from .sato import SatoConfig, SatoModel, SatoNetwork
from .sherlock import SherlockConfig, SherlockModel, SherlockNetwork
from .turl import make_turl_trainer

__all__ = [
    "ColumnFeaturizer",
    "FeatureConfig",
    "HashedWordEmbeddings",
    "LdaModel",
    "LinearChainCRF",
    "SatoConfig",
    "SatoModel",
    "SatoNetwork",
    "SherlockConfig",
    "SherlockModel",
    "SherlockNetwork",
    "char_distribution",
    "column_statistics",
    "make_turl_trainer",
    "paragraph_vector",
]
