"""Masked language-model pre-training.

The paper fine-tunes BERT, whose value comes from pre-training on large text
corpora ("BERT might know that George Miller is a director/producer since the
name frequently appears together with 'directed/produced by'").  Since no
pre-trained checkpoint is available offline, this module pre-trains our
mini-BERT on a corpus of verbalized KB facts (see
:meth:`repro.datasets.kb.KnowledgeBase.verbalize`), reproducing the same
mechanism: the encoder enters fine-tuning already carrying factual knowledge
about the entities that appear in tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.serialization import pad_token_lists
from ..encoding.planner import BatchPlanner, PaddingReport
from ..nn import Adam, Linear, Module, Tensor, TransformerConfig, TransformerEncoder
from ..nn import functional as F
from ..text import WordPieceTokenizer

IGNORE_INDEX = -100


class MaskedLanguageModel(Module):
    """Encoder plus a vocabulary-projection head for masked-token prediction."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = TransformerEncoder(config, rng)
        self.head = Linear(config.hidden_dim, config.vocab_size, rng)

    def forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        hidden = self.encoder(token_ids, attention_mask=attention_mask)
        return self.head(hidden)


def mask_tokens(
    token_ids: np.ndarray,
    tokenizer: WordPieceTokenizer,
    rng: np.random.Generator,
    mask_prob: float = 0.15,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply BERT's 80/10/10 masking recipe.

    Returns ``(masked_ids, labels)`` where ``labels`` is ``IGNORE_INDEX``
    except at masked positions.
    """
    token_ids = np.asarray(token_ids)
    vocab = tokenizer.vocab
    labels = np.full(token_ids.shape, IGNORE_INDEX, dtype=np.int64)
    masked = token_ids.copy()

    special = {vocab.pad_id, vocab.cls_id, vocab.sep_id}
    candidates = ~np.isin(token_ids, list(special))
    selection = (rng.random(token_ids.shape) < mask_prob) & candidates
    if not selection.any():
        # Force at least one masked position so every batch trains.
        eligible = np.argwhere(candidates)
        if len(eligible):
            pick = eligible[rng.integers(len(eligible))]
            selection[tuple(pick)] = True

    labels[selection] = token_ids[selection]
    roll = rng.random(token_ids.shape)
    replace_mask = selection & (roll < 0.8)
    replace_random = selection & (roll >= 0.8) & (roll < 0.9)
    masked[replace_mask] = vocab.mask_id
    if replace_random.any():
        masked[replace_random] = rng.integers(
            0, tokenizer.vocab_size, size=int(replace_random.sum())
        )
    return masked, labels


def pack_sentences(
    sentences: Sequence[str],
    tokenizer: WordPieceTokenizer,
    max_len: int,
) -> List[List[int]]:
    """Pack sentences into ``[CLS] s1 [SEP] s2 [SEP] ...`` examples.

    BERT packs its pre-training stream to the full sequence length so that
    *every* position embedding gets trained; we reproduce that here (table
    serializations at fine-tuning time are much longer than one sentence).
    """
    vocab = tokenizer.vocab
    examples: List[List[int]] = []
    current: List[int] = [vocab.cls_id]
    for sentence in sentences:
        ids = tokenizer.encode(sentence)[: max_len - 2] + [vocab.sep_id]
        if len(current) + len(ids) > max_len and len(current) > 1:
            examples.append(current)
            current = [vocab.cls_id]
        current.extend(ids)
    if len(current) > 1:
        examples.append(current)
    return examples


@dataclass
class PretrainResult:
    """Output of :func:`pretrain_mlm`: the model, its loss trajectory, and
    the padding accounting of the run's forward batches."""

    model: MaskedLanguageModel
    losses: List[float]
    padding: PaddingReport = field(default_factory=PaddingReport)

    @property
    def encoder(self) -> TransformerEncoder:
        return self.model.encoder

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def pretrain_mlm(
    corpus: Sequence[str],
    tokenizer: WordPieceTokenizer,
    config: TransformerConfig,
    epochs: int = 2,
    batch_size: int = 16,
    lr: float = 1e-3,
    max_len: int = 64,
    seed: int = 0,
    exact_batching: bool = False,
) -> PretrainResult:
    """Pre-train a masked LM on ``corpus`` and return it.

    Sentences are packed to ``max_len`` (see :func:`pack_sentences`).  The
    loss trajectory is recorded per epoch so tests can assert that
    pre-training actually reduces the MLM loss.

    Padding follows the shared implementation in
    :func:`repro.core.serialization.pad_token_lists`.  ``exact_batching``
    composes each epoch's batches on exact length boundaries via
    :class:`~repro.encoding.BatchPlanner` — zero padded slots per batch, at
    the cost of a fixed (non-shuffled) batch composition; the default keeps
    the historical shuffled batches so existing pre-training runs stay
    bit-reproducible.  Either way ``PretrainResult.padding`` reports the
    run's real vs allocated token slots.
    """
    rng = np.random.default_rng(seed)
    model = MaskedLanguageModel(config, rng)
    optimizer = Adam(model.parameters(), lr=lr)
    examples = pack_sentences(list(corpus), tokenizer, max_len)

    losses: List[float] = []
    padding = PaddingReport()
    for _ in range(epochs):
        if exact_batching:
            # Exact buckets: batches never mix lengths, so no slot is
            # wasted.  The permutation is re-drawn per epoch to keep the
            # masking stream and bucket-internal order varied.
            order = rng.permutation(len(examples))
            planner = BatchPlanner(batch_size=batch_size, ordered=True)
            plan = planner.plan([(len(examples[i]),) for i in order])
            batches_indices = [[order[k] for k in bucket] for bucket in plan]
        else:
            order = rng.permutation(len(examples))
            batches_indices = [
                list(order[start:start + batch_size])
                for start in range(0, len(order), batch_size)
            ]
        epoch_loss, batches = 0.0, 0
        for indices in batches_indices:
            chunk = [examples[i] for i in indices]
            token_ids, attention = pad_token_lists(chunk, tokenizer.vocab.pad_id)
            padding = padding + PaddingReport(
                sequences=len(chunk),
                batches=1,
                real_tokens=sum(len(ids) for ids in chunk),
                padded_tokens=int(token_ids.size),
            )
            masked, labels = mask_tokens(token_ids, tokenizer, rng)
            logits = model(masked, attention_mask=attention)
            loss = F.cross_entropy_logits(logits, labels, ignore_index=IGNORE_INDEX)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    model.eval()
    return PretrainResult(model=model, losses=losses, padding=padding)


def sentence_pseudo_perplexity(
    model: MaskedLanguageModel,
    tokenizer: WordPieceTokenizer,
    sentence: str,
    max_len: int = 32,
) -> float:
    """Pseudo-perplexity of a sentence under the masked LM (Equation 3).

    Each token is masked in turn and scored from its bidirectional context,
    exactly the protocol of the paper's LM-probing analysis (Appendix A.5).
    """
    vocab = tokenizer.vocab
    ids = [vocab.cls_id] + tokenizer.encode(sentence)[: max_len - 2] + [vocab.sep_id]
    content_positions = [
        i for i, t in enumerate(ids) if t not in (vocab.cls_id, vocab.sep_id, vocab.pad_id)
    ]
    if not content_positions:
        return float("inf")

    # Build one batch with each row masking a different position.
    batch = np.tile(np.asarray(ids, dtype=np.int64), (len(content_positions), 1))
    targets = []
    for row, pos in enumerate(content_positions):
        targets.append(batch[row, pos])
        batch[row, pos] = vocab.mask_id
    attention = np.ones(batch.shape, dtype=bool)

    was_training = model.training
    model.eval()
    logits = model(batch, attention_mask=attention).data
    if was_training:
        model.train()

    log_likelihood = 0.0
    for row, pos in enumerate(content_positions):
        row_logits = logits[row, pos].astype(np.float64)
        row_logits -= row_logits.max()
        log_probs = row_logits - np.log(np.exp(row_logits).sum())
        log_likelihood += log_probs[targets[row]]
    return float(np.exp(-log_likelihood / len(content_positions)))
