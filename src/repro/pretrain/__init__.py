"""Pre-training substrate: masked-LM training on the verbalized KB corpus."""

from .mlm import (
    IGNORE_INDEX,
    MaskedLanguageModel,
    PretrainResult,
    mask_tokens,
    pack_sentences,
    pretrain_mlm,
    sentence_pseudo_perplexity,
)

__all__ = [
    "IGNORE_INDEX",
    "MaskedLanguageModel",
    "PretrainResult",
    "mask_tokens",
    "pack_sentences",
    "pretrain_mlm",
    "sentence_pseudo_perplexity",
]
