"""``repro check`` — the AST-based contract checker.

Statically enforces the four invariants the serving stack defends
(batched==sequential byte-identity, fingerprint folding, raw-counter
stats merging, non-blocking asyncio paths) plus import hygiene.  See
``docs/checks.md`` for the rule catalog and the suppression syntax.
"""

from .model import Finding, Project, SourceFile, Suppression
from .registry import Rule, all_rules, get_rule, rule
from .runner import CheckResult, collect_project, main, run_check

__all__ = [
    "CheckResult",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "Suppression",
    "all_rules",
    "collect_project",
    "get_rule",
    "main",
    "rule",
    "run_check",
]
