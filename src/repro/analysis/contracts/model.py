"""Findings, suppressions, and parsed-source containers for ``repro check``.

The checker's unit of work is a :class:`Project` — a set of
:class:`SourceFile` objects, each holding the raw text, the parsed
``ast`` tree, and the inline suppressions found in that file.  Rules
receive the whole project (several contracts are cross-file: the
stats-merge rule relates dataclasses in ``engine.py`` to the merge
helpers in ``pool.py``) and return :class:`Finding` objects.

Suppression syntax::

    some_code()  # repro: allow[<rule-id>] -- reason the contract is safe here

The reason is **mandatory**: a suppression without one does not
suppress anything and is itself reported as a ``suppression-syntax``
finding.  A suppression on a bare comment line applies to the next
source line, so block-style suppressions read naturally::

    # repro: allow[async-blocking] -- admin plane, executor-wrapped below
    data = blocking_call()
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Finding",
    "Project",
    "SourceFile",
    "Suppression",
    "SUPPRESSION_RULE_ID",
]

#: Rule id under which malformed suppressions are reported.
SUPPRESSION_RULE_ID = "suppression-syntax"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_-]+)\]\s*(?:--\s*(.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation, pointing at ``path:line``."""

    rule_id: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.severity}: [{self.rule_id}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[<rule-id>] -- reason`` marker.

    ``lines`` is the set of source lines the marker covers: the marker's
    own line, plus the following line when the marker sits on a bare
    comment line.
    """

    rule_id: str
    reason: str
    line: int
    lines: Tuple[int, ...]

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip())


def _parse_suppressions(text: str) -> List[Suppression]:
    out: List[Suppression] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            continue
        rule_id = match.group(1)
        reason = (match.group(2) or "").strip()
        covered = (lineno,)
        if raw.lstrip().startswith("#"):
            # Bare comment line: the marker covers the next source line.
            covered = (lineno, lineno + 1)
        out.append(
            Suppression(rule_id=rule_id, reason=reason, line=lineno, lines=covered)
        )
    return out


@dataclass
class SourceFile:
    """One parsed python source file."""

    path: Path
    rel: str
    text: str
    tree: Optional[ast.AST]
    parse_error: Optional[str] = None
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, rel: Optional[str] = None) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        return cls.from_text(text, path=path, rel=rel)

    @classmethod
    def from_text(
        cls,
        text: str,
        path: Optional[Path] = None,
        rel: Optional[str] = None,
    ) -> "SourceFile":
        path = path or Path("<memory>")
        tree: Optional[ast.AST] = None
        error: Optional[str] = None
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:  # surfaced as a finding by the runner
            error = f"{exc.msg} (line {exc.lineno})"
        return cls(
            path=path,
            rel=rel if rel is not None else str(path),
            text=text,
            tree=tree,
            parse_error=error,
            suppressions=_parse_suppressions(text),
        )

    @property
    def basename(self) -> str:
        return self.path.name

    def finding(
        self, rule_id: str, node: ast.AST, message: str, severity: str = "error"
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule_id=rule_id,
            severity=severity,
            path=self.rel,
            line=line,
            message=message,
        )

    def classes(self) -> Iterator[ast.ClassDef]:
        if self.tree is None:
            return iter(())
        return (n for n in ast.walk(self.tree) if isinstance(n, ast.ClassDef))

    def functions(self) -> Iterator[ast.FunctionDef]:
        if self.tree is None:
            return iter(())
        return (n for n in ast.walk(self.tree) if isinstance(n, ast.FunctionDef))


class Project:
    """The file set one ``repro check`` invocation analyzes."""

    def __init__(self, files: Iterable[SourceFile]):
        self.files: List[SourceFile] = list(files)

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def find_classes(self, name: str) -> List[Tuple[SourceFile, ast.ClassDef]]:
        """Every class definition named ``name`` across the project."""
        out = []
        for src in self.files:
            for node in src.classes():
                if node.name == name:
                    out.append((src, node))
        return out

    def find_functions(self, name: str) -> List[Tuple[SourceFile, ast.FunctionDef]]:
        """Every (possibly nested) function named ``name``."""
        out = []
        for src in self.files:
            for node in src.functions():
                if node.name == name:
                    out.append((src, node))
        return out
