"""Collection, suppression filtering, and output for ``repro check``.

:func:`run_check` is the library entry point (used by the pytest gate in
``tests/test_contracts_clean.py``); :func:`main` is the CLI behind both
``repro check`` and ``python -m repro.analysis.contracts``.

Exit codes: 0 — no unsuppressed findings; 1 — findings (or malformed
suppressions); 2 — usage error (no python files under the given paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .model import SUPPRESSION_RULE_ID, Finding, Project, SourceFile
from .registry import Rule, all_rules, get_rule

__all__ = ["CheckResult", "collect_project", "main", "run_check"]

_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist"}


def _iter_py_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def collect_project(paths: Sequence[Path], base: Optional[Path] = None) -> Project:
    """Load every ``*.py`` under ``paths`` into a :class:`Project`.

    ``rel`` display paths are made relative to ``base`` (default: the
    current working directory) when possible, absolute otherwise.
    """
    base = base or Path.cwd()
    files: List[SourceFile] = []
    seen = set()
    for path in paths:
        for file_path in _iter_py_files(Path(path)):
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                rel = str(resolved.relative_to(base.resolve()))
            except ValueError:
                rel = str(resolved)
            files.append(SourceFile.load(file_path, rel=rel))
    return Project(files)


class CheckResult:
    """Findings of one run, split by suppression state."""

    def __init__(
        self,
        findings: List[Finding],
        suppressed: List[Finding],
        rules: List[Rule],
    ):
        self.findings = findings
        self.suppressed = suppressed
        self.rules = rules

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "rules": [r.rule_id for r in self.rules],
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


def _suppression_findings(project: Project) -> List[Finding]:
    """Malformed suppressions are findings themselves.

    A reason is mandatory (``# repro: allow[<rule-id>] -- why``): an
    allow-marker without one suppresses nothing and is flagged, so a
    suppression can never silently outlive its justification.  Unknown
    rule ids are flagged too — they are typos that would otherwise sit
    inert in the tree.
    """
    out: List[Finding] = []
    known = {r.rule_id for r in all_rules()}
    known.add(SUPPRESSION_RULE_ID)
    for src in project:
        for sup in src.suppressions:
            if not sup.valid:
                out.append(
                    Finding(
                        rule_id=SUPPRESSION_RULE_ID,
                        severity="error",
                        path=src.rel,
                        line=sup.line,
                        message=(
                            f"suppression for [{sup.rule_id}] has no reason; "
                            "write '# repro: allow[{}] -- <reason>'".format(
                                sup.rule_id
                            )
                        ),
                    )
                )
            elif sup.rule_id not in known:
                out.append(
                    Finding(
                        rule_id=SUPPRESSION_RULE_ID,
                        severity="error",
                        path=src.rel,
                        line=sup.line,
                        message=f"suppression names unknown rule [{sup.rule_id}]",
                    )
                )
    return out


def _parse_error_findings(project: Project) -> List[Finding]:
    return [
        Finding(
            rule_id="parse-error",
            severity="error",
            path=src.rel,
            line=0,
            message=f"could not parse: {src.parse_error}",
        )
        for src in project
        if src.parse_error is not None
    ]


def _split_suppressed(
    project: Project, findings: List[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    by_rel = {src.rel: src for src in project}
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        src = by_rel.get(finding.path)
        covered = False
        if src is not None and finding.rule_id != SUPPRESSION_RULE_ID:
            for sup in src.suppressions:
                if (
                    sup.valid
                    and sup.rule_id == finding.rule_id
                    and finding.line in sup.lines
                ):
                    covered = True
                    break
        (suppressed if covered else active).append(finding)
    return active, suppressed


def run_check(
    project: Project, rule_ids: Optional[Sequence[str]] = None
) -> CheckResult:
    """Run the (selected) rules over ``project``."""
    from . import rules as _rules  # repro: allow[unused-import] -- side-effect import: registers the rules

    if rule_ids:
        selected = []
        for rule_id in rule_ids:
            found = get_rule(rule_id)
            if found is None:
                raise ValueError(f"unknown rule: {rule_id}")
            selected.append(found)
    else:
        selected = all_rules()

    findings: List[Finding] = []
    findings.extend(_parse_error_findings(project))
    findings.extend(_suppression_findings(project))
    for rule in selected:
        findings.extend(rule.run(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    active, suppressed = _split_suppressed(project, findings)
    return CheckResult(active, suppressed, selected)


def _render_text(result: CheckResult, stream) -> None:
    for finding in result.findings:
        print(finding.render(), file=stream)
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed"
    )
    print(summary, file=stream)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Statically enforce the project's serving contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    from . import rules as _rules  # repro: allow[unused-import] -- side-effect import: registers the rules

    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.summary}", file=stream)
        return 0
    if args.paths:
        roots = [Path(p) for p in args.paths]
    else:
        roots = [Path("src")] if Path("src").is_dir() else [Path(".")]
    project = collect_project(roots)
    if not project.files:
        print("error: no python files found under the given paths", file=sys.stderr)
        return 2
    try:
        result = run_check(project, rule_ids=args.rules)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        json.dump(result.to_dict(), stream, indent=2)
        print(file=stream)
    else:
        _render_text(result, stream)
    return result.exit_code
