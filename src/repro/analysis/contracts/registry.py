"""Rule registry for ``repro check``.

A rule is a function ``(project: Project) -> Iterable[Finding]``
registered under a stable kebab-case id.  Registration order is
presentation order, so the catalog in ``docs/checks.md`` matches the
``repro check --list`` output by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .model import Finding, Project

__all__ = ["Rule", "rule", "all_rules", "get_rule"]

RuleFn = Callable[[Project], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    rule_id: str
    summary: str
    fn: RuleFn

    def run(self, project: Project) -> List[Finding]:
        return list(self.fn(project))


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the implementation of ``rule_id``."""

    def decorator(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id: {rule_id}")
        _REGISTRY[rule_id] = Rule(rule_id=rule_id, summary=summary, fn=fn)
        return fn

    return decorator


def all_rules() -> List[Rule]:
    return list(_REGISTRY.values())


def get_rule(rule_id: str) -> Optional[Rule]:
    return _REGISTRY.get(rule_id)
