"""``stats-merge`` — merged ratios are recomputed, never summed.

The pool merges per-worker stats dicts with :func:`merge_counters`
(generic numeric sum) and then *recomputes* every derived ratio from
the merged raw counters with ``_fix_ratios`` — a mean (or sum) of
per-worker ratios would weight an idle worker equally with a busy one.
This invariant shipped broken twice (``column_hit_rate`` in PR 7,
``probe_prune_rate`` in PR 8: a new ratio landed on ``EngineStats``
without a ``_fix_ratios`` recompute), so the rule pins it four ways:

1. every ``*_rate``/``*_waste`` property on a ``*Stats`` dataclass must
   be recomputed by ``_fix_ratios`` (its name appears as a key there);
2. every raw counter the property reads must be read by ``_fix_ratios``
   too — deleting one merge input breaks the build, not production;
3. ratio names must never be operands of ``+``/``+=``/``sum()`` inside
   any ``*merge*`` function;
4. the gateway snapshot stays drop-proof: every ``EngineStats`` ratio
   is serialized by ``GatewayStats.to_dict``, and every ``ServiceStats``
   counter has a matching ``GatewayStats`` total field.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from ..model import Finding, Project, SourceFile
from ..registry import rule
from ._util import is_property, self_attr_loads, string_constants

RULE_ID = "stats-merge"

_RATIO_RE = re.compile(r"^\w+(_rate|_waste)$")
_COUNTER_TYPES = ("int", "float")


def _stats_classes(
    project: Project,
) -> Iterator[Tuple[SourceFile, ast.ClassDef]]:
    for src in project:
        for cls in src.classes():
            if cls.name.endswith("Stats"):
                yield src, cls


def _counter_fields(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Numeric dataclass fields declared directly on ``cls``."""
    out: Dict[str, ast.AnnAssign] = {}
    for node in cls.body:
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and not node.target.id.startswith("_")
            and isinstance(node.annotation, ast.Name)
            and node.annotation.id in _COUNTER_TYPES
        ):
            out[node.target.id] = node
    return out


def _ratio_properties(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    out: Dict[str, ast.FunctionDef] = {}
    for node in cls.body:
        if (
            isinstance(node, ast.FunctionDef)
            and is_property(node)
            and _RATIO_RE.match(node.name)
        ):
            out[node.name] = node
    return out


def _merge_functions(project: Project) -> List[Tuple[SourceFile, ast.FunctionDef]]:
    out = []
    for src in project:
        for fn in src.functions():
            if "merge" in fn.name:
                out.append((src, fn))
    return out


def _ratio_tokens(node: ast.AST) -> Set[str]:
    """Ratio-shaped identifiers/keys appearing anywhere under ``node``."""
    found: Set[str] = set()
    for child in ast.walk(node):
        name = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            name = child.value
        if name is not None and _RATIO_RE.match(name):
            found.add(name)
    return found


def _summed_ratios(fn: ast.FunctionDef) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(fn):
        operands: List[ast.AST] = []
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            operands = [node.left, node.right]
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            operands = [node.target, node.value]
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
        ):
            operands = list(node.args)
        names: Set[str] = set()
        for operand in operands:
            names.update(_ratio_tokens(operand))
        for name in sorted(names):
            yield node, name


@rule(
    RULE_ID,
    "derived stats ratios are recomputed from merged raw counters, never summed",
)
def check(project: Project) -> Iterator[Finding]:
    stats = list(_stats_classes(project))
    merges = _merge_functions(project)
    fixers = project.find_functions("_fix_ratios")
    fixer_strings: Set[str] = set()
    for _, fn in fixers:
        fixer_strings.update(string_constants(fn))

    # (1)+(2): every ratio property recomputed, from all of its inputs.
    for src, cls in stats:
        counters = _counter_fields(cls)
        for name, prop in _ratio_properties(cls).items():
            if not fixers:
                if merges:
                    yield src.finding(
                        RULE_ID,
                        prop,
                        f"{cls.name}.{name} is a derived ratio and stats are "
                        "merged, but no _fix_ratios recompute step exists",
                    )
                continue
            if name not in fixer_strings:
                yield src.finding(
                    RULE_ID,
                    prop,
                    f"derived ratio {cls.name}.{name} is not recomputed by "
                    "_fix_ratios — merged snapshots would carry a single "
                    "worker's ratio",
                )
                continue
            inputs = sorted(self_attr_loads(prop) & set(counters))
            for raw in inputs:
                if raw not in fixer_strings:
                    yield src.finding(
                        RULE_ID,
                        prop,
                        f"_fix_ratios recomputes {cls.name}.{name} without "
                        f"reading raw counter '{raw}' — the merged ratio "
                        "would be computed from a partial input set",
                    )

    # (3): ratios never summed inside merge code.
    for src, fn in merges:
        for node, name in _summed_ratios(fn):
            yield src.finding(
                RULE_ID,
                node,
                f"derived ratio '{name}' appears as a sum operand in "
                f"{fn.name}() — ratios must be recomputed from merged raw "
                "counters, never added",
            )

    # (4): the gateway snapshot is drop-proof.
    gateways = project.find_classes("GatewayStats")
    engine_ratios: Set[str] = set()
    for _, cls in project.find_classes("EngineStats"):
        engine_ratios.update(_ratio_properties(cls))
    for src, cls in gateways:
        to_dict = next(
            (
                n
                for n in cls.body
                if isinstance(n, ast.FunctionDef) and n.name == "to_dict"
            ),
            None,
        )
        if to_dict is None:
            if engine_ratios:
                yield src.finding(
                    RULE_ID, cls, "GatewayStats has no to_dict serializer"
                )
            continue
        serialized = set(string_constants(to_dict)) | {
            n.attr for n in ast.walk(to_dict) if isinstance(n, ast.Attribute)
        }
        for name in sorted(engine_ratios - serialized):
            yield src.finding(
                RULE_ID,
                to_dict,
                f"EngineStats ratio '{name}' is missing from "
                "GatewayStats.to_dict — the admin stats payload would "
                "silently drop it",
            )
        gateway_fields = _counter_fields(cls)
        for _, svc in project.find_classes("ServiceStats"):
            for field_name, node in _counter_fields(svc).items():
                if field_name not in gateway_fields:
                    yield src.finding(
                        RULE_ID,
                        cls,
                        f"ServiceStats counter '{field_name}' has no matching "
                        "GatewayStats total field — gateway totals would "
                        "silently drop it",
                    )
