"""``async-blocking`` — no blocking calls inside ``async def`` bodies.

The serving path is a single asyncio event loop per worker: one
``time.sleep``, synchronous file/socket open, subprocess spawn, or
direct persistent-cache write inside a coroutine stalls *every*
connection on that worker.  Blocking work belongs in an executor — and
the executor pattern (a nested synchronous ``def`` handed to
``loop.run_in_executor`` / ``asyncio.to_thread``) is recognized
automatically, because a nested sync function body is no longer
lexically "inside" the coroutine.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..model import Finding, Project, SourceFile
from ..registry import rule
from ._util import dotted_name

RULE_ID = "async-blocking"

#: Exact dotted calls that block the loop.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() blocks the event loop; use asyncio.sleep()",
    "socket.socket": "synchronous socket in a coroutine",
    "socket.create_connection": "synchronous socket in a coroutine",
    "os.system": "blocking shell-out in a coroutine",
    "os.popen": "blocking shell-out in a coroutine",
    "urllib.request.urlopen": "synchronous HTTP in a coroutine",
}

#: Dotted-name prefixes that block as a family.
_BLOCKING_PREFIXES = {
    "subprocess.": "subprocess spawn blocks the event loop",
    "requests.": "synchronous HTTP in a coroutine",
}

#: Method names that write the persistent cache tiers (DiskCache /
#: FabricCache); receivers are matched lexically on cache-ish names.
_CACHE_WRITE_METHODS = {"put", "compact"}
_CACHE_RECEIVER_HINTS = ("cache", "disk", "fabric")


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "synchronous open() in a coroutine; use an executor"
    name = dotted_name(func)
    if name is not None:
        if name in _BLOCKING_CALLS:
            return _BLOCKING_CALLS[name]
        for prefix, reason in _BLOCKING_PREFIXES.items():
            if name.startswith(prefix):
                return reason
    if isinstance(func, ast.Attribute) and func.attr in _CACHE_WRITE_METHODS:
        receiver = ast.unparse(func.value).lower()
        if any(hint in receiver for hint in _CACHE_RECEIVER_HINTS):
            return (
                f"direct persistent-cache write .{func.attr}() on "
                f"'{ast.unparse(func.value)}' inside a coroutine; route "
                "through an executor"
            )
    return None


def _scan(
    src: SourceFile,
) -> Iterator[Tuple[ast.Call, str]]:
    """Yield blocking calls lexically inside coroutine bodies."""

    def visit(node: ast.AST, in_async: bool) -> Iterator[Tuple[ast.Call, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                yield from visit(child, True)
            elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                # A nested sync function runs wherever it is *called*
                # (typically an executor) — its body is not the loop.
                yield from visit(child, False)
            else:
                if in_async and isinstance(child, ast.Call):
                    reason = _blocking_reason(child)
                    if reason is not None:
                        yield child, reason
                yield from visit(child, in_async)

    if src.tree is not None:
        yield from visit(src.tree, False)


@rule(RULE_ID, "no blocking calls lexically inside async def bodies")
def check(project: Project) -> Iterator[Finding]:
    for src in project:
        for call, reason in _scan(src):
            yield src.finding(RULE_ID, call, reason)
