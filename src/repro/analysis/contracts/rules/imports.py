"""``unused-import`` — import hygiene and dead re-export shims.

Flags imported names no code path references.  "Referenced" includes
the places a naive scan misses: string annotations (``"Future[T]"``
under ``from __future__ import annotations``), ``TYPE_CHECKING``-only
names used in quoted hints, ``typing.cast("T", ...)`` targets, and
``__all__`` membership.  ``__init__.py`` files are exempt wholesale —
re-exporting is their job.

The companion dead-shim check flags modules that consist *only* of a
docstring plus imports/``__all__`` (a pure re-export surface) when no
other file in the checked tree imports them — a shim nothing reaches
is dead API surface.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from ..model import Finding, Project
from ..registry import rule
from ._util import dotted_name

RULE_ID = "unused-import"


def _bindings(tree: ast.AST) -> List[Tuple[str, ast.stmt, str]]:
    """(bound name, import statement, display) for every import."""
    out: List[Tuple[str, ast.stmt, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                out.append((name, node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                display = f"{'.' * node.level}{node.module or ''}.{alias.name}"
                out.append((name, node, display))
    return out


def _annotation_strings(tree: ast.AST) -> List[str]:
    """String literals appearing in annotation / cast positions."""
    texts: List[str] = []

    def collect(node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Constant) and isinstance(child.value, str):
                texts.append(child.value)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                args.args
                + args.posonlyargs
                + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if arg.annotation is not None:
                    collect(arg.annotation)
            if node.returns is not None:
                collect(node.returns)
        elif isinstance(node, ast.AnnAssign):
            collect(node.annotation)
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("cast", "typing.cast", "TypeVar", "typing.TypeVar"):
                for arg in node.args:
                    collect(arg)
    return texts


def _used_names(tree: ast.AST) -> Set[str]:
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
    # __all__ entries count as exports, hence uses.
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for child in ast.walk(node.value):
                        if isinstance(child, ast.Constant) and isinstance(
                            child.value, str
                        ):
                            used.add(child.value)
    return used


def _is_shim(tree: ast.Module) -> bool:
    body = list(tree.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if not body:
        return False
    for node in body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Assign) and all(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        return False
    return True


def _imports_module(tree: ast.AST, stem: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if stem in alias.name.split("."):
                    return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and stem in node.module.split("."):
                return True
            for alias in node.names:
                if alias.name == stem:
                    return True
    return False


@rule(RULE_ID, "no unused imports; no unreachable re-export shims")
def check(project: Project) -> Iterator[Finding]:
    for src in project:
        if src.tree is None or src.basename in ("__init__.py", "__main__.py"):
            continue
        used = _used_names(src.tree)
        annotation_text = "\n".join(_annotation_strings(src.tree))
        for name, node, display in _bindings(src.tree):
            if name in used:
                continue
            if re.search(rf"\b{re.escape(name)}\b", annotation_text):
                continue
            yield src.finding(
                RULE_ID,
                node,
                f"'{display}' imported as '{name}' is never used",
                severity="warning",
            )
        if (
            len(project.files) > 1
            and isinstance(src.tree, ast.Module)
            and _is_shim(src.tree)
        ):
            stem = src.path.stem
            referenced = any(
                other is not src
                and other.tree is not None
                and _imports_module(other.tree, stem)
                for other in project
            )
            if not referenced:
                yield src.finding(
                    RULE_ID,
                    src.tree.body[0] if src.tree.body else src.tree,
                    f"module '{src.rel}' is a pure re-export shim that "
                    "nothing in the checked tree imports — dead API surface",
                    severity="warning",
                )
