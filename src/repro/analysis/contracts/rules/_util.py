"""Shared AST helpers for the contract rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

__all__ = [
    "dotted_name",
    "is_property",
    "self_attr",
    "self_attr_loads",
    "string_constants",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attr_loads(node: ast.AST) -> Set[str]:
    """Every ``X`` from ``self.X`` attribute reads under ``node``."""
    out: Set[str] = set()
    for child in ast.walk(node):
        attr = self_attr(child)
        if attr is not None:
            out.add(attr)
    return out


def string_constants(node: ast.AST) -> Iterator[str]:
    """Every string literal under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            yield child.value


def is_property(fn: ast.FunctionDef) -> bool:
    for deco in fn.decorator_list:
        name = dotted_name(deco)
        if name in ("property", "cached_property", "functools.cached_property"):
            return True
    return False
