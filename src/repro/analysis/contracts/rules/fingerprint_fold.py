"""``fingerprint-fold`` — every ``EngineConfig`` field is classified.

The model fingerprint is the cache key and the routing key: any config
knob that can change annotation *bytes* must fold into
``model_fingerprint``, or two engines with different outputs share
cached entries (the cache-poisoning failure mode ``dtype`` and
``probe_mode`` each had to dodge manually when they landed).  The rule
forces an explicit decision for every field: either the fingerprint
property references it — directly (``self.config.X``) or through one
level of indirection (``self.Y`` where ``__init__`` builds ``Y`` from
config fields, the ``probe_planner`` pattern) — or the field sits in
:data:`BYTE_NEUTRAL`, the audited allowlist of knobs proven not to
change output bytes.  A new field in neither place is a finding, as is
a stale allowlist entry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..model import Finding, Project, SourceFile
from ..registry import rule

RULE_ID = "fingerprint-fold"

#: Fields audited as byte-neutral: changing them never changes the bytes
#: of any annotation result, so they stay out of the fingerprint and
#: persisted cache keys survive.  Every entry carries its proof sketch —
#: mirrored in docs/checks.md.
BYTE_NEUTRAL: Dict[str, str] = {
    "batch_size": (
        "exact width-bucket batching is byte-identical to sequential "
        "annotation at every batch size (PR 3 contract, tier-1 tested)"
    ),
    "cache_size": "serialization-cache capacity; hits replay identical bytes",
    "length_bucketing": (
        "bucket ordering only — batch composition stays exact either way"
    ),
    "default_options": (
        "per-request options fold into the request-level cache key, not "
        "the model fingerprint"
    ),
    "cache_dir": "storage location of the persistent tier, not its content",
    "column_cache_size": (
        "column-state cache capacity; hits are proven byte-identical"
    ),
    "column_cache_persist": (
        "spill policy for the column cache; entries are content-addressed"
    ),
    "kernels": (
        "proof-gated: fast kernels serve only after a bitwise-equality "
        "proof against the reference path, so both settings emit the "
        "same bytes"
    ),
    "weight_arena": (
        "a float32 arena stores each parameter's exact live bytes, so an "
        "arena-backed model is bitwise the in-memory one (pinned by "
        "tests); int8 arenas change bytes only via precision, which "
        "folds on its own"
    ),
}

#: Fields that are KNOWN to change annotation bytes.  They must fold into
#: the fingerprint — the rule rejects any attempt to allowlist them, so a
#: future edit cannot quietly downgrade a byte-affecting knob to
#: byte-neutral (``precision="int8"`` sharing a float32 cache partition
#: is exactly the poisoning this audit exists to prevent).
BYTE_AFFECTING: Tuple[str, ...] = (
    "dtype",
    "precision",
    "waste_budget",
    "probe_mode",
    "probe_budget",
)


def _config_fields(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    out: Dict[str, ast.AnnAssign] = {}
    for node in cls.body:
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and not node.target.id.startswith("_")
        ):
            out[node.target.id] = node
    return out


def _config_refs(node: ast.AST) -> Set[str]:
    """Every ``X`` from ``self.config.X`` under ``node``."""
    out: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Attribute)
            and child.value.attr == "config"
            and isinstance(child.value.value, ast.Name)
            and child.value.value.id == "self"
        ):
            out.add(child.attr)
    return out


def _self_attr_reads(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            out.add(child.attr)
    return out


def _indirect_refs(cls: ast.ClassDef, attrs: Set[str]) -> Set[str]:
    """Config fields flowing into ``self.Y`` for ``Y`` in ``attrs``.

    Scans ``__init__`` assignments to the attributes the fingerprint
    reads, collecting ``self.config.X`` references from the assignment
    itself *and* from the tests of every enclosing ``if`` — the
    ``probe_planner`` pattern, where the planner exists only under
    ``if self.config.probe_mode == "planned":`` and carries
    ``probe_budget`` in its constructor.
    """
    init = next(
        (
            n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return set()
    refs: Set[str] = set()

    def visit(stmts: List[ast.stmt], guards: List[ast.AST]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.If, ast.While)):
                visit(stmt.body, guards + [stmt.test])
                visit(stmt.orelse, guards + [stmt.test])
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                visit(stmt.body + stmt.orelse, guards)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                visit(stmt.body, guards)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body + stmt.orelse + stmt.finalbody, guards)
                for handler in stmt.handlers:
                    visit(handler.body, guards)
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in attrs
                    ):
                        refs.update(_config_refs(stmt))
                        for guard in guards:
                            refs.update(_config_refs(guard))

    visit(init.body, [])
    return refs


def _fingerprint_fn(
    project: Project,
) -> Optional[Tuple[SourceFile, ast.ClassDef, ast.FunctionDef]]:
    for src in project:
        for cls in src.classes():
            for node in cls.body:
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == "model_fingerprint"
                ):
                    return src, cls, node
    return None


@rule(
    RULE_ID,
    "every EngineConfig field folds into model_fingerprint or is "
    "allowlisted byte-neutral",
)
def check(project: Project) -> Iterator[Finding]:
    configs = project.find_classes("EngineConfig")
    if not configs:
        return
    found = _fingerprint_fn(project)
    if found is None:
        for src, cls in configs:
            yield src.finding(
                RULE_ID,
                cls,
                "EngineConfig exists but no model_fingerprint property was "
                "found to fold it",
            )
        return
    fp_src, fp_cls, fp_fn = found
    direct = _config_refs(fp_fn)
    # One level of indirection: self.Y read by the fingerprint, built in
    # __init__ from config fields.
    indirect_attrs = _self_attr_reads(fp_fn) - {"config"}
    indirect = _indirect_refs(fp_cls, indirect_attrs)
    classified = direct | indirect | set(BYTE_NEUTRAL)

    for src, cls in configs:
        fields = _config_fields(cls)
        for name, node in fields.items():
            if name not in classified:
                yield src.finding(
                    RULE_ID,
                    node,
                    f"EngineConfig.{name} is neither folded into "
                    "model_fingerprint nor allowlisted as byte-neutral — "
                    "classify it or caches may mix outputs (the dtype/"
                    "probe_mode cache-poisoning hazard)",
                )
        # Staleness only makes sense against the canonical definition —
        # fixture/test configs are deliberately minimal.
        if src.rel.replace("\\", "/").endswith("serving/engine.py"):
            for name in sorted(set(BYTE_NEUTRAL) - set(fields)):
                yield src.finding(
                    RULE_ID,
                    cls,
                    f"stale byte-neutral allowlist entry '{name}' — no such "
                    "EngineConfig field",
                    severity="warning",
                )
            for name in sorted(set(BYTE_AFFECTING) & set(BYTE_NEUTRAL)):
                yield src.finding(
                    RULE_ID,
                    cls,
                    f"'{name}' is audited byte-affecting but appears in the "
                    "byte-neutral allowlist — it must fold into "
                    "model_fingerprint, never be allowlisted",
                )
            for name in sorted(set(BYTE_AFFECTING) & set(fields) - classified):
                yield src.finding(
                    RULE_ID,
                    cls,
                    f"byte-affecting field '{name}' does not reach "
                    "model_fingerprint — cache partitions will mix outputs",
                )
