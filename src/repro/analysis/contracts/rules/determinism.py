"""``determinism-hygiene`` — no hidden nondeterminism in serving/nn.

Byte-identity (batched == sequential, warm == cold) is the project's
headline contract; it dies quietly the moment an unordered container,
an unseeded global RNG, or a wall-clock value leaks into an ordered
output or a cache key.  Scoped to ``repro/serving`` and ``repro/nn``
(the paths that produce and cache annotation bytes):

1. no iteration over ``set`` literals or bare ``set(...)`` calls —
   unordered iteration feeding any output is a nondeterminism seed;
   wrap in ``sorted(...)``;
2. no ``np.random.*`` calls at import time (module or class body) —
   global-RNG draws make import order observable;
3. no wall-clock reads (``time.time``/``monotonic``/``datetime.now``…)
   inside any function whose name mentions ``key`` or ``fingerprint`` —
   cache keys must be pure content hashes.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from ..model import Finding, Project, SourceFile
from ..registry import rule
from ._util import dotted_name

RULE_ID = "determinism-hygiene"

_SCOPE_PARTS = ("serving", "nn")

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

_KEY_HINTS = ("key", "fingerprint")


def _in_scope(src: SourceFile) -> bool:
    parts = PurePosixPath(src.rel.replace("\\", "/")).parts
    return any(part in _SCOPE_PARTS for part in parts[:-1])


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


def _set_iterations(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            yield node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    yield node


def _import_time_rng(tree: ast.AST) -> Iterator[ast.Call]:
    """``np.random.*`` calls executed at import time.

    Walks the module and class bodies but stops at function boundaries
    (function bodies run later); default-argument expressions *do* run
    at import, so those are scanned explicitly.
    """

    def visit(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in child.args.defaults + child.args.kw_defaults:
                    if default is not None:
                        yield from scan_calls(default)
                continue
            if isinstance(child, ast.Call):
                name = dotted_name(child.func) or ""
                if name.startswith(("np.random.", "numpy.random.")):
                    yield child
            yield from visit(child)

    def scan_calls(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = dotted_name(child.func) or ""
                if name.startswith(("np.random.", "numpy.random.")):
                    yield child

    yield from visit(tree)


def _clock_in_keys(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(hint in node.name.lower() for hint in _KEY_HINTS):
            continue
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = dotted_name(child.func)
                if name in _WALL_CLOCK:
                    yield child


@rule(
    RULE_ID,
    "no set-order, import-time RNG, or wall-clock nondeterminism in "
    "serving/nn",
)
def check(project: Project) -> Iterator[Finding]:
    for src in project:
        if src.tree is None or not _in_scope(src):
            continue
        for node in _set_iterations(src.tree):
            yield src.finding(
                RULE_ID,
                node,
                "iteration over an unordered set can feed ordered output — "
                "wrap the iterable in sorted(...)",
            )
        for call in _import_time_rng(src.tree):
            yield src.finding(
                RULE_ID,
                call,
                "np.random.* call at import time draws from the global RNG "
                "— seed an explicit Generator inside the consumer instead",
            )
        for call in _clock_in_keys(src.tree):
            yield src.finding(
                RULE_ID,
                call,
                f"wall-clock read '{dotted_name(call.func)}' inside a "
                "key/fingerprint function — cache keys must be pure "
                "content hashes",
            )
