"""``lock-discipline`` — lock-guarded attributes stay lock-guarded.

Scoped to the three files that multiplex threads over shared state
(``registry.py``, ``fabric.py``, ``pool.py``).  Within each class, any
attribute ever *assigned* inside a ``with self._lock:`` block is
treated as lock-guarded; reading or writing it outside a lock-held
scope of the same class is a finding (a torn read at best, a
check-then-act race at worst).

Lock-held scopes are computed, not guessed:

- statements lexically inside ``with self._lock:`` are lock-held;
- ``__init__``/``__post_init__``/dunders are exempt (construction and
  repr run before/outside the sharing contract);
- a private helper (``self._helper()``) is lock-held when *every*
  internal call site is lock-held, resolved by an optimistic
  fixed-point over the intra-class call graph — so mutually recursive
  helpers called only under the lock (the fabric's ``_read`` ↔
  ``_recover`` pair) stay lock-held;
- a ``*_locked`` name suffix asserts lock-held by convention;
- public methods are never lock-held (any thread may call them).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..model import Finding, Project, SourceFile
from ..registry import rule

RULE_ID = "lock-discipline"

_SCOPE_BASENAMES = {"registry.py", "fabric.py", "pool.py"}

_EXEMPT = {"__init__", "__post_init__", "__del__", "__enter__", "__exit__"}


def _is_self_lock(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "_lock"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class _MethodScan(ast.NodeVisitor):
    """Per-method facts: attr accesses and internal calls, each tagged
    with whether the site is lexically inside ``with self._lock:``."""

    def __init__(self) -> None:
        self.depth = 0  # with-self._lock nesting
        self.accesses: List[Tuple[str, ast.AST, bool, bool]] = []
        # (attr, node, locked, is_store)
        self.calls: List[Tuple[str, bool]] = []  # (callee, locked)

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_self_lock(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if locked:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.depth -= 1

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if node.attr != "_lock":
                is_store = isinstance(node.ctx, (ast.Store, ast.Del))
                self.accesses.append(
                    (node.attr, node, self.depth > 0, is_store)
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            self.calls.append((func.attr, self.depth > 0))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested function runs whenever it is called — its body cannot
        # be assumed lock-held; scan it with the lock considered released.
        saved = self.depth
        self.depth = 0
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            self.visit(stmt)
        self.depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


def _class_findings(
    src: SourceFile, cls: ast.ClassDef
) -> Iterator[Finding]:
    methods: Dict[str, ast.FunctionDef] = {
        n.name: n
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    scans: Dict[str, _MethodScan] = {}
    uses_lock = False
    for name, fn in methods.items():
        scan = _MethodScan()
        for stmt in fn.body:
            scan.visit(stmt)
        scans[name] = scan
        if any(locked for _, _, locked, _ in scan.accesses) or any(
            locked for _, locked in scan.calls
        ):
            uses_lock = True
    for fn in methods.values():
        for node in ast.walk(fn):
            if isinstance(node, ast.With) and any(
                _is_self_lock(item.context_expr) for item in node.items
            ):
                uses_lock = True
    if not uses_lock:
        return

    # Attributes assigned under the lock anywhere in the class.
    tracked: Set[str] = set()
    for name, scan in scans.items():
        for attr, _, locked, is_store in scan.accesses:
            if locked and is_store:
                tracked.add(attr)
    if not tracked:
        return

    # Optimistic fixed-point: which private helpers are always entered
    # with the lock held?
    def candidate(name: str) -> bool:
        return (
            name.startswith("_")
            and not name.startswith("__")
            and name in methods
        )

    held: Dict[str, bool] = {}
    for name in methods:
        if name.endswith("_locked"):
            held[name] = True
        elif candidate(name):
            held[name] = True  # optimistic start
        else:
            held[name] = False

    call_sites: Dict[str, List[Tuple[str, bool]]] = {m: [] for m in methods}
    for caller, scan in scans.items():
        for callee, locked in scan.calls:
            if callee in call_sites:
                call_sites[callee].append((caller, locked))

    changed = True
    while changed:
        changed = False
        for name in methods:
            if name.endswith("_locked") or not candidate(name):
                continue
            sites = call_sites[name]
            ok = bool(sites) and all(
                locked or caller in _EXEMPT or held.get(caller, False)
                for caller, locked in sites
            )
            if held[name] != ok:
                held[name] = ok
                changed = True

    for name, scan in scans.items():
        if name in _EXEMPT or (name.startswith("__") and name.endswith("__")):
            continue
        if held.get(name, False):
            continue
        for attr, node, locked, is_store in scan.accesses:
            if locked or attr not in tracked:
                continue
            verb = "written" if is_store else "read"
            yield src.finding(
                RULE_ID,
                node,
                f"{cls.name}.{attr} is lock-guarded (assigned under "
                f"self._lock) but {verb} without the lock in "
                f"{cls.name}.{name}()",
            )


@rule(
    RULE_ID,
    "attributes assigned under self._lock are never accessed outside "
    "lock-held scopes",
)
def check(project: Project) -> Iterator[Finding]:
    for src in project:
        if src.basename not in _SCOPE_BASENAMES or src.tree is None:
            continue
        for cls in src.classes():
            yield from _class_findings(src, cls)
