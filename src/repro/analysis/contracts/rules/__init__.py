"""Rule implementations for ``repro check``.

Importing this package registers every rule; registration order is the
order rules run and the order ``repro check --list`` prints.
"""

from . import (  # noqa: F401 - imports register the rules
    stats_merge,
    fingerprint_fold,
    async_blocking,
    lock_discipline,
    determinism,
    imports,
)

__all__ = [
    "async_blocking",
    "determinism",
    "fingerprint_fold",
    "imports",
    "lock_discipline",
    "stats_merge",
]
