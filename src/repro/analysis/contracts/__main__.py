"""``python -m repro.analysis.contracts`` — run the contract checker."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
