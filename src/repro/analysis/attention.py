"""Inter-column dependency analysis via attention weights (Appendix A.4).

Following the paper, we look at the **last** Transformer block (the layer NLP
attention studies associate with semantic similarity), aggregate attention
weights across all heads, keep only the entries between ``[CLS]`` tokens
(column representations), and average over every table in a dataset.  The
result is a ``|C| x |C|`` matrix whose entry (i, j) says how much column type
``i`` relies on column type ``j`` for its contextualized representation.  To
remove the effect of raw co-occurrence counts, the matrix is normalized so
that the reference point is zero (entries are relative importance scores),
exactly as described for Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.trainer import DoduoTrainer
from ..datasets.tables import Table
from ..encoding import EncodingPipeline


@dataclass
class AttentionDependency:
    """The aggregated dependency matrix plus its type axis."""

    types: List[str]
    matrix: np.ndarray  # (num_types, num_types), row = depends-on column type
    counts: np.ndarray  # co-occurrence counts per pair

    def dependency(self, type_from: str, type_on: str) -> float:
        i = self.types.index(type_from)
        j = self.types.index(type_on)
        return float(self.matrix[i, j])

    def strongest_dependencies(self, top_k: int = 10) -> List[Tuple[str, str, float]]:
        """Off-diagonal (type, depends-on-type, score) triples, descending."""
        entries = []
        for i, ti in enumerate(self.types):
            for j, tj in enumerate(self.types):
                if i != j and self.counts[i, j] > 0:
                    entries.append((ti, tj, float(self.matrix[i, j])))
        entries.sort(key=lambda e: -e[2])
        return entries[:top_k]


def compute_attention_dependency(
    trainer: DoduoTrainer,
    tables: Sequence[Table],
    min_cooccurrence: int = 1,
) -> AttentionDependency:
    """Aggregate last-layer CLS-to-CLS attention into a type-dependency matrix.

    Only multi-column tables contribute (single-column tables have no
    inter-column edges).  Types are the first ground-truth label of each
    column.
    """
    model = trainer.model
    encoding: EncodingPipeline = trainer.encoding
    model.eval()

    type_names = sorted(
        {
            column.type_labels[0]
            for table in tables
            for column in table.columns
            if column.type_labels
        }
    )
    index = {name: i for i, name in enumerate(type_names)}
    n = len(type_names)
    sums = np.zeros((n, n), dtype=np.float64)
    counts = np.zeros((n, n), dtype=np.float64)

    for table in tables:
        if table.num_columns < 2:
            continue
        # Read through the shared encoding cache: analysis over a corpus the
        # trainer has already served or evaluated re-serializes nothing.
        encoded = encoding.encode_table(table)
        model.encode_batch([encoded])
        maps = model.encoder.attention_maps()
        if not maps:
            continue
        last = maps[-1][0]                # (heads, S, S)
        aggregated = last.sum(axis=0)     # (S, S), summed over heads
        cls = encoded.cls_positions
        cls_attention = aggregated[np.ix_(cls, cls)]
        for a, col_a in enumerate(table.columns):
            if not col_a.type_labels:
                continue
            ia = index[col_a.type_labels[0]]
            for b, col_b in enumerate(table.columns):
                if a == b or not col_b.type_labels:
                    continue
                ib = index[col_b.type_labels[0]]
                sums[ia, ib] += cls_attention[a, b]
                counts[ia, ib] += 1

    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts >= min_cooccurrence, sums / counts, np.nan)
    # Normalize: subtract the mean observed attention so the reference point
    # is zero and entries become relative importance scores.
    observed = means[~np.isnan(means)]
    reference = float(observed.mean()) if observed.size else 0.0
    matrix = np.where(np.isnan(means), 0.0, means - reference)
    return AttentionDependency(types=type_names, matrix=matrix, counts=counts)


def render_heatmap_ascii(dependency: AttentionDependency, width: int = 12) -> str:
    """Text rendering of the Figure 6 heatmap (for bench output)."""
    types = [t[:width].ljust(width) for t in dependency.types]
    lines = [" " * width + " " + " ".join(t[:6].ljust(6) for t in dependency.types)]
    for i, row_name in enumerate(types):
        cells = []
        for j in range(len(types)):
            value = dependency.matrix[i, j]
            cells.append(f"{value:+.2f}".ljust(6))
        lines.append(row_name + " " + " ".join(cells))
    return "\n".join(lines)
