"""Per-head attention analysis (Section 4.3).

The paper motivates multi-head attention with "different attention heads
have different parameters ... so that they can capture different
characteristics of input data holistically."  This module measures that
claim on a trained model:

* :func:`head_attention_entropy` — how *focused* each head is (low entropy =
  sharp, pointer-like attention; high entropy = diffuse averaging).
* :func:`head_agreement_matrix` — how *redundant* pairs of heads in a layer
  are (cosine similarity of their attention maps); diverse heads are the
  mechanism behind the paper's claim.
* :func:`summarize_heads` — a compact per-layer report used by tests and
  notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.trainer import DoduoTrainer
from ..datasets.tables import Table


def _collect_attention(trainer: DoduoTrainer, tables: Sequence[Table]) -> List[List[np.ndarray]]:
    """Per-table list of per-layer attention tensors ``(1, H, S, S)``.

    Tables are encoded one at a time so sequence positions are never padding.
    """
    collected: List[List[np.ndarray]] = []
    trainer.model.eval()
    for table in tables:
        # One table per pass so no position is padding; serializations read
        # through the trainer's shared encoding cache.
        encoded = [trainer.encoding.encode_table(table)]
        trainer.model.column_embeddings(encoded)
        collected.append(trainer.model.encoder.attention_maps())
    if not collected:
        raise ValueError("no tables given")
    return collected


def head_attention_entropy(
    trainer: DoduoTrainer, tables: Sequence[Table]
) -> np.ndarray:
    """Mean attention entropy per (layer, head), averaged over positions.

    Entropy is normalized by ``log(S)`` per table so sequences of different
    lengths are comparable; the result lies in [0, 1].
    """
    collected = _collect_attention(trainer, tables)
    num_layers = len(collected[0])
    num_heads = collected[0][0].shape[1]
    totals = np.zeros((num_layers, num_heads))
    for layers in collected:
        for layer_index, attention in enumerate(layers):
            probs = np.clip(attention[0], 1e-12, 1.0)  # (H, S, S)
            entropy = -(probs * np.log(probs)).sum(axis=-1)  # (H, S)
            normalizer = np.log(probs.shape[-1]) or 1.0
            totals[layer_index] += entropy.mean(axis=-1) / normalizer
    return totals / len(collected)


def head_agreement_matrix(
    trainer: DoduoTrainer, tables: Sequence[Table], layer: int = -1
) -> np.ndarray:
    """Cosine similarity ``(H, H)`` between heads' attention maps in a layer.

    Values near 1 mean two heads attend almost identically (redundant);
    off-diagonal values well below 1 support the paper's
    different-heads-capture-different-characteristics claim.
    """
    collected = _collect_attention(trainer, tables)
    num_heads = collected[0][0].shape[1]
    similarity = np.zeros((num_heads, num_heads))
    for layers in collected:
        attention = layers[layer][0]  # (H, S, S)
        flat = attention.reshape(num_heads, -1)
        norms = np.linalg.norm(flat, axis=1, keepdims=True)
        unit = flat / np.maximum(norms, 1e-12)
        similarity += unit @ unit.T
    return similarity / len(collected)


@dataclass(frozen=True)
class HeadSummary:
    """Per-layer head statistics."""

    layer: int
    mean_entropy: float
    entropy_spread: float          # max - min over heads
    mean_pairwise_agreement: float  # off-diagonal mean of the agreement matrix


def summarize_heads(
    trainer: DoduoTrainer, tables: Sequence[Table]
) -> List[HeadSummary]:
    """One :class:`HeadSummary` per encoder layer."""
    entropy = head_attention_entropy(trainer, tables)
    summaries: List[HeadSummary] = []
    for layer in range(entropy.shape[0]):
        agreement = head_agreement_matrix(trainer, tables, layer=layer)
        h = agreement.shape[0]
        if h > 1:
            off_diagonal = agreement[~np.eye(h, dtype=bool)].mean()
        else:
            off_diagonal = 1.0
        summaries.append(
            HeadSummary(
                layer=layer,
                mean_entropy=float(entropy[layer].mean()),
                entropy_spread=float(entropy[layer].max() - entropy[layer].min()),
                mean_pairwise_agreement=float(off_diagonal),
            )
        )
    return summaries
