"""Analyses: attention dependency, LM probing, embedding-space quality.

:mod:`repro.analysis.contracts` (not imported here — it has no numpy
dependency and stays importable in stripped environments) is the static
contract checker behind ``repro check``.
"""

from .attention import (
    AttentionDependency,
    compute_attention_dependency,
    render_heatmap_ascii,
)
from .embedding_quality import nearest_neighbor_purity, silhouette_score
from .heads import (
    HeadSummary,
    head_agreement_matrix,
    head_attention_entropy,
    summarize_heads,
)
from .probing import (
    ProbeScore,
    ProbingReport,
    kb_relation_examples,
    kb_type_examples,
    probe_column_relations,
    probe_column_types,
)

__all__ = [
    "AttentionDependency",
    "HeadSummary",
    "head_agreement_matrix",
    "head_attention_entropy",
    "ProbeScore",
    "ProbingReport",
    "compute_attention_dependency",
    "kb_relation_examples",
    "kb_type_examples",
    "nearest_neighbor_purity",
    "probe_column_relations",
    "probe_column_types",
    "render_heatmap_ascii",
    "silhouette_score",
    "summarize_heads",
]
