"""Diagnostics for column-embedding spaces.

The case study (Section 7) clusters contextualized column embeddings; these
utilities measure how clusterable an embedding space actually is, without
committing to a clustering algorithm:

* :func:`silhouette_score` — the classic cohesion-vs-separation measure in
  [-1, 1]; higher means ground-truth groups are tighter than their
  surroundings.
* :func:`nearest_neighbor_purity` — the fraction of points whose k nearest
  neighbours share their label; a direct read on whether a retrieval-style
  use of the embeddings ("find me columns like this one") would work.

Both operate on any ``(n, d)`` array plus integer labels, so they apply
equally to DODUO's ``colemb`` output, fastText vectors, or ablations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix ``(n, n)``."""
    squared = (points ** 2).sum(axis=1)
    gram = points @ points.T
    d2 = squared[:, None] + squared[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def silhouette_score(points: np.ndarray, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient over all points.

    Points in singleton groups contribute 0 (they have no within-group
    distance), following the standard convention.

    Raises
    ------
    ValueError
        If fewer than two distinct labels are present, or shapes disagree.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    if len(labels) != len(points):
        raise ValueError("labels must align with points")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least two distinct labels")

    distances = _pairwise_distances(points)
    n = len(points)
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same_count = int(same.sum())
        if same_count <= 1:
            continue  # singleton: silhouette defined as 0
        a = distances[i][same].sum() / (same_count - 1)
        b = min(
            distances[i][labels == other].mean()
            for other in unique
            if other != labels[i]
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def nearest_neighbor_purity(
    points: np.ndarray, labels: Sequence[int], k: int = 1
) -> float:
    """Fraction of points whose ``k`` nearest neighbours share their label.

    The score for a point is the fraction of its ``k`` neighbours (excluding
    itself) with the same label; the result averages over points.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if len(labels) != len(points):
        raise ValueError("labels must align with points")
    n = len(points)
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must be in [1, n-1]: k={k}, n={n}")

    distances = _pairwise_distances(points)
    np.fill_diagonal(distances, np.inf)
    neighbour_index = np.argsort(distances, axis=1)[:, :k]
    matches = labels[neighbour_index] == labels[:, None]
    return float(matches.mean())
