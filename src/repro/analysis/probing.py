"""Language-model probing (Appendix A.5, Tables 12/13).

Tests how much factual knowledge the *pre-trained, not fine-tuned* masked LM
carries about column types and relations:

* **Type probing** — fill the template ``"<value> is a <type>"`` with every
  candidate type name and score each completed sentence by pseudo-perplexity
  (Equation 3).  The rank of the true type and its PPL relative to the
  average PPL measure whether the LM "knows" the fact.
* **Relation probing** — verbalize ``(subject, relation, object)`` with every
  candidate relation's natural-language template
  (``"<s> was born in <o>"`` ...) and rank the true relation the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.kb import RELATION_TEMPLATES, KnowledgeBase
from ..pretrain import MaskedLanguageModel, sentence_pseudo_perplexity
from ..text import WordPieceTokenizer


@dataclass
class ProbeScore:
    """Aggregated probing outcome for one label."""

    label: str
    average_rank: float
    normalized_ppl: float
    count: int


@dataclass
class ProbingReport:
    """All labels, sortable into the paper's Top-5 / Bottom-5 views."""

    scores: List[ProbeScore]
    num_candidates: int

    def top(self, k: int = 5) -> List[ProbeScore]:
        return sorted(self.scores, key=lambda s: s.average_rank)[:k]

    def bottom(self, k: int = 5) -> List[ProbeScore]:
        return sorted(self.scores, key=lambda s: -s.average_rank)[:k]


def _rank_of(value: float, values: Sequence[float]) -> int:
    """1-based rank of ``value`` inside ``values`` (ties keep earlier rank)."""
    return 1 + sum(1 for v in values if v < value)


def probe_column_types(
    model: MaskedLanguageModel,
    tokenizer: WordPieceTokenizer,
    examples: Sequence[Tuple[str, str]],
    candidate_types: Sequence[str],
    max_examples_per_type: int = 5,
) -> ProbingReport:
    """Probe type knowledge with the ``"<value> is a <type>"`` template.

    Parameters
    ----------
    examples:
        ``(cell value, true type)`` pairs; the true type must appear in
        ``candidate_types``.
    """
    candidates = list(candidate_types)
    per_type_examples: Dict[str, List[str]] = {}
    for value, true_type in examples:
        bucket = per_type_examples.setdefault(true_type, [])
        if len(bucket) < max_examples_per_type:
            bucket.append(value)

    scores: List[ProbeScore] = []
    for true_type, values in sorted(per_type_examples.items()):
        if true_type not in candidates:
            continue
        ranks, normalized = [], []
        for value in values:
            ppls = [
                sentence_pseudo_perplexity(
                    model, tokenizer, f"{value} is a {candidate}"
                )
                for candidate in candidates
            ]
            true_ppl = ppls[candidates.index(true_type)]
            ranks.append(_rank_of(true_ppl, ppls))
            mean_ppl = float(np.mean(ppls))
            normalized.append(true_ppl / mean_ppl if mean_ppl > 0 else float("inf"))
        scores.append(
            ProbeScore(
                label=true_type,
                average_rank=float(np.mean(ranks)),
                normalized_ppl=float(np.mean(normalized)),
                count=len(values),
            )
        )
    return ProbingReport(scores=scores, num_candidates=len(candidates))


def _relation_phrase(relation: str) -> Optional[str]:
    """The relation's verbalization with subject/object slots."""
    template = RELATION_TEMPLATES.get(relation)
    if template is None:
        return None
    return template[2]


def probe_column_relations(
    model: MaskedLanguageModel,
    tokenizer: WordPieceTokenizer,
    examples: Sequence[Tuple[str, str, str]],
    candidate_relations: Sequence[str],
    max_examples_per_relation: int = 5,
) -> ProbingReport:
    """Probe relation knowledge with verbalized templates.

    Parameters
    ----------
    examples:
        ``(subject value, object value, true relation)`` triples.
    candidate_relations:
        Relations with a verbalization in
        :data:`repro.datasets.kb.RELATION_TEMPLATES`; others are skipped
        (the paper likewise filtered relations without clean templates).
    """
    candidates = [r for r in candidate_relations if _relation_phrase(r) is not None]
    per_relation: Dict[str, List[Tuple[str, str]]] = {}
    for subject, obj, relation in examples:
        if relation not in candidates:
            continue
        bucket = per_relation.setdefault(relation, [])
        if len(bucket) < max_examples_per_relation:
            bucket.append((subject, obj))

    scores: List[ProbeScore] = []
    for relation, pairs in sorted(per_relation.items()):
        ranks, normalized = [], []
        for subject, obj in pairs:
            ppls = [
                sentence_pseudo_perplexity(
                    model,
                    tokenizer,
                    _relation_phrase(candidate).format(s=subject, o=obj),
                )
                for candidate in candidates
            ]
            true_ppl = ppls[candidates.index(relation)]
            ranks.append(_rank_of(true_ppl, ppls))
            mean_ppl = float(np.mean(ppls))
            normalized.append(true_ppl / mean_ppl if mean_ppl > 0 else float("inf"))
        scores.append(
            ProbeScore(
                label=relation,
                average_rank=float(np.mean(ranks)),
                normalized_ppl=float(np.mean(normalized)),
                count=len(pairs),
            )
        )
    return ProbingReport(scores=scores, num_candidates=len(candidates))


def kb_type_examples(
    kb: KnowledgeBase,
    rng: np.random.Generator,
    per_type: int = 5,
) -> List[Tuple[str, str]]:
    """Sample (entity name, type) probing examples from the KB."""
    examples: List[Tuple[str, str]] = []
    for entity_type in kb.types():
        pool = kb.entities[entity_type]
        count = min(per_type, len(pool))
        indices = rng.choice(len(pool), size=count, replace=False)
        examples.extend((pool[i].name, entity_type) for i in indices)
    return examples


def kb_relation_examples(
    kb: KnowledgeBase,
    rng: np.random.Generator,
    per_relation: int = 5,
) -> List[Tuple[str, str, str]]:
    """Sample (subject, object, relation) probing triples from KB facts."""
    by_relation: Dict[str, List[Tuple[str, str]]] = {}
    for entity in kb.all_entities():
        for relation, target in entity.attributes.items():
            by_relation.setdefault(relation, []).append((entity.name, target.name))
    examples: List[Tuple[str, str, str]] = []
    for relation, pairs in sorted(by_relation.items()):
        count = min(per_relation, len(pairs))
        indices = rng.choice(len(pairs), size=count, replace=False)
        examples.extend((pairs[i][0], pairs[i][1], relation) for i in indices)
    return examples
