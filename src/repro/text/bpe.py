"""Byte-pair-encoding tokenizer (drop-in alternative to WordPiece).

The paper notes DODUO "is independent of the choice of pre-trained LMs";
the tokenizer is part of that choice (BERT uses WordPiece, RoBERTa/GPT-2 use
BPE).  This module provides a trainable BPE tokenizer with the same
interface as :class:`~repro.text.tokenizer.WordPieceTokenizer` — the same
special tokens, ``tokenize/encode/decode``, and JSON persistence — so every
component downstream (serializer, pre-training, fine-tuning) runs unchanged
on top of it.

Algorithm: classic Sennrich et al. BPE.  Words are split into characters
plus an end-of-word marker; training repeatedly merges the most frequent
adjacent symbol pair; encoding replays the learned merges in order.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from .tokenizer import SPECIAL_TOKENS, Vocabulary, basic_tokenize

_END = "</w>"


def _word_symbols(word: str) -> Tuple[str, ...]:
    return tuple(word[:-1]) + (word[-1] + _END,)


def _pair_counts(words: Dict[Tuple[str, ...], int]) -> Counter:
    pairs: Counter = Counter()
    for symbols, count in words.items():
        for a, b in zip(symbols, symbols[1:]):
            pairs[(a, b)] += count
    return pairs


def _merge_word(symbols: Tuple[str, ...], pair: Tuple[str, str]) -> Tuple[str, ...]:
    merged: List[str] = []
    i = 0
    while i < len(symbols):
        if i + 1 < len(symbols) and (symbols[i], symbols[i + 1]) == pair:
            merged.append(symbols[i] + symbols[i + 1])
            i += 2
        else:
            merged.append(symbols[i])
            i += 1
    return tuple(merged)


class BpeTokenizer:
    """Byte-pair encoding with the library's standard tokenizer interface."""

    def __init__(self, vocab: Vocabulary, merges: Sequence[Tuple[str, str]]) -> None:
        self.vocab = vocab
        self.merges: List[Tuple[str, str]] = [tuple(m) for m in merges]
        self._ranks = {pair: rank for rank, pair in enumerate(self.merges)}
        self._cache: Dict[str, List[str]] = {}

    # -- encoding -------------------------------------------------------------
    def tokenize_word(self, word: str) -> List[str]:
        if word in self._cache:
            return self._cache[word]
        symbols = list(_word_symbols(word))
        while len(symbols) > 1:
            best_rank, best_index = None, None
            for i, pair in enumerate(zip(symbols, symbols[1:])):
                rank = self._ranks.get(pair)
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank, best_index = rank, i
            if best_index is None:
                break
            symbols[best_index:best_index + 2] = [
                symbols[best_index] + symbols[best_index + 1]
            ]
        pieces = symbols
        self._cache[word] = pieces
        return pieces

    def tokenize(self, text: str) -> List[str]:
        pieces: List[str] = []
        for word in basic_tokenize(text):
            pieces.extend(self.tokenize_word(word))
        return pieces

    def encode(self, text: str) -> List[int]:
        return [self.vocab.token_to_id(piece) for piece in self.tokenize(text)]

    def decode(self, token_ids: Iterable[int]) -> str:
        words: List[str] = []
        current = ""
        for token_id in token_ids:
            token = self.vocab.id_to_token(token_id)
            if token in SPECIAL_TOKENS:
                continue
            if token.endswith(_END):
                words.append(current + token[: -len(_END)])
                current = ""
            else:
                current += token
        if current:
            words.append(current)
        return " ".join(words)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    # -- persistence ------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the tokenizer (vocabulary + merge list) as JSON."""
        payload = {
            "format": "bpe-v1",
            "tokens": self.vocab.tokens(),
            "merges": [list(pair) for pair in self.merges],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "BpeTokenizer":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != "bpe-v1":
            raise ValueError(
                f"{path} is not a bpe-v1 tokenizer file "
                f"(format={payload.get('format')!r})"
            )
        tokens = [t for t in payload["tokens"] if t not in SPECIAL_TOKENS]
        merges = [tuple(pair) for pair in payload["merges"]]
        return cls(Vocabulary(tokens), merges)


def train_bpe(
    corpus: Iterable[str],
    vocab_size: int = 2048,
    min_pair_frequency: int = 2,
) -> BpeTokenizer:
    """Learn BPE merges from a corpus.

    The vocabulary holds the special tokens, every base symbol (characters
    and end-of-word-marked characters), and one entry per learned merge, so
    any text over seen characters stays encodable; unseen characters map to
    ``[UNK]`` through the vocabulary lookup.
    """
    word_counts: Counter = Counter()
    for line in corpus:
        word_counts.update(basic_tokenize(line))
    words: Dict[Tuple[str, ...], int] = {
        _word_symbols(word): count for word, count in word_counts.items()
    }

    base_symbols: List[str] = []
    seen = set()
    for symbols in words:
        for symbol in symbols:
            if symbol not in seen:
                seen.add(symbol)
                base_symbols.append(symbol)

    budget = vocab_size - len(SPECIAL_TOKENS) - len(base_symbols)
    merges: List[Tuple[str, str]] = []
    merged_tokens: List[str] = []
    for _ in range(max(0, budget)):
        pairs = _pair_counts(words)
        if not pairs:
            break
        (a, b), count = pairs.most_common(1)[0]
        if count < min_pair_frequency:
            break
        merges.append((a, b))
        merged_tokens.append(a + b)
        rewritten: Dict[Tuple[str, ...], int] = {}
        for symbols, count in words.items():
            key = _merge_word(symbols, (a, b))
            rewritten[key] = rewritten.get(key, 0) + count
        words = rewritten

    return BpeTokenizer(Vocabulary(base_symbols + merged_tokens), merges)
