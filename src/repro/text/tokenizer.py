"""WordPiece-style tokenization.

The paper tokenizes cell values with BERT's WordPiece tokenizer.  We
reproduce the same interface: a trainable subword vocabulary, greedy
longest-match-first encoding with ``##`` continuation pieces, and the BERT
special tokens ``[PAD] [UNK] [CLS] [SEP] [MASK]``.
"""

from __future__ import annotations

import json
import os
import re
from collections import Counter
from typing import Dict, Iterable, List, Sequence

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"

SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN)

_WORD_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]", re.IGNORECASE)


def _split_digits(word: str) -> List[str]:
    """Split a digit run into pairs from the left: ``2925341`` -> 29 25 34 1.

    Numbers are open-class: every distinct value would otherwise be a rare,
    opaque token.  Digit pairs make magnitude learnable (token count encodes
    digit count, the first pair encodes the leading digits) — the property
    BERT's WordPiece number splitting gives the original DODUO.
    """
    return [word[i:i + 2] for i in range(0, len(word), 2)]


def basic_tokenize(text: str) -> List[str]:
    """Lowercase, split into words/punctuation, and pair-split digit runs."""
    tokens: List[str] = []
    for match in _WORD_RE.findall(text):
        word = match.lower()
        if word.isdigit() and len(word) > 2:
            tokens.extend(_split_digits(word))
        else:
            tokens.append(word)
    return tokens


class Vocabulary:
    """Bidirectional token <-> id mapping with reserved special tokens."""

    def __init__(self, tokens: Sequence[str]) -> None:
        seen: Dict[str, int] = {}
        for token in list(SPECIAL_TOKENS) + list(tokens):
            if token not in seen:
                seen[token] = len(seen)
        self._token_to_id = seen
        self._id_to_token = {i: t for t, i in seen.items()}

    def __len__(self) -> int:
        return len(self._token_to_id)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[UNK_TOKEN])

    def id_to_token(self, token_id: int) -> str:
        if token_id not in self._id_to_token:
            raise KeyError(f"unknown token id: {token_id}")
        return self._id_to_token[token_id]

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK_TOKEN]

    def tokens(self) -> List[str]:
        return [self._id_to_token[i] for i in range(len(self))]


class WordPieceTokenizer:
    """Greedy longest-match-first WordPiece encoder.

    A word is segmented into the longest vocabulary prefix followed by
    ``##``-prefixed continuation pieces; words that cannot be segmented map
    to ``[UNK]``.
    """

    #: Word -> id-sequence memo entries kept per tokenizer before the memo
    #: resets.  Cell text repeats heavily across tables (entity names,
    #: years, headers), so greedy longest-match segmentation re-runs on
    #: the same words constantly; the memo short-circuits it.  Outputs are
    #: byte-identical — segmentation is a pure function of the (immutable)
    #: vocabulary — so every consumer, including training, may share it.
    _MEMO_CAP = 65536

    def __init__(self, vocab: Vocabulary, max_word_chars: int = 32) -> None:
        self.vocab = vocab
        self.max_word_chars = max_word_chars
        self._word_ids: Dict[str, List[int]] = {}

    def tokenize_word(self, word: str) -> List[str]:
        if len(word) > self.max_word_chars:
            return [UNK_TOKEN]
        pieces: List[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [UNK_TOKEN]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> List[str]:
        pieces: List[str] = []
        for word in basic_tokenize(text):
            pieces.extend(self.tokenize_word(word))
        return pieces

    def encode(self, text: str) -> List[int]:
        ids: List[int] = []
        memo = self._word_ids
        for word in basic_tokenize(text):
            cached = memo.get(word)
            if cached is None:
                cached = [
                    self.vocab.token_to_id(piece)
                    for piece in self.tokenize_word(word)
                ]
                if len(memo) >= self._MEMO_CAP:
                    memo.clear()
                memo[word] = cached
            ids.extend(cached)
        return ids

    def decode(self, token_ids: Iterable[int]) -> str:
        words: List[str] = []
        for token_id in token_ids:
            token = self.vocab.id_to_token(token_id)
            if token in SPECIAL_TOKENS:
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    # -- persistence ----------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the tokenizer (vocabulary + settings) as JSON."""
        payload = {
            "format": "wordpiece-v1",
            "max_word_chars": self.max_word_chars,
            "tokens": self.vocab.tokens(),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "WordPieceTokenizer":
        """Load a tokenizer written by :meth:`save`.

        The token list in the file includes the special tokens in id order;
        :class:`Vocabulary` re-reserves them at the same positions, so ids
        are stable across the round-trip.
        """
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != "wordpiece-v1":
            raise ValueError(
                f"{path} is not a wordpiece-v1 tokenizer file "
                f"(format={payload.get('format')!r})"
            )
        tokens = [t for t in payload["tokens"] if t not in SPECIAL_TOKENS]
        return cls(
            Vocabulary(tokens),
            max_word_chars=int(payload.get("max_word_chars", 32)),
        )


def train_wordpiece(
    corpus: Iterable[str],
    vocab_size: int = 2048,
    min_frequency: int = 2,
    max_subword_len: int = 8,
) -> WordPieceTokenizer:
    """Induce a WordPiece vocabulary from a text corpus.

    The trainer keeps (a) every single character seen (so any word can be
    segmented), (b) the most frequent whole words, and (c) the most frequent
    continuation substrings, up to ``vocab_size`` entries.  This is a
    frequency-based approximation of the likelihood-driven WordPiece trainer
    that produces the same tokenizer behaviour for our synthetic corpus.
    """
    word_counts: Counter[str] = Counter()
    for line in corpus:
        word_counts.update(basic_tokenize(line))

    char_counts: Counter[str] = Counter()
    prefix_counts: Counter[str] = Counter()
    suffix_counts: Counter[str] = Counter()
    for word, count in word_counts.items():
        # Register both the word-initial and continuation form of every
        # character so any word over seen characters stays segmentable.
        for ch in word:
            char_counts[ch] += count
            char_counts["##" + ch] += count
        for length in range(2, min(max_subword_len, len(word)) + 1):
            prefix_counts[word[:length]] += count
            for start in range(1, len(word) - length + 1):
                suffix_counts["##" + word[start:start + length]] += count

    tokens: List[str] = []
    # 1. Characters (both word-initial and continuation forms).
    tokens.extend(sorted(char_counts))
    # 1b. All digit pairs (and continuations): numbers are open-class, so the
    # vocabulary must cover every pair `basic_tokenize` can emit.
    for a in "0123456789":
        for b in "0123456789":
            tokens.append(a + b)
            tokens.append("##" + a + b)
    # 2. Frequent whole words.
    budget = vocab_size - len(SPECIAL_TOKENS) - len(tokens)
    frequent_words = [
        w for w, c in word_counts.most_common() if c >= min_frequency and len(w) > 1
    ]
    take_words = frequent_words[: max(0, budget * 2 // 3)]
    tokens.extend(take_words)
    # 3. Frequent prefixes / continuations to cover unseen words.
    budget = vocab_size - len(SPECIAL_TOKENS) - len(set(tokens))
    subwords = prefix_counts + suffix_counts
    for piece, count in subwords.most_common():
        if budget <= 0:
            break
        if count < min_frequency or piece in set(tokens):
            continue
        tokens.append(piece)
        budget -= 1

    # Deduplicate while preserving order.
    unique: List[str] = []
    seen = set()
    for token in tokens:
        if token not in seen:
            seen.add(token)
            unique.append(token)
    unique = unique[: vocab_size - len(SPECIAL_TOKENS)]
    return WordPieceTokenizer(Vocabulary(unique))


def build_tokenizer_from_words(words: Sequence[str]) -> WordPieceTokenizer:
    """Convenience constructor: whole-word vocabulary plus character fallback."""
    chars: List[str] = []
    seen = set()
    for word in words:
        for i, ch in enumerate(word.lower()):
            forms = [ch] if i == 0 else [ch, "##" + ch]
            for form in forms:
                if form not in seen:
                    seen.add(form)
                    chars.append(form)
    lowered = []
    for word in words:
        lw = word.lower()
        if lw not in seen:
            seen.add(lw)
            lowered.append(lw)
    return WordPieceTokenizer(Vocabulary(chars + lowered))
