"""Text substrate: WordPiece / BPE tokenization and vocabulary management."""

from .bpe import BpeTokenizer, train_bpe
from .tokenizer import (
    CLS_TOKEN,
    MASK_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
    WordPieceTokenizer,
    basic_tokenize,
    build_tokenizer_from_words,
    train_wordpiece,
)

__all__ = [
    "BpeTokenizer",
    "CLS_TOKEN",
    "MASK_TOKEN",
    "PAD_TOKEN",
    "SEP_TOKEN",
    "SPECIAL_TOKENS",
    "UNK_TOKEN",
    "Vocabulary",
    "WordPieceTokenizer",
    "basic_tokenize",
    "build_tokenizer_from_words",
    "train_bpe",
    "train_wordpiece",
]
