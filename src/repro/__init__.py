"""repro — a from-scratch reproduction of DODUO (SIGMOD 2022).

"Annotating Columns with Pre-trained Language Models" by Suhara et al.
introduces DODUO, a multi-task, table-wise column annotation framework on
top of pre-trained Transformer language models.  This package reproduces the
full system on a pure-numpy substrate:

* :mod:`repro.nn` — autograd engine, Transformer encoder, Adam/AdamW + LR
  schedules, checkpointing
* :mod:`repro.text` — trainable WordPiece tokenizer (with save/load)
* :mod:`repro.pretrain` — masked-LM pre-training (the BERT substitute)
* :mod:`repro.datasets` — synthetic KB and WikiTable/VizNet-style benchmarks,
  the enterprise case-study DB, dirty-data corruption, corpus statistics
* :mod:`repro.core` — DODUO: serialization, model, multi-task trainer,
  toolbox API, wide-table splitting, numeric-magnitude embeddings, model
  bundles (save/load)
* :mod:`repro.encoding` — the unified encoding layer: one serialization
  pipeline (content-hash cache shared by training, serving, and analysis)
  and the exact width-bucket batch planner (zero padding waste, batched
  inference byte-identical to sequential)
* :mod:`repro.baselines` — Sherlock, Sato (LDA + CRF), TURL visibility model
* :mod:`repro.matching` — fastText-like embeddings, COMA, DistributionBased,
  k-means (case-study substrate)
* :mod:`repro.analysis` — attention dependency and LM probing analyses
* :mod:`repro.evaluation` — micro/macro F1, multi-label PRF, V-measure,
  classification reports, k-fold cross-validation, ASCII figure rendering
* :mod:`repro.io` — CSV tables and JSONL dataset round-trips
* :mod:`repro.serving` — the serving stack: the batched ``AnnotationEngine``
  (single-pass inference, exact width-bucketed batching, streaming), the
  multi-model ``ModelRegistry`` + ``AnnotationGateway`` front door
  (fingerprint-keyed routing, per-model dedup queues, hot
  register/repoint/unregister, thread and asyncio-native client APIs),
  the transport-agnostic wire ``protocol`` and the asyncio TCP
  ``AnnotationServer`` (per-connection FIFO answers, admin plane,
  graceful drain), the supervised multi-process ``ServingPool``
  (``repro serve --workers N``: socket sharding, crash restart, merged
  stats, pool-wide drain), the single-model ``AnnotationService``
  compatibility wrapper, and the persistent ``DiskCache`` result tier
  (boundable, compactable, partitioned per model fingerprint) with its
  concurrently-writable cross-process ``FabricCache`` variant
* :mod:`repro.cli` — the ``repro`` command-line toolbox

Quickstart::

    from repro import AnnotationEngine, Doduo, DoduoConfig, PipelineConfig
    from repro.core import build_pretrained_lm
    from repro.datasets import generate_wikitable_dataset, split_dataset

    dataset = generate_wikitable_dataset(num_tables=200)
    splits = split_dataset(dataset)
    tokenizer, pretrained = build_pretrained_lm(PipelineConfig())
    model = Doduo.train_on(splits.train, tokenizer,
                           pretrained_encoder_state=pretrained.encoder.state_dict())

    # One table (types, relations, embeddings from one encoder pass):
    annotated = model.annotate(splits.test.tables[0])

    # Many tables: the engine batches whole tables into padded forward
    # passes and streams results for unbounded workloads.
    engine = AnnotationEngine(model)
    results = engine.annotate_batch(splits.test.tables)
    for result in engine.annotate_stream(table_generator()):
        print(result.coltypes, result.top_types(0))
"""

from .core import (
    AnnotatedTable,
    Doduo,
    DoduoConfig,
    DoduoModel,
    DoduoTrainer,
    PipelineConfig,
    TableSerializer,
    annotate_wide,
    load_annotator,
    save_annotator,
)
from .datasets import (
    Column,
    KnowledgeBase,
    Table,
    TableDataset,
    generate_enterprise_dataset,
    generate_viznet_dataset,
    generate_wikitable_dataset,
    split_dataset,
)
from .serving import (
    AnnotationEngine,
    AnnotationGateway,
    AnnotationOptions,
    AnnotationRequest,
    AnnotationResult,
    AnnotationServer,
    AnnotationService,
    DiskCache,
    EngineConfig,
    FabricCache,
    ModelRegistry,
    PoolConfig,
    QueueConfig,
    ServingPool,
)

__version__ = "1.8.0"

__all__ = [
    "AnnotatedTable",
    "AnnotationEngine",
    "AnnotationGateway",
    "AnnotationOptions",
    "AnnotationRequest",
    "AnnotationResult",
    "AnnotationServer",
    "AnnotationService",
    "Column",
    "DiskCache",
    "EngineConfig",
    "FabricCache",
    "ModelRegistry",
    "PoolConfig",
    "QueueConfig",
    "ServingPool",
    "Doduo",
    "DoduoConfig",
    "DoduoModel",
    "DoduoTrainer",
    "KnowledgeBase",
    "PipelineConfig",
    "Table",
    "TableDataset",
    "TableSerializer",
    "__version__",
    "annotate_wide",
    "generate_enterprise_dataset",
    "generate_viznet_dataset",
    "generate_wikitable_dataset",
    "load_annotator",
    "save_annotator",
    "split_dataset",
]
