"""Command-line interface for the DODUO toolbox.

The paper releases DODUO "as a toolbox, which can be used with just a few
lines of Python code"; this module is the zero-lines-of-Python counterpart::

    repro generate wikitable --num-tables 200 --out corpus.jsonl
    repro train corpus.jsonl --out model/ --epochs 10
    repro annotate model/ table.csv
    repro annotate model/ corpus.jsonl --batch-size 16 --out results.jsonl
    repro serve model/ corpus.jsonl --cache-dir anno-cache/
    repro serve --model stable=model/ --model canary=model-v2/ corpus.jsonl
    repro serve --model stable=model/ --listen 127.0.0.1:9000
    repro stats 127.0.0.1:9000
    repro cache compact anno-cache/ --max-bytes 100000000
    repro evaluate model/ corpus.jsonl

``annotate`` has two modes: a CSV table is annotated one-off and printed; a
``.jsonl`` corpus is streamed through the batched
:class:`~repro.serving.AnnotationEngine` (one padded encoder pass per batch)
and emitted as one JSON record per table — the serving entry point.
``--cache-dir`` adds the persistent result-cache tier, so re-annotating the
same corpus later performs zero encoder passes.

``serve`` is the gateway front-end: tables flow through an
:class:`~repro.serving.AnnotationGateway` (per-model bounded queues,
batching workers, cross-request dedup), from a ``.jsonl`` corpus, from a
stdin loop (``-``), or — with ``--listen HOST:PORT`` — over TCP via the
asyncio :class:`~repro.serving.AnnotationServer`.  All three faces speak
the one wire protocol of :mod:`repro.serving.protocol` (same records,
same ``{"error": ...}`` answers, same optional ``"id"`` correlation
echo), and the live faces (loop, socket) also carry the admin plane:
``{"op": "stats"}``, ``{"op": "health"}``, hot ``register`` / ``repoint``
/ ``unregister``, and ``{"op": "shutdown"}``.  ``repro stats HOST:PORT``
is the one-shot admin client.  ``--model NAME=PATH`` (repeatable)
registers several models behind the one front door; records route
per-record via a ``{"model": NAME}`` field, and ``--cache-dir`` is
partitioned into one subdirectory per model fingerprint (a pre-existing
flat single-model cache keeps its layout).  SIGINT/SIGTERM drain
in-flight requests and flush the disk cache before exiting.

All subcommands are pure functions of their arguments (deterministic under
``--seed``), and :func:`main` takes an ``argv`` list so the tests can drive
the CLI in-process.
"""

from __future__ import annotations

import argparse
import contextlib
import glob
import json
import os
import sys
from typing import Optional, Sequence

from .core import Doduo, DoduoConfig, DoduoTrainer, ProbeBudget, ProbePlanner
from .core.persistence import load_annotator, save_annotator
from .core.trainer import RELATION_TASK, TYPE_TASK
from .core.wide import annotate_wide
from .datasets import (
    generate_enterprise_dataset,
    generate_viznet_dataset,
    generate_wikitable_dataset,
    split_dataset,
)
from .evaluation import render_table
from .io import (
    iter_tables_jsonl,
    load_dataset_jsonl,
    read_table_csv,
    save_dataset_jsonl,
)
from .nn import TransformerConfig
from .text import train_wordpiece

GENERATORS = {
    "wikitable": generate_wikitable_dataset,
    "viznet": generate_viznet_dataset,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.corpus == "enterprise":
        dataset = generate_enterprise_dataset(seed=args.seed)
    else:
        dataset = GENERATORS[args.corpus](
            num_tables=args.num_tables, seed=args.seed
        )
    save_dataset_jsonl(dataset, args.out)
    print(
        f"wrote {len(dataset.tables)} tables "
        f"({dataset.num_types} types, {dataset.num_relations} relations) "
        f"to {args.out}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset_jsonl(args.dataset)
    if not dataset.tables:
        print("error: dataset contains no tables", file=sys.stderr)
        return 1
    splits = split_dataset(dataset, seed=args.seed)
    tokenizer = train_wordpiece(
        splits.train.all_cell_text(), vocab_size=args.vocab_size
    )
    encoder_config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=args.hidden_dim,
        num_layers=args.layers,
        num_heads=args.heads,
        ffn_dim=2 * args.hidden_dim,
        max_position=args.max_position,
        num_segments=12,
        dropout=args.dropout,
    )
    has_relations = dataset.num_relations > 0
    tasks = (TYPE_TASK, RELATION_TASK) if has_relations else (TYPE_TASK,)
    config = DoduoConfig(
        tasks=tasks,
        multi_label=has_relations if args.multi_label is None else args.multi_label,
        max_tokens_per_column=args.max_tokens_per_column,
        value_order=args.value_order,
        epochs=args.epochs,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        seed=args.seed,
    )
    trainer = DoduoTrainer(splits.train, tokenizer, encoder_config, config)
    trainer.train(valid_dataset=splits.valid, verbose=args.verbose)
    annotator = Doduo(trainer)
    scores = trainer.evaluate(splits.test)
    for task, prf in scores.items():
        print(f"test {task} micro-F1: {prf.f1:.4f}")
    save_annotator(annotator, args.out)
    print(f"saved model bundle to {args.out}")
    return 0


def _cmd_annotate(args: argparse.Namespace) -> int:
    probe_error = _probe_args_error(args)
    if probe_error:
        print(probe_error, file=sys.stderr)
        return 1
    annotator = load_annotator(args.model)
    if args.table.endswith(".jsonl"):
        csv_only = [
            name
            for name, used in (
                ("--json", args.json),
                ("--no-header", args.no_header),
                ("--max-columns", bool(args.max_columns)),
                ("--wide-strategy", args.wide_strategy is not None),
            )
            if used
        ]
        if csv_only:
            print(
                f"error: {', '.join(csv_only)} only apply to CSV input, "
                "not .jsonl serving mode",
                file=sys.stderr,
            )
            return 1
        return _annotate_jsonl_batch(annotator, args)
    jsonl_only = [
        name
        for name, used in (
            ("--out", args.out is not None),
            ("--batch-size", args.batch_size is not None),
            ("--top-k", args.top_k is not None),
            ("--threshold", args.threshold is not None),
            ("--embeddings", args.embeddings),
            ("--cache-dir", args.cache_dir is not None),
            ("--dtype", args.dtype is not None),
            ("--kernels", args.kernels is not None),
            ("--precision", args.precision is not None),
            ("--column-cache", args.column_cache is not None),
            ("--column-cache-persist", args.column_cache_persist),
        )
        if used
    ]
    if jsonl_only:
        print(
            f"error: {', '.join(jsonl_only)} only apply to .jsonl serving "
            "mode, not CSV input",
            file=sys.stderr,
        )
        return 1
    table = read_table_csv(args.table, has_header=not args.no_header)
    planner = None
    if args.probe_mode == "planned":
        planner = ProbePlanner(ProbeBudget(max_pairs=args.probe_budget))
    if args.max_columns and table.num_columns > args.max_columns:
        annotated = annotate_wide(
            annotator, table, max_columns=args.max_columns,
            strategy=args.wide_strategy or "contiguous",
            probe_planner=planner,
        )
    elif planner is not None:
        annotated = annotator.engine.annotate(
            table, pairs=planner.plan_pairs(table)
        ).annotated
    else:
        annotated = annotator.annotate(table)
    if args.json:
        payload = {
            "table_id": table.table_id,
            "columns": [
                {
                    "header": col.header,
                    "predicted_types": annotated.coltypes[c],
                }
                for c, col in enumerate(table.columns)
            ],
            "relations": [
                {"columns": list(pair), "predicted_relations": labels}
                for pair, labels in sorted(annotated.colrels.items())
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        (c, col.header or "", ", ".join(annotated.coltypes[c]))
        for c, col in enumerate(table.columns)
    ]
    print(render_table(("col", "header", "predicted types"), rows,
                       title=f"column types: {table.table_id}"))
    if annotated.colrels:
        rel_rows = [
            (f"{i}-{j}", ", ".join(labels))
            for (i, j), labels in sorted(annotated.colrels.items())
        ]
        print(render_table(("pair", "predicted relations"), rel_rows,
                           title="column relations"))
    return 0


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """EngineConfig keyword overrides from the shared serving flags
    (``--dtype``/``--kernels``/``--precision``/``--weight-arena``/
    ``--column-cache``/``--column-cache-persist``/``--probe-mode``/
    ``--probe-budget``); omitted flags fall through to the EngineConfig
    defaults."""
    kwargs = {}
    if getattr(args, "dtype", None) is not None:
        kwargs["dtype"] = args.dtype
    if getattr(args, "kernels", None) is not None:
        kwargs["kernels"] = args.kernels
    if getattr(args, "precision", None) is not None:
        kwargs["precision"] = args.precision
    if getattr(args, "weight_arena", False):
        kwargs["weight_arena"] = True
    if getattr(args, "column_cache", None) is not None:
        kwargs["column_cache_size"] = args.column_cache
    if getattr(args, "column_cache_persist", False):
        kwargs["column_cache_persist"] = True
    if getattr(args, "probe_mode", None) is not None:
        kwargs["probe_mode"] = args.probe_mode
    if getattr(args, "probe_budget", None) is not None:
        kwargs["probe_budget"] = args.probe_budget
    return kwargs


def _probe_args_error(args: argparse.Namespace) -> Optional[str]:
    """Validate the probe flag combination (shared by annotate/serve)."""
    if (
        getattr(args, "probe_budget", None) is not None
        and getattr(args, "probe_mode", None) != "planned"
    ):
        return "error: --probe-budget requires --probe-mode planned"
    return None


def _annotate_jsonl_batch(annotator: Doduo, args: argparse.Namespace) -> int:
    """Batch-serve a .jsonl corpus through the AnnotationEngine.

    Tables are streamed lazily from the file (one chunk in memory at a
    time), so arbitrarily large corpora can be served.
    """
    from .serving import AnnotationEngine, AnnotationOptions, EngineConfig

    engine = AnnotationEngine(
        annotator.trainer,
        EngineConfig(
            batch_size=8 if args.batch_size is None else args.batch_size,
            cache_dir=args.cache_dir,
            **_engine_kwargs(args),
        ),
    )
    options = AnnotationOptions(
        with_embeddings=args.embeddings,
        top_k=3 if args.top_k is None else args.top_k,
        score_threshold=args.threshold,
    )
    out_handle = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
    count = 0
    try:
        for result in engine.annotate_stream(iter_tables_jsonl(args.table), options):
            record = result.to_dict(with_embeddings=args.embeddings)
            out_handle.write(json.dumps(record) + "\n")
            count += 1
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe: stop
        # streaming quietly.  Redirect stdout to devnull so the interpreter's
        # shutdown flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if args.out:
            out_handle.close()
    if count == 0:
        print("error: corpus contains no tables", file=sys.stderr)
        return 1
    stats = engine.stats
    disk = (
        f", {stats.disk_hits} disk hits" if args.cache_dir is not None else ""
    )
    print(
        f"annotated {count} tables in {stats.batches} batches "
        f"({stats.encoder_passes} encoder passes, "
        f"{stats.cache_hits} cache hits{disk})"
        + (f" -> {args.out}" if args.out else ""),
        file=sys.stderr if not args.out else sys.stdout,
    )
    return 0


def _iter_stdin_records(options, admin=True):
    """Yield decoded records from stdin, one JSON record per line.

    The loop-mode face of the serving protocol
    (:mod:`repro.serving.protocol`): each line may carry a ``"model"``
    route, an ``"id"`` correlation token, or — unless the operator
    disabled the admin plane (``--no-admin``) — an admin ``{"op": ...}``.
    Dataset-header records are skipped so a whole corpus file can be
    piped in unchanged; blank lines are ignored so interactive sessions
    can breathe.

    A line that cannot become a record — broken JSON, a record missing
    table fields, a zero-column table, a refused admin op — yields its
    ``{"error": ...}`` answer dict instead of raising: a long-running
    loop server must outlive its worst client line (exceptions would end
    the generator for good).
    """
    from .serving import protocol

    for line in sys.stdin:
        try:
            record = protocol.decode_record(line, options, admin=admin)
        except protocol.ProtocolError as error:
            yield error.answer()
            continue
        if record is not None:
            yield record


def _iter_corpus_records(path, options):
    """Yield decoded request records from a ``.jsonl`` corpus file.

    Same record shape as loop mode — including per-record ``"model"``
    routes and ``"id"`` tokens — but strict: a malformed record (or an
    admin op, which is live traffic, not a corpus row) raises — a static
    corpus with a broken line is an input error, not traffic to survive.
    """
    from .serving import protocol

    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = protocol.decode_record(line, options, admin=False)
            if record is not None:
                yield record


def _parse_serve_routes(args: argparse.Namespace):
    """Resolve `repro serve`'s model routes and corpus from its arguments.

    Three accepted shapes::

        repro serve BUNDLE CORPUS                  # classic single model
        repro serve --model a=B1 --model b=B2 CORPUS
        repro serve BUNDLE --model canary=B2 CORPUS

    A positional bundle registers as ``default`` and is the default route;
    ``--model NAME=PATH`` adds named routes.  With only ``--model`` routes
    the first one is the default and the remaining positional is the
    corpus.  Returns ``(specs, corpus)`` where ``specs`` is a list of
    ``(name, path)``.

    With ``--listen`` there is no corpus: the one positional (if any) is
    the default bundle, and ``corpus`` comes back ``None``.
    """
    specs = []
    for raw in args.models or []:
        name, sep, path = raw.partition("=")
        name, path = name.strip(), path.strip()
        if not sep or not name or not path:
            raise ValueError(f"--model expects NAME=PATH, got {raw!r}")
        specs.append((name, path))
    listen = getattr(args, "listen", None) is not None
    if listen:
        if args.corpus is not None:
            raise ValueError(
                "--listen runs a socket server: drop the corpus argument "
                f"({args.corpus!r})"
            )
        if args.out is not None:
            raise ValueError(
                "--out does not apply to --listen (answers go to clients)"
            )
        if args.model is not None:
            specs.insert(0, ("default", args.model))
        corpus = None
    elif args.model is not None and args.corpus is not None:
        specs.insert(0, ("default", args.model))
        corpus = args.corpus
    elif args.model is not None:
        # Only one positional was given: it is the corpus — unless it is
        # actually a bundle directory, in which case the user forgot the
        # corpus, not the model.
        if os.path.exists(os.path.join(args.model, "bundle.json")):
            raise ValueError("no corpus: pass a .jsonl path, or '-' for stdin")
        corpus = args.model
    else:
        corpus = args.corpus
    if not specs:
        raise ValueError(
            "no model: pass a bundle directory or --model NAME=PATH"
        )
    if corpus is None and not listen:
        raise ValueError("no corpus: pass a .jsonl path, or '-' for stdin")
    names = [name for name, _ in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate model names: {', '.join(names)}")
    return specs, corpus


def _parse_listen(spec: str):
    """``HOST:PORT`` → ``(host, port)`` (an empty host means loopback)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not port_text.isdigit():
        raise ValueError(f"--listen expects HOST:PORT, got {spec!r}")
    port = int(port_text)
    if port > 65535:
        raise ValueError(f"port must be 0-65535, got {port}")
    return host or "127.0.0.1", port


@contextlib.contextmanager
def _graceful_signals():
    """Translate SIGINT/SIGTERM into ``KeyboardInterrupt`` for the scope.

    `repro serve` uses it so a Ctrl-C or a supervisor's TERM lands as an
    exception at a record boundary: the gateway context then drains
    in-flight requests and flushes/closes the persistent disk cache
    instead of the process dying mid-batch.  Off the main thread (where
    signals cannot be installed) this is a no-op.
    """
    import signal

    def _raise(signum, frame):
        raise KeyboardInterrupt

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _raise)
        except ValueError:  # not the main thread
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Gateway serving: per-model queues + batching workers + dedup.

    One registered model keeps the historical single-model behaviour;
    several (``--model NAME=PATH``, repeatable) serve behind one front
    door, with stdin records routed per-line by their ``"model"`` field.
    ``--listen HOST:PORT`` swaps the stdin/stdout transport for the
    asyncio TCP server — same protocol, same answers.
    """
    from .serving import (
        AnnotationGateway,
        AnnotationOptions,
        EngineConfig,
        ModelRegistry,
        QueueConfig,
        protocol,
    )

    probe_error = _probe_args_error(args)
    if probe_error:
        print(probe_error, file=sys.stderr)
        return 1
    specs, corpus = _parse_serve_routes(args)
    if args.workers is not None:
        # Multi-process pool: the parent owns the address, each worker
        # builds its own registry/gateway/server stack (and, with
        # --cache-dir, its own writer id on the shared cache fabric) —
        # nothing below this point applies to the parent process.
        if args.listen is None:
            raise ValueError("--workers requires --listen (the pool serves "
                             "TCP; corpus/stdin serving is single-process)")
        if args.workers < 1:
            raise ValueError(f"--workers must be >= 1: {args.workers}")
        return _serve_pool(args, specs)
    batch_size = 8 if args.batch_size is None else args.batch_size
    # Single-model serving over a cache directory that already holds FLAT
    # segment files (written by `repro annotate --cache-dir` or a
    # pre-gateway `repro serve`) keeps using that layout, so existing warm
    # caches stay warm.  Everything else gets the registry layout: one
    # subdirectory per model fingerprint, so models never share segment
    # files.  (Keys embed the fingerprint either way — layouts differ,
    # correctness does not.)  The flat config is pinned to the initial
    # registration only — NOT the registry default — so a model
    # hot-registered later ({"op": "register"}) roots its cache in its
    # own fingerprint subdirectory instead of opening a second writer on
    # the flat directory.
    from .serving.diskcache import SEGMENT_GLOB

    flat_cache = (
        args.cache_dir is not None
        and len(specs) == 1
        and bool(glob.glob(os.path.join(args.cache_dir, SEGMENT_GLOB)))
    )
    engine_kwargs = _engine_kwargs(args)
    registry = ModelRegistry(
        max_live=args.max_live,
        engine_config=EngineConfig(batch_size=batch_size, **engine_kwargs),
        cache_dir=args.cache_dir,
    )
    flat_config = (
        EngineConfig(
            batch_size=batch_size, cache_dir=args.cache_dir, **engine_kwargs
        )
        if flat_cache
        else None
    )
    for name, path in specs:
        registry.register(name, path, engine_config=flat_config)
    gateway = AnnotationGateway(
        registry,
        QueueConfig(
            max_batch=batch_size,
            max_latency=args.max_latency_ms / 1000.0,
            exact=not args.no_exact,
        ),
    )
    options = AnnotationOptions(
        with_embeddings=args.embeddings,
        top_k=3 if args.top_k is None else args.top_k,
        score_threshold=args.threshold,
    )
    if args.listen is not None:
        return _serve_listen(args, gateway, options, specs)
    loop_mode = corpus == "-"
    records = (
        _iter_stdin_records(options, admin=not args.no_admin)
        if loop_mode
        else _iter_corpus_records(corpus, options)
    )
    out_handle = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
    count = 0
    admin_answers = 0
    interrupted = False

    def emit(record) -> None:
        out_handle.write(protocol.encode_line(record))
        out_handle.flush()

    try:
        with gateway, _graceful_signals():
            if loop_mode:
                # Loop mode answers each record as it arrives (stdin is
                # serial anyway) and must survive bad records: malformed
                # lines (already turned into error answers by the record
                # iterator), an unregistered model route, or a per-request
                # annotation failure each get an error record on stdout —
                # never a dead server.  Admin records ({"op": ...}) are
                # the same plane the socket server exposes: stats/health
                # introspection and hot registry mutation without a
                # restart; {"op": "shutdown"} ends the loop gracefully.
                for record in records:
                    if isinstance(record, dict):  # un-parseable line
                        emit(record)
                        continue
                    if isinstance(record, protocol.AdminRecord):
                        answer = protocol.handle_admin(record, gateway)
                        emit(answer)
                        if answer.get("ok"):
                            # Only successful ops count as session work —
                            # an all-errors session must still exit 1.
                            admin_answers += 1
                        if record.op == "shutdown" and answer.get("ok"):
                            break
                        continue
                    request = record.request
                    try:
                        result = gateway.annotate(request, options)
                    except Exception as error:  # noqa: BLE001 - server survives
                        # Whatever one request's annotation raised — bad
                        # route, invalid pairs, a pathological table deep
                        # in the forward pass — belongs to that request.
                        emit(protocol.error_answer(
                            protocol.format_error(error),
                            record_id=record.record_id,
                            table_id=request.table.table_id,
                        ))
                        continue
                    emit(protocol.encode_result(
                        result,
                        with_embeddings=args.embeddings,
                        record_id=record.record_id,
                    ))
                    count += 1
            else:
                # Corpus mode keeps a batch-sized window in flight so the
                # workers can dedup and batch; results come back in
                # submission order, so correlation ids realign by FIFO.
                from collections import deque

                record_ids: deque = deque()

                def requests():
                    for record in records:
                        record_ids.append(record.record_id)
                        yield record.request

                for result in gateway.annotate_stream(requests(), options):
                    emit(protocol.encode_result(
                        result,
                        with_embeddings=args.embeddings,
                        record_id=record_ids.popleft(),
                    ))
                    count += 1
    except KeyboardInterrupt:
        # SIGINT/SIGTERM: the gateway context already drained in-flight
        # requests and flushed/closed the disk cache on the way out.
        interrupted = True
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if args.out:
            out_handle.close()
    # An empty (or all-errors) session is a failure; a session that did
    # real work — tables, admin introspection, a clean remote shutdown —
    # or was interrupted mid-drain is not.
    if count == 0 and admin_answers == 0 and not interrupted:
        print("error: no tables were served", file=sys.stderr)
        return 1
    note = "interrupted: drained in-flight requests; " if interrupted else ""
    _print_serve_summary(gateway.stats, count, specs, args, note=note)
    if interrupted and not loop_mode:
        # Corpus (batch) mode: partial output must not look like success
        # to a pipeline gating on the exit status.  (The interactive
        # stdin loop exits 0 — Ctrl-C is how a session *ends*.)
        return 130
    return 0


def _print_serve_summary(stats, count, specs, args, note="") -> None:
    """The `repro serve` stats epilogue, shared by every transport."""
    out = getattr(args, "out", None)
    disk = f", {stats.disk_hits} disk hits" if args.cache_dir is not None else ""
    models = f" across {len(specs)} models" if len(specs) > 1 else ""
    print(
        f"{note}served {count} tables in {stats.batches} queue batches "
        f"({stats.dedup_hits} dedup hits, "
        f"{stats.encoder_passes} encoder passes{disk}){models}"
        + (f" -> {out}" if out else ""),
        file=sys.stderr if not out else sys.stdout,
    )


def _serve_listen(args, gateway, options, specs) -> int:
    """`repro serve --listen HOST:PORT`: the asyncio TCP front door.

    Runs until SIGINT/SIGTERM or a client's ``{"op": "shutdown"}``; both
    paths drain accepted requests to their clients, then close the
    gateway — which drains the per-model workers and flushes/closes the
    persistent disk cache — before exiting.
    """
    import asyncio
    import signal

    from .serving.server import AnnotationServer

    host, port = _parse_listen(args.listen)

    async def _run() -> None:
        server = AnnotationServer(
            gateway,
            options,
            host=host,
            port=port,
            with_embeddings=args.embeddings,
            admin=not args.no_admin,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        interrupt = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, interrupt.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # platform or thread without signal support
        bound_host, bound_port = server.address
        print(f"listening on {bound_host}:{bound_port}",
              file=sys.stderr, flush=True)
        waiters = [
            asyncio.ensure_future(interrupt.wait()),
            asyncio.ensure_future(server.shutdown_requested.wait()),
        ]
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for waiter in waiters:
                waiter.cancel()
            await server.stop()

    try:
        asyncio.run(_run())
    except OSError as error:
        # Bind failures (port in use, unresolvable host) are input
        # errors, not tracebacks.
        print(f"error: cannot listen on {host}:{port}: {error}",
              file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Platforms without add_signal_handler deliver Ctrl-C here after
        # asyncio.run has cancelled _run (whose finally stopped the
        # server); fall through to the drained-and-flushed exit.
        pass
    finally:
        gateway.close()  # drain workers, flush/close disk caches
    stats = gateway.stats
    _print_serve_summary(stats, stats.completed, specs, args)
    return 0


def _serve_pool(args: argparse.Namespace, specs) -> int:
    """`repro serve --listen HOST:PORT --workers N`: the process pool.

    The parent binds (or reserves) the address, spawns the workers, and
    supervises until SIGINT/SIGTERM or a client's ``{"op": "shutdown"}``
    — then every worker drains its accepted requests before exiting.
    """
    from .serving.pool import PoolConfig, ServingPool

    host, port = _parse_listen(args.listen)
    config = PoolConfig(
        specs=[(name, str(path)) for name, path in specs],
        host=host,
        port=port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        batch_size=8 if args.batch_size is None else args.batch_size,
        max_latency=args.max_latency_ms / 1000.0,
        exact=not args.no_exact,
        max_live=args.max_live,
        with_embeddings=args.embeddings,
        admin=not args.no_admin,
        top_k=3 if args.top_k is None else args.top_k,
        score_threshold=args.threshold,
        **_engine_kwargs(args),
    )
    pool = ServingPool(config)
    try:
        bound_host, bound_port = pool.start()
    except OSError as error:
        print(f"error: cannot listen on {host}:{port}: {error}",
              file=sys.stderr)
        return 1
    print(
        f"listening on {bound_host}:{bound_port} "
        f"({args.workers} workers, {pool.sharding} sharding)",
        file=sys.stderr, flush=True,
    )
    try:
        with _graceful_signals():
            pool.wait()
    except KeyboardInterrupt:
        pass
    finally:
        pool.stop()
    stats = pool.final_stats or {}
    gateway = stats.get("gateway", {})
    completed = gateway.get("completed", 0)
    disk = (
        f", {gateway.get('disk_hits', 0)} disk hits"
        if args.cache_dir is not None
        else ""
    )
    models = f" across {len(specs)} models" if len(specs) > 1 else ""
    print(
        f"served {completed} tables in {gateway.get('batches', 0)} queue "
        f"batches over {args.workers} workers "
        f"({gateway.get('dedup_hits', 0)} dedup hits, "
        f"{gateway.get('encoder_passes', 0)} encoder passes{disk}){models}",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """One-shot admin client: ask a running server for its stats."""
    import socket as _socket

    host, port = _parse_listen(args.address)
    record = {"op": "stats"}
    try:
        with _socket.create_connection((host, port), timeout=args.timeout) as sock:
            with sock.makefile("rw", encoding="utf-8", newline="\n") as stream:
                stream.write(json.dumps(record) + "\n")
                stream.flush()
                line = stream.readline()
    except OSError as error:
        print(f"error: cannot reach {host}:{port}: {error}", file=sys.stderr)
        return 1
    if not line:
        print("error: the server closed the connection without answering",
              file=sys.stderr)
        return 1
    try:
        answer = json.loads(line)
    except ValueError:
        print(
            f"error: {host}:{port} answered a non-JSON line "
            "(is it a repro serve --listen server?)",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(answer, indent=2, sort_keys=True))
    return 0 if "error" not in answer else 1


def _cache_directories(root):
    """The cache directories under ``root``: itself (flat layout — `repro
    annotate --cache-dir`) plus any per-model-fingerprint subdirectory the
    serving registry created (`repro serve --cache-dir`).  Fabric
    directories (pool caches) count even when fully compacted — they may
    hold no ``segment-*`` files at all, just the compacted generation."""
    from pathlib import Path

    from .serving.diskcache import SEGMENT_GLOB
    from .serving.fabric import is_fabric_directory

    def _is_cache(path):
        return any(path.glob(SEGMENT_GLOB)) or is_fabric_directory(path)

    root = Path(root)
    found = [root] if _is_cache(root) else []
    found += sorted(
        child for child in root.iterdir() if child.is_dir() and _is_cache(child)
    )
    return found or [root]


def _cmd_cache_compact(args: argparse.Namespace) -> int:
    """Compact persistent result-cache directories (drop dead space).

    Lock-aware: a directory whose writer is live (a running `repro
    annotate`/`repro serve`) is skipped with a notice, not corrupted and
    not a hard failure; fabric directories (serving pools) compact
    around live writers, merging only quiescent segments.  ``--dry-run``
    reports what compaction *would* reclaim, byte-for-byte, touching
    nothing.
    """
    from .serving import CacheLockedError, DiskCache
    from .serving.fabric import FabricCache, is_fabric_directory

    if not os.path.isdir(args.directory):
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 1
    verb = "would compact" if args.dry_run else "compacted"
    skipped = 0
    for directory in _cache_directories(args.directory):
        fabric = is_fabric_directory(directory)
        try:
            if fabric:
                # A pool may be live: join the fabric as a throwaway
                # writer (its own lock releases on close) and merge only
                # quiescent writers' segments.
                with FabricCache(directory, writer="cli-compact") as cache:
                    result = cache.compact(dry_run=args.dry_run)
                notes = []
                if result.skipped_segments:
                    notes.append(
                        f"{result.skipped_segments} live-writer segments "
                        "left in place"
                    )
            else:
                with DiskCache(directory, max_bytes=args.max_bytes) as cache:
                    corrupt = cache.stats.corrupt_records
                    evicted = cache.stats.evicted_records
                    result = cache.compact(dry_run=args.dry_run)
                notes = []
                if corrupt:
                    notes.append(f"{corrupt} corrupt records dropped")
                if evicted:
                    notes.append(f"{evicted} records evicted by --max-bytes")
        except CacheLockedError as error:
            print(f"skipped {directory}: {error}")
            skipped += 1
            continue
        suffix = f" ({', '.join(notes)})" if notes else ""
        print(
            f"{verb} {directory}: {result.records} live records, "
            f"{result.bytes_before} -> {result.bytes_after} bytes "
            f"({result.reclaimed_bytes} reclaim{'able' if args.dry_run else 'ed'})"
            f"{suffix}"
        )
    if skipped:
        print(
            f"{skipped} director{'y' if skipped == 1 else 'ies'} skipped "
            "(writer active; re-run after it exits, or use a fabric cache "
            "for live compaction)"
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    annotator = load_annotator(args.model)
    dataset = load_dataset_jsonl(args.dataset)
    scores = annotator.trainer.evaluate(dataset)
    rows = [
        (task, f"{prf.precision:.4f}", f"{prf.recall:.4f}", f"{prf.f1:.4f}")
        for task, prf in sorted(scores.items())
    ]
    print(render_table(("task", "precision", "recall", "micro-F1"), rows,
                       title=f"evaluation on {dataset.name or args.dataset}"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    annotator = load_annotator(args.model)
    trainer = annotator.trainer
    config = trainer.model.config
    num_params = sum(p.size for p in trainer.model.parameters())
    print(f"model bundle: {args.model}")
    print(f"  encoder: {config.num_layers} layers, hidden {config.hidden_dim}, "
          f"{config.num_heads} heads, vocab {config.vocab_size}")
    print(f"  parameters: {num_params}")
    print(f"  tasks: {', '.join(trainer.config.tasks)}")
    print(f"  type vocabulary: {trainer.dataset.num_types} labels")
    print(f"  relation vocabulary: {trainer.dataset.num_relations} labels")
    print(f"  trained on: {trainer.dataset.name or '(unknown)'}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Deferred import: the checker is pure stdlib and must stay usable
    # (e.g. in CI) without importing the numpy-heavy toolbox modules.
    from .analysis.contracts.runner import main as check_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    for rule_id in args.rules or ():
        argv += ["--rule", rule_id]
    if args.list:
        argv.append("--list")
    return check_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DODUO column annotation toolbox (SIGMOD 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic benchmark corpus")
    gen.add_argument("corpus", choices=sorted(GENERATORS) + ["enterprise"])
    gen.add_argument("--num-tables", type=int, default=200)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output .jsonl path")
    gen.set_defaults(func=_cmd_generate)

    train = sub.add_parser("train", help="fine-tune a model on a .jsonl corpus")
    train.add_argument("dataset", help="input .jsonl corpus")
    train.add_argument("--out", required=True, help="output bundle directory")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    train.add_argument("--vocab-size", type=int, default=2048)
    train.add_argument("--hidden-dim", type=int, default=64)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--heads", type=int, default=4)
    train.add_argument("--max-position", type=int, default=256)
    train.add_argument("--max-tokens-per-column", type=int, default=8)
    train.add_argument("--value-order", default="head",
                       choices=("head", "distinct", "random"),
                       help="which cells spend the per-column token budget")
    train.add_argument("--dropout", type=float, default=0.1)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--multi-label", action="store_true", default=None,
                       help="force multi-label mode (default: inferred)")
    train.add_argument("--verbose", action="store_true")
    train.set_defaults(func=_cmd_train)

    annotate = sub.add_parser(
        "annotate", help="annotate a CSV table or batch-serve a .jsonl corpus"
    )
    annotate.add_argument("model", help="model bundle directory")
    annotate.add_argument("table", help="CSV table or .jsonl corpus to annotate")
    annotate.add_argument("--no-header", action="store_true",
                          help="the CSV has no header row")
    annotate.add_argument("--json", action="store_true",
                          help="emit JSON instead of a text table")
    annotate.add_argument("--max-columns", type=int, default=0,
                          help="split tables wider than this before annotating")
    annotate.add_argument("--wide-strategy", default=None,
                          choices=("contiguous", "similarity"))
    annotate.add_argument("--batch-size", type=int, default=None,
                          help="tables per forward pass (.jsonl mode, default 8)")
    annotate.add_argument("--out", default=None,
                          help="write .jsonl results here instead of stdout")
    annotate.add_argument("--top-k", type=int, default=None,
                          help="type scores kept per column (.jsonl mode, default 3)")
    annotate.add_argument("--threshold", type=float, default=None,
                          help="multi-label decision threshold (.jsonl mode)")
    annotate.add_argument("--embeddings", action="store_true",
                          help="include column embeddings in .jsonl records")
    annotate.add_argument("--dtype", choices=("float32", "float64"),
                          default=None,
                          help="compute precision for .jsonl serving "
                               "(default float32; float64 needs --kernels fast)")
    annotate.add_argument("--precision", choices=("float32", "float64", "int8"),
                          default=None,
                          help="weight representation for inference: int8 "
                               "serves per-channel quantized weights behind "
                               "the accuracy gate (requires fast kernels; "
                               "default float32)")
    annotate.add_argument("--kernels", choices=("fast", "reference"),
                          default=None,
                          help="forward implementation: proof-gated fast "
                               "kernels (default) or the reference Tensor path")
    annotate.add_argument("--column-cache", type=int, default=None, metavar="N",
                          help="column-state cache capacity in entries "
                               "(0 disables; single-column models only)")
    annotate.add_argument("--column-cache-persist", action="store_true",
                          help="also persist column states to --cache-dir")
    annotate.add_argument("--probe-mode", choices=("exhaustive", "planned"),
                          default=None,
                          help="relation probing policy: exhaustive default "
                               "pairs (byte-identical legacy behavior) or "
                               "planner-pruned, budgeted pairs")
    annotate.add_argument("--probe-budget", type=int, default=None,
                          metavar="N",
                          help="max planned relation pairs per table "
                               "(requires --probe-mode planned)")
    annotate.add_argument("--cache-dir", default=None,
                          help="persistent result-cache directory (.jsonl mode)")
    annotate.set_defaults(func=_cmd_annotate)

    serve = sub.add_parser(
        "serve",
        help="serve a corpus, stdin ('-'), or a TCP socket (--listen) "
             "through the routed gateway",
    )
    serve.add_argument("model", nargs="?", default=None,
                       help="model bundle directory (registered as "
                            "'default'; optional when --model is used)")
    serve.add_argument("corpus", nargs="?", default=None,
                       help=".jsonl corpus, or '-' to loop over stdin "
                            "records (which may carry a per-line "
                            '{"model": NAME} route)')
    serve.add_argument("--model", action="append", dest="models",
                       metavar="NAME=PATH", default=None,
                       help="register a named model from a bundle PATH "
                            "(repeatable); requests route to it by NAME "
                            "or model fingerprint")
    serve.add_argument("--max-live", type=int, default=None,
                       help="cap concurrently loaded models; idle ones are "
                            "LRU-evicted and transparently reloaded")
    serve.add_argument("--batch-size", type=int, default=None,
                       help="max requests per queue drain (default 8); "
                            "drains are batched on exact serialized-length "
                            "boundaries, byte-identical to one-at-a-time "
                            "serving")
    serve.add_argument("--max-latency-ms", type=float, default=10.0,
                       help="how long a batch waits to fill before serving")
    serve.add_argument("--dtype", choices=("float32", "float64"), default=None,
                       help="compute precision (default float32; float64 "
                            "needs --kernels fast)")
    serve.add_argument("--precision", choices=("float32", "float64", "int8"),
                       default=None,
                       help="weight representation for inference: int8 "
                            "serves per-channel quantized weights behind "
                            "the accuracy gate (requires fast kernels; "
                            "default float32)")
    serve.add_argument("--weight-arena", action="store_true",
                       help="map model weights from a shared mmap arena "
                            "built next to each bundle — pool workers "
                            "share one physical copy of the weights and "
                            "evict/reload becomes a remap")
    serve.add_argument("--kernels", choices=("fast", "reference"), default=None,
                       help="forward implementation: proof-gated fast kernels "
                            "(default) or the reference Tensor path")
    serve.add_argument("--column-cache", type=int, default=None, metavar="N",
                       help="column-state cache capacity in entries "
                            "(0 disables; single-column models only)")
    serve.add_argument("--column-cache-persist", action="store_true",
                       help="also persist column states to --cache-dir")
    serve.add_argument("--probe-mode", choices=("exhaustive", "planned"),
                       default=None,
                       help="relation probing policy: exhaustive default "
                            "pairs (byte-identical legacy behavior) or "
                            "planner-pruned, budgeted pairs")
    serve.add_argument("--probe-budget", type=int, default=None, metavar="N",
                       help="max planned relation pairs per table "
                            "(requires --probe-mode planned)")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent result-cache root (one subdirectory "
                            "per model fingerprint)")
    serve.add_argument("--out", default=None,
                       help="write .jsonl results here instead of stdout")
    serve.add_argument("--top-k", type=int, default=None,
                       help="type scores kept per column (default 3)")
    serve.add_argument("--threshold", type=float, default=None,
                       help="multi-label decision threshold")
    serve.add_argument("--embeddings", action="store_true",
                       help="include column embeddings in records")
    serve.add_argument("--no-exact", action="store_true",
                       help="on a failed drain, share the exception across "
                            "the whole drain instead of isolating the "
                            "failing request (results are byte-identical "
                            "either way)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve the same protocol over TCP instead of "
                            "a corpus/stdin (port 0 binds an ephemeral "
                            "port, printed to stderr)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="with --listen: serve through N worker "
                            "processes sharing the listening address and "
                            "(with --cache-dir) a cross-process cache "
                            "fabric; {\"op\": \"stats\"} then answers the "
                            "merged pool-wide view")
    serve.add_argument("--no-admin", action="store_true",
                       help="refuse admin records ({\"op\": ...}) on the "
                            "live transports (socket and stdin loop): no "
                            "stats/health introspection, no hot "
                            "register/repoint/unregister, no remote "
                            "shutdown")
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser(
        "stats",
        help="print a running `repro serve --listen` server's stats as JSON",
    )
    stats.add_argument("address", metavar="HOST:PORT",
                       help="where the server is listening")
    stats.add_argument("--timeout", type=float, default=10.0,
                       help="connect/read timeout in seconds")
    stats.set_defaults(func=_cmd_stats)

    cache = sub.add_parser("cache", help="manage persistent result caches")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    compact = cache_sub.add_parser(
        "compact",
        help="rewrite a cache directory keeping only live records",
    )
    compact.add_argument("directory", help="result-cache directory (--cache-dir)")
    compact.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest segments past this size before compacting; "
             "applies to EACH cache directory found (a multi-model root "
             "with N fingerprint subdirectories is bounded at N x this)",
    )
    compact.add_argument(
        "--dry-run", action="store_true",
        help="report live records and reclaimable bytes per directory "
             "without rewriting anything (works against live writers)",
    )
    compact.set_defaults(func=_cmd_cache_compact)

    evaluate = sub.add_parser("evaluate", help="score a model on a .jsonl corpus")
    evaluate.add_argument("model", help="model bundle directory")
    evaluate.add_argument("dataset", help=".jsonl corpus with gold labels")
    evaluate.set_defaults(func=_cmd_evaluate)

    info = sub.add_parser("info", help="describe a model bundle")
    info.add_argument("model", help="model bundle directory")
    info.set_defaults(func=_cmd_info)

    check = sub.add_parser(
        "check",
        help="statically enforce the serving contracts (see docs/checks.md)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/ if present)",
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    check.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    check.add_argument(
        "--list", action="store_true", help="list registered rules and exit"
    )
    check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except (ValueError, FileNotFoundError, IsADirectoryError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
