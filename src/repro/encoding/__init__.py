"""The unified encoding layer: serialize → cache → plan → pad, once.

Everything this reproduction does — fine-tuning, single-pass serving,
masked-LM pre-training, attention analysis — flows through the same
serialize→tokenize→pad→forward recipe (the paper's central design: one
table serialization, one encoder).  This package owns that recipe so no
layer re-implements it:

* :class:`EncodingPipeline` — one :class:`~repro.core.serialization.TableSerializer`
  plus a shared content-hash LRU (:class:`LRUCache` keyed by
  :func:`table_fingerprint`), so training epochs, repeated evaluations, and
  serving requests all reuse each other's serializations.
* :class:`BatchPlanner` — exact length bucketing: only inputs with equal
  width signatures share a forward batch, which eliminates cross-request
  padding (zero waste) and makes batched annotation **byte-identical** to
  sequential annotation — the jointly-padded ~1e-7 float drift is gone
  because no sequence is ever padded beyond the width it would use alone.
* :class:`PaddingReport` — token-level accounting (real vs allocated
  slots) surfaced in ``EngineStats`` and ``TrainingHistory``.
* :func:`pad_batch` / :func:`pad_token_lists` — the single padding
  implementation, with explicit width/dtype so planned buckets compose
  without re-measuring.

Consumers: :class:`repro.core.trainer.DoduoTrainer` (example preparation,
``annotate_batch``, ``predict_*``), :class:`repro.serving.AnnotationEngine`
(chunk planning), :class:`repro.serving.AnnotationService` (drain
splitting), :mod:`repro.pretrain.mlm`, and :mod:`repro.analysis`.
"""

from .cache import LRUCache, column_fingerprint, table_fingerprint
from .planner import BatchPlanner, PaddingReport, width_signature
from .pipeline import EncodingPipeline, EncodingStats

# Serialization primitives re-exported for consumers of the unified layer.
# This import must come after the locals above: importing repro.core
# re-enters this package (repro.core.trainer imports EncodingPipeline), so
# the names it needs have to exist already.
from ..core.serialization import (  # noqa: E402
    EncodedTable,
    SerializerConfig,
    TableSerializer,
    column_visibility,
    pad_batch,
    pad_token_lists,
)

__all__ = [
    "BatchPlanner",
    "EncodedTable",
    "EncodingPipeline",
    "EncodingStats",
    "LRUCache",
    "PaddingReport",
    "SerializerConfig",
    "TableSerializer",
    "column_fingerprint",
    "column_visibility",
    "pad_batch",
    "pad_token_lists",
    "table_fingerprint",
    "width_signature",
]
