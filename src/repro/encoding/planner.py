"""Batch composition over encoded inputs: exact buckets, padding accounting.

The engine's original policy — sort requests by serialized length, chunk,
pad each chunk to its own maximum — keeps padding *low* but not *zero*, and
joint padding is why batched scores used to drift from sequential ones at
the float32-ulp (~1e-7) level: a padded attention row reduces over a wider
key dimension, so BLAS groups the same partial sums differently.

:class:`BatchPlanner` replaces that with **exact length bucketing**: inputs
are grouped by their width signature (the padded width every forward pass
over them would use), and only identical signatures share a batch.  Each
batch therefore pads every sequence to exactly its own length — zero
cross-request padding waste — and a batched forward pass performs the same
reductions over the same widths as a single-request pass, which is what
makes batched and sequential annotation byte-identical (verified per BLAS
slice by the serving equivalence tests).

:class:`PaddingReport` quantifies the win: how many token slots a plan's
forward passes allocate versus how many carry real tokens.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple


@dataclass(frozen=True)
class PaddingReport:
    """Token accounting for a set of padded forward passes.

    ``real_tokens`` counts sequence tokens; ``padded_tokens`` counts the
    slots actually allocated (rows × padded width, summed over passes).
    ``waste_ratio`` is the fraction of allocated slots that carry padding —
    0.0 means every forward pass was exactly full.
    """

    sequences: int = 0
    batches: int = 0
    real_tokens: int = 0
    padded_tokens: int = 0

    @property
    def wasted_tokens(self) -> int:
        return self.padded_tokens - self.real_tokens

    @property
    def waste_ratio(self) -> float:
        if self.padded_tokens == 0:
            return 0.0
        return self.wasted_tokens / self.padded_tokens

    def __add__(self, other: "PaddingReport") -> "PaddingReport":
        return PaddingReport(
            sequences=self.sequences + other.sequences,
            batches=self.batches + other.batches,
            real_tokens=self.real_tokens + other.real_tokens,
            padded_tokens=self.padded_tokens + other.padded_tokens,
        )


class BatchPlanner:
    """Groups encoded inputs into forward batches.

    ``batch_size`` caps items per batch.  ``ordered=True`` (default) emits
    buckets in ascending signature order, which keeps similarly-sized passes
    adjacent; ``ordered=False`` keeps first-seen order.  Result order never
    matters for correctness — consumers scatter outputs back by index.
    """

    def __init__(self, batch_size: int = 8, ordered: bool = True) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        self.batch_size = batch_size
        self.ordered = ordered

    # -- exact bucketing (the byte-identity policy) -------------------------
    def plan(self, signatures: Sequence[Hashable]) -> List[List[int]]:
        """Exact buckets: only identical width signatures share a batch.

        Returns lists of indices into ``signatures``; every batch is at most
        ``batch_size`` long and homogeneous in signature, so padding each
        batch to its own maximum pads nothing at all.
        """
        groups: "OrderedDict[Hashable, List[int]]" = OrderedDict()
        for index, signature in enumerate(signatures):
            groups.setdefault(signature, []).append(index)
        keys = sorted(groups) if self.ordered else list(groups)
        batches: List[List[int]] = []
        for key in keys:
            members = groups[key]
            for start in range(0, len(members), self.batch_size):
                batches.append(members[start:start + self.batch_size])
        return batches

    # -- legacy policy (kept for comparison benchmarks) ---------------------
    def plan_padded(
        self, lengths: Sequence[int], sort: bool = True
    ) -> List[List[int]]:
        """The pre-encoding-layer policy: sort by length, chunk, pad jointly.

        Kept so :mod:`benchmarks.bench_padding_waste` can measure what exact
        bucketing saves; production paths use :meth:`plan`.
        """
        order = (
            sorted(range(len(lengths)), key=lambda i: lengths[i])
            if sort
            else list(range(len(lengths)))
        )
        return [
            order[start:start + self.batch_size]
            for start in range(0, len(order), self.batch_size)
        ]

    # -- accounting ---------------------------------------------------------
    @staticmethod
    def report(
        lengths: Sequence[int], batches: Sequence[Sequence[int]]
    ) -> PaddingReport:
        """Padding accounting for ``batches`` over sequences of ``lengths``."""
        real = 0
        padded = 0
        sequences = 0
        for batch in batches:
            if not batch:
                continue
            width = max(lengths[i] for i in batch)
            for i in batch:
                real += lengths[i]
                padded += width
            sequences += len(batch)
        return PaddingReport(
            sequences=sequences,
            batches=sum(1 for b in batches if b),
            real_tokens=real,
            padded_tokens=padded,
        )


def width_signature(lengths: Sequence[int]) -> Tuple[int, ...]:
    """Signature of one multi-sequence item: the padded width it dictates.

    A table-wise item is one sequence — its signature is its length.  A
    single-column item contributes several sequences padded jointly to the
    item's own maximum, so the signature is that maximum: two items with
    equal maxima compose into one pass whose width matches what each would
    have used alone, preserving byte-identity.
    """
    if not lengths:
        return (0,)
    return (max(int(length) for length in lengths),)
