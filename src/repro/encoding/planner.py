"""Batch composition over encoded inputs: exact buckets, padding accounting.

The engine's original policy — sort requests by serialized length, chunk,
pad each chunk to its own maximum — keeps padding *low* but not *zero*, and
joint padding is why batched scores used to drift from sequential ones at
the float32-ulp (~1e-7) level: a padded attention row reduces over a wider
key dimension, so BLAS groups the same partial sums differently.

:class:`BatchPlanner` replaces that with **exact length bucketing**: inputs
are grouped by their width signature (the padded width every forward pass
over them would use), and only identical signatures share a batch.  Each
batch therefore pads every sequence to exactly its own length — zero
cross-request padding waste — and a batched forward pass performs the same
reductions over the same widths as a single-request pass, which is what
makes batched and sequential annotation byte-identical (verified per BLAS
slice by the serving equivalence tests).

:class:`PaddingReport` quantifies the win: how many token slots a plan's
forward passes allocate versus how many carry real tokens.

Opt-in near-width packing: ``BatchPlanner(waste_budget=N)`` trades the
byte-identity contract for fewer forward passes.  Adjacent width buckets
(in ascending signature order) are merged as long as padding every member
up to the merged maximum widths costs at most ``N`` extra token slots per
merged bucket.  The default budget of 0 keeps exact bucketing — and with
it the byte-identical contract — unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple


@dataclass(frozen=True)
class PaddingReport:
    """Token accounting for a set of padded forward passes.

    ``real_tokens`` counts sequence tokens; ``padded_tokens`` counts the
    slots actually allocated (rows × padded width, summed over passes).
    ``waste_ratio`` is the fraction of allocated slots that carry padding —
    0.0 means every forward pass was exactly full.
    """

    sequences: int = 0
    batches: int = 0
    real_tokens: int = 0
    padded_tokens: int = 0

    @property
    def wasted_tokens(self) -> int:
        return self.padded_tokens - self.real_tokens

    @property
    def waste_ratio(self) -> float:
        if self.padded_tokens == 0:
            return 0.0
        return self.wasted_tokens / self.padded_tokens

    def __add__(self, other: "PaddingReport") -> "PaddingReport":
        return PaddingReport(
            sequences=self.sequences + other.sequences,
            batches=self.batches + other.batches,
            real_tokens=self.real_tokens + other.real_tokens,
            padded_tokens=self.padded_tokens + other.padded_tokens,
        )


class BatchPlanner:
    """Groups encoded inputs into forward batches.

    ``batch_size`` caps items per batch.  ``ordered=True`` (default) emits
    buckets in ascending signature order, which keeps similarly-sized passes
    adjacent; ``ordered=False`` keeps first-seen order.  Result order never
    matters for correctness — consumers scatter outputs back by index.

    ``waste_budget`` enables near-width packing: buckets adjacent in the
    ascending signature order are merged while padding every member up to
    the merged maximum costs at most this many extra token slots per merged
    bucket.  The default 0 keeps exact bucketing, and with it the
    byte-identity contract; any positive budget trades bytes (float32-ulp
    drift from wider padded reductions, the pre-encoding-layer behaviour)
    for fewer forward passes.  Packing requires signatures made of integer
    widths (ints or tuples of ints) and always sorts buckets ascending,
    regardless of ``ordered``, because adjacency is what bounds the waste.
    """

    def __init__(
        self,
        batch_size: int = 8,
        ordered: bool = True,
        waste_budget: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        if waste_budget < 0:
            raise ValueError(f"waste_budget must be >= 0: {waste_budget}")
        self.batch_size = batch_size
        self.ordered = ordered
        self.waste_budget = waste_budget

    @property
    def mode(self) -> str:
        """Human-readable planning policy (surfaced by ``EngineStats``)."""
        if self.waste_budget == 0:
            return "exact"
        return f"packed(waste_budget={self.waste_budget})"

    # -- exact bucketing (the byte-identity policy) -------------------------
    def plan(self, signatures: Sequence[Hashable]) -> List[List[int]]:
        """Compose batches: exact width buckets, optionally packed.

        Returns lists of indices into ``signatures``; every batch is at most
        ``batch_size`` long.  With ``waste_budget == 0`` every batch is
        homogeneous in signature, so padding each batch to its own maximum
        pads nothing at all; with a positive budget, adjacent buckets may
        share batches within the configured padded-token waste.
        """
        groups: "OrderedDict[Hashable, List[int]]" = OrderedDict()
        for index, signature in enumerate(signatures):
            groups.setdefault(signature, []).append(index)
        if self.waste_budget > 0:
            merged = self._pack_groups(groups)
        else:
            keys = sorted(groups) if self.ordered else list(groups)
            merged = [groups[key] for key in keys]
        batches: List[List[int]] = []
        for members in merged:
            for start in range(0, len(members), self.batch_size):
                batches.append(members[start:start + self.batch_size])
        return batches

    @staticmethod
    def _widths(signature: Hashable) -> Tuple[int, ...]:
        """Integer width components of one signature (packing needs math)."""
        if isinstance(signature, tuple):
            return tuple(int(component) for component in signature)
        return (int(signature),)  # type: ignore[arg-type]

    def _pack_groups(
        self, groups: "OrderedDict[Hashable, List[int]]"
    ) -> List[List[int]]:
        """Merge adjacent width buckets within the padded-waste budget.

        Walks buckets in ascending signature order, accumulating a run; the
        next bucket joins the run iff padding every member already in it up
        to the elementwise-max widths would keep the run's total extra
        padded tokens within ``waste_budget``.  (Members of the incoming
        bucket never pad when the run only grows toward it, but mixed
        components — e.g. a wider column pass with a narrower pair pass —
        are accounted in both directions.)
        """
        runs: List[List[int]] = []
        run_keys: List[Tuple[int, ...]] = []
        run_members: List[int] = []
        for key in sorted(groups, key=self._widths):
            widths = self._widths(key)
            members = groups[key]
            if run_members:
                candidate_keys = run_keys + [widths] * len(members)
                merged_max = tuple(
                    max(components) for components in zip(*candidate_keys)
                )
                waste = sum(
                    sum(m - w for m, w in zip(merged_max, item))
                    for item in candidate_keys
                )
                if waste <= self.waste_budget:
                    run_keys = candidate_keys
                    run_members.extend(members)
                    continue
                runs.append(run_members)
            run_members = list(members)
            run_keys = [widths] * len(members)
        if run_members:
            runs.append(run_members)
        return runs

    # -- legacy policy (kept for comparison benchmarks) ---------------------
    def plan_padded(
        self, lengths: Sequence[int], sort: bool = True
    ) -> List[List[int]]:
        """The pre-encoding-layer policy: sort by length, chunk, pad jointly.

        Kept so :mod:`benchmarks.bench_padding_waste` can measure what exact
        bucketing saves; production paths use :meth:`plan`.
        """
        order = (
            sorted(range(len(lengths)), key=lambda i: lengths[i])
            if sort
            else list(range(len(lengths)))
        )
        return [
            order[start:start + self.batch_size]
            for start in range(0, len(order), self.batch_size)
        ]

    # -- accounting ---------------------------------------------------------
    @staticmethod
    def report(
        lengths: Sequence[int], batches: Sequence[Sequence[int]]
    ) -> PaddingReport:
        """Padding accounting for ``batches`` over sequences of ``lengths``."""
        real = 0
        padded = 0
        sequences = 0
        for batch in batches:
            if not batch:
                continue
            width = max(lengths[i] for i in batch)
            for i in batch:
                real += lengths[i]
                padded += width
            sequences += len(batch)
        return PaddingReport(
            sequences=sequences,
            batches=sum(1 for b in batches if b),
            real_tokens=real,
            padded_tokens=padded,
        )


def width_signature(lengths: Sequence[int]) -> Tuple[int, ...]:
    """Signature of one multi-sequence item: the padded width it dictates.

    A table-wise item is one sequence — its signature is its length.  A
    single-column item contributes several sequences padded jointly to the
    item's own maximum, so the signature is that maximum: two items with
    equal maxima compose into one pass whose width matches what each would
    have used alone, preserving byte-identity.
    """
    if not lengths:
        return (0,)
    return (max(int(length) for length in lengths),)
