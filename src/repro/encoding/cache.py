"""Content-addressed serialization cache (promoted from ``repro.serving``).

Serializing a table (value ordering, tokenization, numeric binning) is pure
CPU work repeated verbatim whenever the same table is encoded twice.  That
used to be a serving-only concern; with the unified encoding layer the same
cache also serves training epochs (column-shuffle augmentation aside, every
epoch would re-serialize the validation set) and the analysis modules.  The
cache stores :class:`~repro.core.serialization.EncodedTable` artifacts keyed
by a stable content hash of the table, independent of ``table_id`` or object
identity.

``repro.serving`` re-exports these names for serving-side convenience.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Generic, Hashable, Iterable, Optional, TypeVar

from ..datasets.tables import Table

V = TypeVar("V")

_MISSING = object()


def content_digest(chunks: Iterable[bytes]) -> str:
    """The toolbox's one content-hash recipe: blake2b-128 over ``chunks``.

    Every content-addressed identity in the stack — table fingerprints,
    composite result-cache keys, the fabric's shared-index checksums —
    feeds its bytes through this single function, so the digest width and
    algorithm can never drift apart between the tiers that must agree on
    a key.  Chunks are hashed in order with no implicit separators; the
    caller owns boundary bytes (see :func:`table_fingerprint`).
    """
    digest = hashlib.blake2b(digest_size=16)
    for chunk in chunks:
        digest.update(chunk)
    return digest.hexdigest()


def table_fingerprint(table: Table) -> str:
    """Stable content hash of a table: headers + cell values.

    Deliberately excludes ``table_id`` and ``metadata`` so two requests for
    the same content share one cache entry, and uses explicit separators so
    value boundaries cannot collide (``["ab", "c"]`` vs ``["a", "bc"]``).
    """

    def chunks() -> Iterable[bytes]:
        yield str(table.num_columns).encode("utf-8")
        for column in table.columns:
            yield b"\x1d"  # group separator: next column
            yield (column.header or "").encode("utf-8")
            for value in column.values:
                yield b"\x1f"  # unit separator: next cell
                yield value.encode("utf-8")

    return content_digest(chunks())


def column_fingerprint(column) -> str:
    """Stable content hash of one column: header + cell values.

    The column-level sibling of :func:`table_fingerprint`, and the identity
    under which the serving tier content-addresses per-column work (cached
    serialized segments, cached ``[CLS]`` encoder states).  Uses the same
    separator discipline, and — like the table recipe — excludes labels and
    any notion of position, so the same column reappearing in a different
    table (or at a different index) shares one address.
    """

    def chunks() -> Iterable[bytes]:
        yield (column.header or "").encode("utf-8")
        for value in column.values:
            yield b"\x1f"  # unit separator: next cell
            yield value.encode("utf-8")

    return content_digest(chunks())


class LRUCache(Generic[V]):
    """A small ordered-dict LRU with hit/miss/eviction counters.

    ``evictions`` counts entries dropped by the capacity bound (not by
    :meth:`clear`), so long-running consumers — the lake-scale profile
    memo ``repro.core.wide.PROFILE_CACHE`` in particular — can tell a
    cache that is merely full from one that is thrashing.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[V]:
        """Return the cached value or ``None``, updating recency and stats."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: Hashable, value: V) -> None:
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
