"""The shared encoding pipeline: serialize → cache → width signatures.

Before this layer existed, the serialize→tokenize→pad→forward recipe was
re-implemented independently by the trainer (example preparation and the
``predict_*`` entry points), the serving engine (``_encode_cached``), the
pre-trainer, and the analysis modules — with the serialization cache living
only in serving.  :class:`EncodingPipeline` is the single owner of that
recipe: one :class:`~repro.core.serialization.TableSerializer`, one
content-hash LRU shared by every consumer (training epochs and repeated
evaluations stop re-serializing the same tables), and the width bookkeeping
that :class:`~repro.encoding.planner.BatchPlanner` needs to compose exact,
zero-padding-waste batches.

Cache keys combine the table's content fingerprint with the encoding kind
(table-wise sequence / per-column sequences / a specific column pair), so
the three serializations of one table never collide.  The serializer recipe
itself is fixed per pipeline — consumers that need a different recipe (e.g.
:meth:`DoduoTrainer.column_embeddings` with a widened token budget) build a
throwaway serializer and bypass the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple, Union

from ..datasets.tables import Table
from .cache import LRUCache, column_fingerprint, table_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core<->encoding
    # import cycle: repro.core.trainer imports this module at load time)
    from ..core.serialization import EncodedTable, TableSerializer

    # Table-wise mode encodes a table to one sequence; single-column mode to
    # one sequence per column.
    EncodedInput = Union[EncodedTable, List[EncodedTable]]

DEFAULT_CACHE_SIZE = 512


@dataclass(frozen=True)
class EncodingStats:
    """Snapshot of one pipeline's counters.

    ``hits``/``misses`` mirror the content-hash LRU; ``serializations``
    counts actual serializer invocations, so ``hits / (hits + misses)`` is
    the fraction of encode requests answered without re-tokenizing anything.
    """

    serializations: int = 0
    hits: int = 0
    misses: int = 0


class EncodingPipeline:
    """Serialization + caching + batch-width bookkeeping, shared by all layers.

    ``single_column`` mirrors the trainer's Dosolo-SCol flag and decides
    what :meth:`encode` produces: one table-wise sequence, or one sequence
    per column.  ``cache_size`` bounds the content-hash LRU in entries
    (0 disables caching entirely).
    """

    def __init__(
        self,
        serializer: TableSerializer,
        single_column: bool = False,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.serializer = serializer
        self.single_column = single_column
        self._cache: LRUCache = LRUCache(cache_size)
        # Column-level content addressing: serialized segments (tokens +
        # magnitude bins) keyed by column_fingerprint.  A column's segment
        # is context-independent — it does not depend on the carrying table
        # or its neighbours — so a column seen in *any* prior table skips
        # its tokenization work even when the table-level key misses.
        self._segments: LRUCache = LRUCache(cache_size)
        self._serializations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        """Number of entries currently cached."""
        return len(self._cache)

    @property
    def cache_capacity(self) -> int:
        return self._cache.capacity

    @property
    def cache_hits(self) -> int:
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        return self._cache.misses

    @property
    def segment_hits(self) -> int:
        """Cross-table column-segment cache hits (serialization tier)."""
        return self._segments.hits

    @property
    def segment_misses(self) -> int:
        return self._segments.misses

    @property
    def stats(self) -> EncodingStats:
        return EncodingStats(
            serializations=self._serializations,
            hits=self._cache.hits,
            misses=self._cache.misses,
        )

    def clear_cache(self) -> None:
        """Drop every cached serialization and reset the hit/miss counters."""
        self._cache.clear()
        self._segments.clear()

    # ------------------------------------------------------------------
    # Cached encodes
    # ------------------------------------------------------------------
    def _cached(self, key, build):
        if self._cache.capacity == 0:
            self._serializations += 1
            return build(), False
        cached = self._cache.get(key)
        if cached is not None:
            return cached, True
        self._serializations += 1
        value = build()
        self._cache.put(key, value)
        return value, False

    def _segment_for(self, column) -> Tuple[List[int], List[int]]:
        """One column's serialized segment, read through the segment cache."""
        if self._segments.capacity == 0:
            return self.serializer.column_segments(column)
        key = column_fingerprint(column)
        segment = self._segments.get(key)
        if segment is None:
            segment = self.serializer.column_segments(column)
            self._segments.put(key, segment)
        return segment

    def _column_segments(self, table: Table) -> List[Tuple[List[int], List[int]]]:
        """Per-column serialized segments, read through the segment cache."""
        return [self._segment_for(column) for column in table.columns]

    def _encode_table_cached(self, table: Table) -> Tuple[EncodedTable, bool]:
        return self._cached(
            ("table", table_fingerprint(table)),
            lambda: self.serializer.serialize_table(
                table, segments=self._column_segments(table)
            ),
        )

    def _encode_columns_cached(
        self, table: Table
    ) -> Tuple[List[EncodedTable], bool]:
        def build() -> List[EncodedTable]:
            segments = self._column_segments(table)
            return [
                self.serializer.serialize_column(table, c, segment=segments[c])
                for c in range(table.num_columns)
            ]

        return self._cached(("columns", table_fingerprint(table)), build)

    def encode_table(self, table: Table) -> EncodedTable:
        """Table-wise serialization ``[CLS] col1 [CLS] col2 ... [SEP]``."""
        return self._encode_table_cached(table)[0]

    def encode_columns(self, table: Table) -> List[EncodedTable]:
        """One single-column sequence per column of ``table``."""
        return self._encode_columns_cached(table)[0]

    def encode_column(self, table: Table, col_index: int) -> EncodedTable:
        """One column's sequence (reads through the per-table column cache)."""
        return self.encode_columns(table)[col_index]

    def encode_pair(self, table: Table, i: int, j: int) -> EncodedTable:
        """A column-pair sequence ``[CLS] vi [SEP] [CLS] vj [SEP]``."""

        def build() -> EncodedTable:
            columns = table.columns
            return self.serializer.serialize_column_pair(
                table,
                i,
                j,
                segments=(
                    self._segment_for(columns[int(i)]),
                    self._segment_for(columns[int(j)]),
                ),
            )

        encoded, _ = self._cached(
            ("pair", table_fingerprint(table), int(i), int(j)), build
        )
        return encoded

    def encode(self, table: Table) -> EncodedInput:
        """Serialize ``table`` the way annotation consumes it (mode-aware)."""
        if self.single_column:
            return self.encode_columns(table)
        return self.encode_table(table)

    def encode_cached(self, table: Table) -> Tuple[EncodedInput, bool]:
        """Like :meth:`encode` but also reports whether it was a cache hit."""
        if self.single_column:
            return self._encode_columns_cached(table)
        return self._encode_table_cached(table)

    # ------------------------------------------------------------------
    # Width signatures (exact-batching keys)
    # ------------------------------------------------------------------
    @staticmethod
    def annotation_width(encoded: EncodedInput) -> int:
        """The padded width one item dictates for its column forward pass."""
        if isinstance(encoded, list):
            return max((e.length for e in encoded), default=0)
        return encoded.length

    def annotation_signature(
        self,
        encoded: EncodedInput,
        pairs: Sequence[Tuple[int, int]] = (),
    ) -> Tuple[int, int]:
        """Exact-batching key for one annotation item.

        Two items may share a forward batch iff their signatures are equal;
        then every pass over the batch pads each member to exactly the width
        it would have used alone, which is what keeps batched annotation
        byte-identical to sequential annotation.

        * Table-wise items run one pass — the signature is the serialized
          length (pair logits are read from the same hidden states, so
          ``pairs`` cost nothing extra).
        * Single-column items run a column pass padded to the table's widest
          column, plus (when relations are probed) a pair pass padded to the
          widest pair sequence.  A pair sequence over columns ``i, j`` is
          exactly ``len_i + len_j`` tokens (each column keeps its ``[CLS]``
          and ``[SEP]``), so the pair width falls out of the column lengths
          without serializing anything.
        """
        if not isinstance(encoded, list):
            return (encoded.length, 0)
        column_width = max((e.length for e in encoded), default=0)
        pair_width = 0
        for i, j in pairs:
            pair_width = max(pair_width, encoded[i].length + encoded[j].length)
        return (column_width, pair_width)
