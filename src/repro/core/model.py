"""The DODUO model: shared encoder + per-task output heads (Section 4.3).

Column-type prediction applies a dense layer to each column's ``[CLS]``
embedding (Equation 1); column-relation prediction applies a dense layer to
the *concatenation* of two column embeddings (Equation 2).  Both heads share
the same encoder — the hard parameter sharing of the multi-task setup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..nn import (
    Embedding,
    Linear,
    Module,
    Tensor,
    TransformerConfig,
    TransformerEncoder,
    concatenate,
)
from ..nn import functional as F
from .inference import (
    QUANTIZED_DTYPES,
    InferenceSession,
    QuantizedInferenceSession,
)
from .numeric import NUM_MAGNITUDE_BINS
from .serialization import EncodedTable, column_visibility, pad_batch


class ColumnTypeHead(Module):
    """Dense layer + output projection over a column embedding (Eq. 1)."""

    def __init__(self, hidden_dim: int, num_types: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dense = Linear(hidden_dim, hidden_dim, rng)
        self.out = Linear(hidden_dim, num_types, rng)

    def forward(self, column_embeddings: Tensor) -> Tensor:
        return self.out(F.gelu(self.dense(column_embeddings)))


class ColumnRelationHead(Module):
    """Dense layer + output projection over a column-pair embedding (Eq. 2)."""

    def __init__(self, hidden_dim: int, num_relations: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dense = Linear(2 * hidden_dim, hidden_dim, rng)
        self.out = Linear(hidden_dim, num_relations, rng)

    def forward(self, pair_embeddings: Tensor) -> Tensor:
        return self.out(F.gelu(self.dense(pair_embeddings)))


def activation_probs(logits: np.ndarray, multi_label: bool) -> np.ndarray:
    """Turn raw logits into probabilities: sigmoid scores in multi-label
    mode, a softmax distribution otherwise.

    Shared by every inference entry point so that single-pass and legacy
    multi-pass paths produce bitwise-identical probabilities from the same
    logits.
    """
    if multi_label:
        return 1.0 / (1.0 + np.exp(-logits))
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass
class FullForward:
    """Everything one encoder pass yields for a batch of encoded inputs.

    ``type_logits`` and ``embeddings`` are row-aligned with the flattened
    column order (item 0 col 0, item 0 col 1, ..., item 1 col 0, ...);
    ``relation_logits`` is row-aligned with the ``pairs`` argument of
    :meth:`DoduoModel.forward_full`.
    """

    type_logits: Optional[np.ndarray]
    relation_logits: Optional[np.ndarray]
    embeddings: Optional[np.ndarray]
    columns_per_item: Tuple[int, ...]


class DoduoModel(Module):
    """Shared Transformer encoder with type and relation heads.

    ``use_visibility_matrix`` turns the same architecture into the TURL
    baseline: attention edges across columns are removed.
    """

    def __init__(
        self,
        config: TransformerConfig,
        num_types: int,
        num_relations: int,
        rng: np.random.Generator,
        use_visibility_matrix: bool = False,
        use_column_segments: bool = True,
        use_numeric_embeddings: bool = False,
    ) -> None:
        super().__init__()
        self.config = config
        self.encoder = TransformerEncoder(config, rng)
        # Numeric magnitude embeddings (Section 3.1 future work) live outside
        # the encoder so pre-trained encoder checkpoints stay loadable.
        if use_numeric_embeddings:
            self.numeric_embedding: Optional[Embedding] = Embedding(
                NUM_MAGNITUDE_BINS, config.hidden_dim, rng
            )
        else:
            self.numeric_embedding = None
        self.type_head = ColumnTypeHead(config.hidden_dim, num_types, rng)
        if num_relations > 0:
            self.relation_head: Optional[ColumnRelationHead] = ColumnRelationHead(
                config.hidden_dim, num_relations, rng
            )
        else:
            self.relation_head = None
        self.use_visibility_matrix = use_visibility_matrix
        self.use_column_segments = use_column_segments
        # Forward-pass odometers: every encode_batch call increments
        # ``encode_calls``, and the token counters record how many sequence
        # slots the pass allocated (``padded_tokens``) versus how many held
        # real tokens (``real_tokens``) — the padding-waste accounting that
        # ``EngineStats`` and ``TrainingHistory`` surface.
        self.encode_calls = 0
        self.real_tokens = 0
        self.padded_tokens = 0
        # Serving calls answered by the float32 fallback after the int8
        # accuracy gate disproved quantization (see
        # QuantizedInferenceSession); the engine diffs this into
        # ``EngineStats.quant_fallbacks`` alongside the token odometers.
        self.quant_fallbacks = 0
        # Inference sessions (no-tape optimized forward), one per compute
        # dtype.  The leading underscore keeps ``named_parameters`` and the
        # mode walker from descending into them.
        self._sessions: Dict[str, InferenceSession] = {}

    # -- identity ----------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of this model: architecture + every weight.

        Two models fingerprint identically iff they have the same
        architecture flags and bitwise-equal parameters, independent of
        object identity or load path (a freshly trained model and its
        save/load round-trip share one fingerprint).  The persistent result
        cache (:mod:`repro.serving.diskcache`) keys entries on this hash so
        cached annotations are invalidated the moment any weight changes —
        e.g. after further fine-tuning.

        Hashing walks ``named_parameters`` in sorted-name order and digests
        each parameter's name, shape, dtype, and raw bytes, so the cost is
        one pass over the weights; callers that need it repeatedly should
        cache the string (the serving engine does).
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(
            repr(
                (
                    self.config,
                    self.use_visibility_matrix,
                    self.use_column_segments,
                    self.numeric_embedding is not None,
                    self.relation_head is not None,
                )
            ).encode("utf-8")
        )
        for name, param in sorted(self.named_parameters()):
            digest.update(name.encode("utf-8"))
            digest.update(repr((param.data.shape, str(param.data.dtype))).encode("utf-8"))
            # Hash through the buffer protocol, not ``.tobytes()``: the
            # digest is identical, but tobytes would materialize a full
            # private copy of every weight — for arena-backed models that
            # one transient walk would dirty as many heap pages as the
            # arena saves per worker.
            digest.update(np.ascontiguousarray(param.data))
        return digest.hexdigest()

    # -- inference sessions ------------------------------------------------------
    def inference_session(self, dtype: str = "float32") -> InferenceSession:
        """The memoized no-tape session for ``dtype``, rebuilt when stale.

        Staleness is detected by parameter-array identity, which catches
        ``load_state_dict`` / checkpoint restores / weight surgery that
        replaces ``.data``; :meth:`train` additionally drops all sessions
        so in-place optimizer updates can never serve through a stale
        packed-QKV or float64 weight copy.  In-place mutation outside the
        training loop must call :meth:`invalidate_sessions` — the same
        contract ``Trainer.invalidate_fingerprint`` imposes for the result
        caches.
        """
        session = self._sessions.get(dtype)
        if session is None or session.stale():
            if dtype in QUANTIZED_DTYPES:
                session = QuantizedInferenceSession(self)
            else:
                session = InferenceSession(self, dtype)
            self._sessions[dtype] = session
        return session

    def invalidate_sessions(self) -> None:
        """Drop memoized inference sessions (call after in-place weight edits)."""
        self._sessions.clear()

    def train(self) -> "DoduoModel":
        self._sessions.clear()
        super().train()
        return self

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._sessions.clear()

    # -- encoding ----------------------------------------------------------------
    def encode_batch(
        self, encoded: Sequence[EncodedTable], width: Optional[int] = None
    ) -> Tuple[Tensor, np.ndarray]:
        """Run the encoder over a padded batch.

        Returns the hidden states ``(B, S, d)`` and a ``(num_cls, 2)`` array
        of (row, position) indices locating every column's ``[CLS]`` token.

        Tokens carry a *column segment id* (column index + 1, clipped to the
        configured number of segments; global/pad tokens get 0).  BERT-base
        has enough depth to recover column membership from positions alone;
        at mini scale the segment signal substitutes for that depth (see
        DESIGN.md).
        """
        self.encode_calls += 1
        pad_id = 0  # PAD is always id 0 in our vocabulary
        token_ids, attention = pad_batch(encoded, pad_id, width=width)
        width = token_ids.shape[1]
        self.real_tokens += int(sum(e.length for e in encoded))
        self.padded_tokens += int(token_ids.size)
        segments = np.zeros_like(token_ids)
        if self.use_column_segments:
            for row, item in enumerate(encoded):
                segment_row = np.clip(
                    item.column_ids + 1, 0, self.config.num_segments - 1
                )
                segments[row, : item.length] = segment_row
        visibility = None
        if self.use_visibility_matrix:
            visibility = column_visibility(encoded, width=width)
        extra = None
        if self.numeric_embedding is not None:
            numeric = np.zeros_like(token_ids)
            for row, item in enumerate(encoded):
                if item.numeric_ids is not None:
                    numeric[row, : item.length] = item.numeric_ids
            extra = self.numeric_embedding(numeric)
        hidden = self.encoder(
            token_ids,
            attention_mask=attention,
            segment_ids=segments,
            visibility=visibility,
            extra_embedding=extra,
        )
        locations = []
        for row, item in enumerate(encoded):
            for pos in item.cls_positions:
                locations.append((row, pos))
        return hidden, np.asarray(locations, dtype=np.int64)

    def column_embeddings(
        self, encoded: Sequence[EncodedTable], layer: int = -1
    ) -> Tensor:
        """Contextualized column representations: the ``[CLS]`` outputs.

        ``layer`` selects which encoder block's output to read (``-1`` is the
        final layer and the default, matching the paper's toolbox; earlier
        layers are less collapsed toward the fine-tuning label space and can
        transfer better to out-of-domain clustering).
        """
        hidden, locations = self.encode_batch(encoded)
        if layer not in (-1, self.config.num_layers - 1):
            hidden = self.encoder.layer_outputs[layer]
        return hidden[(locations[:, 0], locations[:, 1])]

    # -- task heads ----------------------------------------------------------------
    def type_logits(self, encoded: Sequence[EncodedTable]) -> Tensor:
        """Type logits for every column of every table in the batch,
        ordered (table 0 col 0, table 0 col 1, ..., table 1 col 0, ...)."""
        return self.type_head(self.column_embeddings(encoded))

    def relation_logits(
        self,
        encoded: Sequence[EncodedTable],
        pairs: Sequence[Tuple[int, int, int]],
    ) -> Tensor:
        """Relation logits for ``pairs`` of columns.

        Each pair is ``(batch_index, col_i, col_j)`` referring to columns of
        ``encoded[batch_index]``.
        """
        if self.relation_head is None:
            raise RuntimeError("model was built without a relation head")
        hidden, _ = self.encode_batch(encoded)
        rows, pos_i, pos_j = [], [], []
        for batch_index, i, j in pairs:
            cls = encoded[batch_index].cls_positions
            rows.append(batch_index)
            pos_i.append(cls[i])
            pos_j.append(cls[j])
        rows_arr = np.asarray(rows)
        emb_i = hidden[(rows_arr, np.asarray(pos_i))]
        emb_j = hidden[(rows_arr, np.asarray(pos_j))]
        pair_embedding = concatenate([emb_i, emb_j], axis=-1)
        return self.relation_head(pair_embedding)

    # -- single-pass inference ---------------------------------------------------
    def forward_full(
        self,
        encoded: Sequence[EncodedTable],
        pairs: Optional[Sequence[Tuple[int, int, int]]] = None,
        with_types: bool = True,
        with_embeddings: bool = True,
        head_groups: Optional[Sequence[Sequence[int]]] = None,
        kernels: Optional[str] = None,
        compute_dtype: str = "float32",
    ) -> FullForward:
        """Run the encoder **once** and derive every inference product.

        The legacy ``predict_types`` → ``predict_type_probs`` → relation probe
        → ``column_embeddings`` path re-encodes the same serialized tables up
        to four times; this method reads type logits, relation logits for
        ``pairs`` (``(batch_index, col_i, col_j)`` triples), and the ``[CLS]``
        column embeddings from one set of hidden states.  Each product is
        computed with exactly the same operations as its dedicated entry
        point, so the outputs are bitwise identical to the multi-pass path
        for the same batch composition.

        ``head_groups`` partitions the items into head-application units
        (default: one unit spanning the whole batch).  BLAS kernels select
        differently blocked code paths by matrix row count, so the *number
        of rows* fed to a head GEMM perturbs float32 results at the ulp
        level even though each row's math is independent.  The trainer
        passes one group per table, making every head GEMM's row count a
        function of that table alone — this is the second half of the
        batched==sequential byte-identity contract (exact width bucketing
        in :mod:`repro.encoding` is the first).

        ``kernels`` selects the forward implementation: ``"fast"`` (the
        default) uses the no-tape :class:`InferenceSession` when the model
        is in eval mode, ``"reference"`` forces the autograd Tensor path.
        Both produce identical bytes — the session replays the reference
        operation sequence and proof-gates every shape-dependent fusion —
        so the choice is purely a speed knob; ``tests/test_kernel_identity``
        enforces the equality.  ``compute_dtype`` is the activation/weight
        precision of the fast path; anything other than ``"float32"``
        requires it (the Tensor path has no dtype policy).
        """
        session = self._resolve_session(kernels, compute_dtype)
        if session is not None:
            hidden_data, locations = session.encode_batch(encoded)
        else:
            hidden, locations = self.encode_batch(encoded)
            hidden_data = hidden.data
        column_embeddings = hidden_data[(locations[:, 0], locations[:, 1])]
        counts = [e.num_columns for e in encoded]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        if head_groups is None:
            head_groups = [list(range(len(encoded)))]
        elif getattr(session, "merge_head_groups", False):
            # Accuracy-gated sessions (int8) trade the per-group row-count
            # contract away behind their drift gate, which licenses one
            # bucket-wide head GEMM chain instead of a chain per table.
            # Checked after encode_batch on purpose: the int8 calibration
            # pass runs there, and a failed gate flips this off so the
            # float32 fallback keeps reference per-group behavior.
            head_groups = [[i for group in head_groups for i in group]]
        type_logits: Optional[np.ndarray] = None
        if with_types:
            embeddings_data = column_embeddings
            parts: list = [None] * len(head_groups)
            row_sets: list = [None] * len(head_groups)
            for g, group in enumerate(head_groups):
                rows = np.concatenate(
                    [np.arange(offsets[i], offsets[i] + counts[i]) for i in group]
                ) if group else np.empty(0, dtype=np.int64)
                row_sets[g] = rows
                parts[g] = (
                    self.apply_type_head(embeddings_data[rows], session)
                    if len(rows)
                    else None
                )
            num_types = self.type_head.out.out_features
            type_logits = np.empty(
                (int(offsets[-1]), num_types), dtype=embeddings_data.dtype
            )
            for rows, part in zip(row_sets, parts):
                if part is not None:
                    type_logits[rows] = part
        relation_logits: Optional[np.ndarray] = None
        if pairs:
            if self.relation_head is None:
                raise RuntimeError("model was built without a relation head")
            item_to_group = {}
            for g, group in enumerate(head_groups):
                for i in group:
                    item_to_group[i] = g
            positions_by_group: Dict[int, list] = {}
            for position, (batch_index, _i, _j) in enumerate(pairs):
                positions_by_group.setdefault(
                    item_to_group[batch_index], []
                ).append(position)
            num_relations = self.relation_head.out.out_features
            relation_logits = np.empty(
                (len(pairs), num_relations), dtype=hidden_data.dtype
            )
            for positions in positions_by_group.values():
                rows, pos_i, pos_j = [], [], []
                for position in positions:
                    batch_index, i, j = pairs[position]
                    cls = encoded[batch_index].cls_positions
                    rows.append(batch_index)
                    pos_i.append(cls[i])
                    pos_j.append(cls[j])
                rows_arr = np.asarray(rows)
                emb_i = hidden_data[(rows_arr, np.asarray(pos_i))]
                emb_j = hidden_data[(rows_arr, np.asarray(pos_j))]
                pair_embedding = np.concatenate([emb_i, emb_j], axis=-1)
                relation_logits[positions] = self.apply_relation_head(
                    pair_embedding, session
                )
        return FullForward(
            type_logits=type_logits,
            relation_logits=relation_logits,
            # Fancy indexing already allocated a fresh array; the per-table
            # slices are copied by the consumer, so no copy is needed here.
            embeddings=column_embeddings if with_embeddings else None,
            columns_per_item=tuple(counts),
        )

    def _resolve_session(
        self, kernels: Optional[str], compute_dtype: str
    ) -> Optional[InferenceSession]:
        """Map a (kernels, dtype) request onto a session or the Tensor path."""
        mode = "fast" if kernels is None else kernels
        if mode not in ("fast", "reference"):
            raise ValueError(f"unknown kernel mode {mode!r}; expected 'fast' or 'reference'")
        if mode == "fast" and not self.training:
            return self.inference_session(compute_dtype)
        if compute_dtype != "float32":
            raise ValueError(
                f"compute_dtype {compute_dtype!r} requires the fast kernel path "
                "with the model in eval mode"
            )
        return None

    def apply_type_head(
        self, states: np.ndarray, session: Optional[InferenceSession] = None
    ) -> np.ndarray:
        """Type logits for a ``(rows, d)`` state matrix via the selected path."""
        if session is not None:
            return session.type_head(states)
        return self.type_head(Tensor(states)).data

    def apply_relation_head(
        self, pair_states: np.ndarray, session: Optional[InferenceSession] = None
    ) -> np.ndarray:
        """Relation logits for a ``(rows, 2d)`` state matrix via the selected path."""
        if session is not None:
            return session.relation_head(pair_states)
        if self.relation_head is None:
            raise RuntimeError("model was built without a relation head")
        return self.relation_head(Tensor(pair_states)).data

    # -- inference helpers ------------------------------------------------------
    def predict_type_probs(
        self, encoded: Sequence[EncodedTable], multi_label: bool
    ) -> np.ndarray:
        return activation_probs(self.type_logits(encoded).data, multi_label)

    def predict_relation_probs(
        self,
        encoded: Sequence[EncodedTable],
        pairs: Sequence[Tuple[int, int, int]],
        multi_label: bool,
    ) -> np.ndarray:
        return activation_probs(self.relation_logits(encoded, pairs).data, multi_label)
