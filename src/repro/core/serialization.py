"""Table serialization (Section 4.2 of the paper).

DODUO's table-wise serialization turns a table into one token sequence with a
``[CLS]`` marker opening every column:

    serialize(T) ::= [CLS] v11 v12 ... [CLS] v21 ... [SEP]

The single-column baseline (Section 4.1) instead serializes one column (or a
column pair, with an extra ``[SEP]`` separator) per sequence.  Both schemes
are implemented here, along with the TURL-style *visibility matrix* that
removes cross-column attention edges.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.tables import Table
from ..text import WordPieceTokenizer
from .numeric import NON_NUMERIC_BIN, magnitude_bin


@dataclass
class EncodedTable:
    """A serialized table ready for the encoder.

    ``column_ids`` assigns each token to the column it came from (the final
    ``[SEP]`` belongs to no column and gets ``-1``), which is what the
    visibility matrix and the attention analysis consume.  ``numeric_ids``
    carries each token's magnitude bin (see :mod:`repro.core.numeric`);
    special tokens and non-numeric cells get bin 0.
    """

    token_ids: np.ndarray
    cls_positions: np.ndarray
    column_ids: np.ndarray
    numeric_ids: Optional[np.ndarray] = None
    table: Optional[Table] = None

    @property
    def num_columns(self) -> int:
        return len(self.cls_positions)

    @property
    def length(self) -> int:
        return len(self.token_ids)


@dataclass(frozen=True)
class SerializerConfig:
    """Controls how tables become token sequences.

    ``max_tokens_per_column`` is the MaxToken/col knob of Table 8;
    ``include_headers`` is the "+metadata" variant of Table 3 (column names
    are prepended to the column's values before serialization).

    ``value_order`` decides which cells spend the token budget when a column
    has more values than fit (the paper truncates; *which* rows survive the
    truncation is a design choice):

    * ``"head"`` — first rows first (the paper's protocol; default),
    * ``"distinct"`` — first occurrence of each distinct value first, so a
      low-cardinality column shows its vocabulary instead of repeating one
      value (then remaining budget returns to head order),
    * ``"random"`` — a deterministic shuffle per column (``sample_seed``),
      trading recency bias for coverage.
    """

    max_tokens_per_column: int = 8
    max_sequence_length: int = 256
    include_headers: bool = False
    value_order: str = "head"
    sample_seed: int = 0

    def __post_init__(self) -> None:
        if self.value_order not in ("head", "distinct", "random"):
            raise ValueError(
                f'value_order must be "head", "distinct", or "random": '
                f"{self.value_order!r}"
            )


class TableSerializer:
    """Serializes tables/columns into encoder inputs."""

    def __init__(self, tokenizer: WordPieceTokenizer, config: SerializerConfig) -> None:
        self.tokenizer = tokenizer
        self.config = config

    # -- column token budget ---------------------------------------------------
    def _column_tokens(
        self, values: Sequence[str], header: Optional[str]
    ) -> Tuple[List[int], List[int]]:
        """Tokens for one column plus each token's magnitude bin.

        All tokens of a numeric cell share the cell's bin, so the model sees
        the magnitude alongside every digit-pair piece of the number.
        """
        budget = self.config.max_tokens_per_column
        tokens: List[int] = []
        bins: List[int] = []
        if self.config.include_headers and header:
            header_tokens = self.tokenizer.encode(header)
            tokens.extend(header_tokens)
            bins.extend([NON_NUMERIC_BIN] * len(header_tokens))
        for value in self._ordered_values(values):
            if len(tokens) >= budget:
                break
            value_tokens = self.tokenizer.encode(value)
            tokens.extend(value_tokens)
            bins.extend([magnitude_bin(value)] * len(value_tokens))
        return tokens[:budget], bins[:budget]

    def column_segments(self, column) -> Tuple[List[int], List[int]]:
        """The serialized segment of one column: ``(tokens, magnitude_bins)``.

        This is the context-independent unit of serialization work — a
        column's tokens do not depend on which table carries it or on its
        neighbours — which makes it the natural grain for cross-table
        content-addressed caching (:class:`repro.encoding.EncodingPipeline`
        keys these on :func:`repro.encoding.cache.column_fingerprint`).
        Every ``serialize_*`` method accepts precomputed segments and
        assembles identical sequences from them.
        """
        return self._column_tokens(column.values, column.header)

    def _ordered_values(self, values: Sequence[str]) -> List[str]:
        """Order cells by the configured ``value_order`` policy."""
        order = self.config.value_order
        if order == "head":
            return list(values)
        if order == "distinct":
            seen = set()
            firsts: List[str] = []
            rest: List[str] = []
            for value in values:
                if value not in seen:
                    seen.add(value)
                    firsts.append(value)
                else:
                    rest.append(value)
            return firsts + rest
        # "random": deterministic per serializer seed and column content
        # (stable across processes — no use of the salted built-in hash), so
        # the same table always serializes identically.
        digest = zlib.crc32("\x1f".join(values).encode("utf-8"))
        rng = np.random.default_rng(self.config.sample_seed + digest)
        shuffled = list(values)
        rng.shuffle(shuffled)
        return shuffled

    # -- table-wise serialization (DODUO) ---------------------------------------
    def serialize_table(
        self,
        table: Table,
        segments: Optional[Sequence[Tuple[List[int], List[int]]]] = None,
    ) -> EncodedTable:
        """``[CLS] col1-values [CLS] col2-values ... [SEP]``

        ``segments`` optionally supplies each column's precomputed
        ``(tokens, bins)`` (see :meth:`column_segments`); the assembled
        sequence is identical either way.
        """
        vocab = self.tokenizer.vocab
        token_ids: List[int] = []
        column_ids: List[int] = []
        numeric_ids: List[int] = []
        cls_positions: List[int] = []
        for col_index, column in enumerate(table.columns):
            cls_positions.append(len(token_ids))
            token_ids.append(vocab.cls_id)
            column_ids.append(col_index)
            numeric_ids.append(NON_NUMERIC_BIN)
            tokens, bins = (
                segments[col_index]
                if segments is not None
                else self._column_tokens(column.values, column.header)
            )
            for token, magnitude in zip(tokens, bins):
                token_ids.append(token)
                column_ids.append(col_index)
                numeric_ids.append(magnitude)
        token_ids.append(vocab.sep_id)
        column_ids.append(-1)
        numeric_ids.append(NON_NUMERIC_BIN)
        if len(token_ids) > self.config.max_sequence_length:
            raise ValueError(
                f"serialized table has {len(token_ids)} tokens, exceeding "
                f"max_sequence_length={self.config.max_sequence_length}; "
                "lower max_tokens_per_column or split the table"
            )
        return EncodedTable(
            token_ids=np.asarray(token_ids, dtype=np.int64),
            cls_positions=np.asarray(cls_positions, dtype=np.int64),
            column_ids=np.asarray(column_ids, dtype=np.int64),
            numeric_ids=np.asarray(numeric_ids, dtype=np.int64),
            table=table,
        )

    # -- single-column serialization (Dosolo-SCol) -------------------------------
    def serialize_column(
        self,
        table: Table,
        col_index: int,
        segment: Optional[Tuple[List[int], List[int]]] = None,
    ) -> EncodedTable:
        """``[CLS] values [SEP]`` for one column."""
        vocab = self.tokenizer.vocab
        column = table.columns[col_index]
        tokens, bins = (
            segment
            if segment is not None
            else self._column_tokens(column.values, column.header)
        )
        token_ids = [vocab.cls_id] + tokens + [vocab.sep_id]
        column_ids = [0] * (len(tokens) + 1) + [-1]
        numeric_ids = [NON_NUMERIC_BIN] + bins + [NON_NUMERIC_BIN]
        return EncodedTable(
            token_ids=np.asarray(token_ids, dtype=np.int64),
            cls_positions=np.asarray([0], dtype=np.int64),
            column_ids=np.asarray(column_ids, dtype=np.int64),
            numeric_ids=np.asarray(numeric_ids, dtype=np.int64),
            table=table,
        )

    def serialize_column_pair(
        self,
        table: Table,
        i: int,
        j: int,
        segments: Optional[
            Tuple[Tuple[List[int], List[int]], Tuple[List[int], List[int]]]
        ] = None,
    ) -> EncodedTable:
        """``[CLS] values_i [SEP] [CLS] values_j [SEP]`` for a column pair.

        Two ``[CLS]`` markers are used so the pair model can read both column
        representations, with ``[SEP]`` separating the columns as in §4.1.
        """
        vocab = self.tokenizer.vocab
        col_i, col_j = table.columns[i], table.columns[j]
        if segments is not None:
            (tokens_i, bins_i), (tokens_j, bins_j) = segments
        else:
            tokens_i, bins_i = self._column_tokens(col_i.values, col_i.header)
            tokens_j, bins_j = self._column_tokens(col_j.values, col_j.header)
        token_ids = (
            [vocab.cls_id] + tokens_i + [vocab.sep_id]
            + [vocab.cls_id] + tokens_j + [vocab.sep_id]
        )
        cls_positions = [0, len(tokens_i) + 2]
        column_ids = (
            [0] * (len(tokens_i) + 1) + [-1] + [1] * (len(tokens_j) + 1) + [-1]
        )
        numeric_ids = (
            [NON_NUMERIC_BIN] + bins_i + [NON_NUMERIC_BIN]
            + [NON_NUMERIC_BIN] + bins_j + [NON_NUMERIC_BIN]
        )
        return EncodedTable(
            token_ids=np.asarray(token_ids, dtype=np.int64),
            cls_positions=np.asarray(cls_positions, dtype=np.int64),
            column_ids=np.asarray(column_ids, dtype=np.int64),
            numeric_ids=np.asarray(numeric_ids, dtype=np.int64),
            table=table,
        )

    def max_columns_within(self, sequence_budget: int = 128) -> int:
        """How many columns fit in ``sequence_budget`` tokens (Table 8's
        "Max. # of cols" column): each column costs 1 + MaxToken/col, plus the
        final [SEP]."""
        per_column = 1 + self.config.max_tokens_per_column
        return max(0, (sequence_budget - 1) // per_column)


def pad_token_lists(
    sequences: Sequence[Sequence[int]],
    pad_id: int,
    width: Optional[int] = None,
    dtype: np.dtype = np.int64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack raw token-id sequences into ``(token_ids, attention_mask)``.

    The single padding implementation shared by every layer (the encoder's
    table batches, the pre-trainer's sentence batches, the batch planner's
    bucket composition).  ``width`` fixes the padded width explicitly — a
    planner that already knows its bucket's width composes batches without
    re-measuring, and a caller aligning two related passes can force a
    common width; it must cover the longest sequence.  ``dtype`` follows the
    token-id arrays (``int64`` everywhere in this codebase).
    """
    longest = max((len(ids) for ids in sequences), default=0)
    if width is None:
        width = longest
    elif width < longest:
        raise ValueError(
            f"width {width} cannot hold a sequence of length {longest}"
        )
    token_ids = np.full((len(sequences), width), pad_id, dtype=dtype)
    mask = np.zeros((len(sequences), width), dtype=bool)
    for row, ids in enumerate(sequences):
        token_ids[row, : len(ids)] = ids
        mask[row, : len(ids)] = True
    return token_ids, mask


def pad_batch(
    encoded: Sequence[EncodedTable],
    pad_id: int,
    width: Optional[int] = None,
    dtype: np.dtype = np.int64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack encoded sequences into ``(token_ids, attention_mask)``.

    ``width``/``dtype`` pass through to :func:`pad_token_lists`.
    """
    return pad_token_lists(
        [e.token_ids for e in encoded], pad_id, width=width, dtype=dtype
    )


def column_visibility(
    encoded: Sequence[EncodedTable],
    width: Optional[int] = None,
) -> np.ndarray:
    """TURL-style visibility matrix ``(B, S, S)``.

    Attention is strictly column-local: a token may attend only to tokens of
    its own column (plus itself).  Cross-column edges — including edges from
    other columns' cells to a column's ``[CLS]`` — are removed, matching the
    description of TURL's visibility matrix in Section 5.4.  The final
    ``[SEP]`` is deliberately *not* a global hub: a globally-visible token
    would re-leak full table context through two attention hops, defeating
    the restriction the baseline is supposed to model.
    """
    if width is None:
        width = max(e.length for e in encoded)
    batch = len(encoded)
    visibility = np.zeros((batch, width, width), dtype=bool)
    for row, item in enumerate(encoded):
        ids = np.full(width, -2, dtype=np.int64)  # -2 = padding (invisible)
        ids[: item.length] = item.column_ids
        same = (ids[:, None] == ids[None, :]) & (ids[None, :] != -2) & (ids[:, None] != -2)
        visibility[row] = same
        # every real token can always see itself (incl. the [SEP])
        idx = np.arange(item.length)
        visibility[row, idx, idx] = True
    return visibility
