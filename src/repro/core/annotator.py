"""Toolbox-style public API (mirrors the released DODUO toolbox).

The paper ships a toolbox usable "with just a few lines of Python code":

    >>> from repro import Doduo              # doctest: +SKIP
    >>> model = Doduo.train_on(dataset)      # doctest: +SKIP
    >>> annotated = model.annotate(table)    # doctest: +SKIP
    >>> annotated.coltypes, annotated.colrels, annotated.colemb  # doctest: +SKIP

This module provides that interface as a thin compatibility layer over a
single-entry :class:`~repro.serving.AnnotationGateway`: the annotator's
model is registered as the gateway's only entry, and every ``annotate*``
call runs through its :class:`~repro.serving.AnnotationEngine` — **one**
encoder forward pass per table (the legacy implementation ran up to four:
types, scores, a relation probe, embeddings) with bitwise-identical
outputs.  For cross-table batching, streaming, and per-request options use
the engine directly; for queued, deduped, multi-model, or asyncio serving
use the ``gateway`` property (or build your own registry + gateway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.tables import Column, Table, TableDataset
from ..nn import TransformerConfig
from ..text import WordPieceTokenizer
from .trainer import RELATION_TASK, TYPE_TASK, DoduoConfig, DoduoTrainer


@dataclass
class AnnotatedTable:
    """Result of annotating one table.

    Attributes
    ----------
    coltypes:
        Predicted type names per column (a list of names per column in
        multi-label mode, a single-element list otherwise).
    colrels:
        Predicted relation names per probed column pair.
    colemb:
        Contextualized column embeddings ``(num_cols, d)``.
    type_scores:
        Per-column ``{type_name: probability}`` over the label vocabulary —
        sigmoid scores in multi-label mode, a softmax distribution otherwise.
        Lets callers threshold or rank predictions instead of trusting the
        argmax.
    requested_pairs:
        The column pairs the relation head actually probed (gold pairs when
        the table carries relation annotations, else the subject-column
        fallback ``(0, j)``), so callers can tell probed-but-unlabeled pairs
        from annotated ones.
    """

    table: Table
    coltypes: List[List[str]]
    colrels: Dict[Tuple[int, int], List[str]] = field(default_factory=dict)
    colemb: Optional[np.ndarray] = None
    type_scores: List[Dict[str, float]] = field(default_factory=list)
    requested_pairs: List[Tuple[int, int]] = field(default_factory=list)

    def top_types(self, column: int, k: int = 3) -> List[Tuple[str, float]]:
        """The ``k`` highest-scoring type names for one column."""
        if not 0 <= column < len(self.type_scores):
            raise IndexError(
                f"column {column} out of range: table "
                f"{self.table.table_id!r} has scores for "
                f"{len(self.type_scores)} columns"
            )
        scores = self.type_scores[column]
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]


class Doduo:
    """High-level annotator wrapping a trained :class:`DoduoTrainer`."""

    def __init__(self, trainer: DoduoTrainer) -> None:
        self._trainer = trainer
        self._dataset = trainer.dataset
        self._gateway = None
        self._engine = None

    @classmethod
    def train_on(
        cls,
        dataset: TableDataset,
        tokenizer: WordPieceTokenizer,
        encoder_config: Optional[TransformerConfig] = None,
        config: Optional[DoduoConfig] = None,
        valid_dataset: Optional[TableDataset] = None,
        pretrained_encoder_state: Optional[Dict[str, np.ndarray]] = None,
    ) -> "Doduo":
        """Fine-tune a DODUO model on ``dataset`` and return the annotator."""
        if encoder_config is None:
            encoder_config = TransformerConfig(vocab_size=tokenizer.vocab_size)
        if config is None:
            tasks = (
                (TYPE_TASK, RELATION_TASK)
                if dataset.num_relations > 0
                else (TYPE_TASK,)
            )
            config = DoduoConfig(tasks=tasks, multi_label=dataset.num_relations > 0)
        trainer = DoduoTrainer(
            dataset,
            tokenizer,
            encoder_config,
            config,
            pretrained_encoder_state=pretrained_encoder_state,
        )
        trainer.train(valid_dataset=valid_dataset)
        return cls(trainer)

    @property
    def trainer(self) -> DoduoTrainer:
        return self._trainer

    @property
    def gateway(self):
        """The single-entry :class:`~repro.serving.AnnotationGateway` backing
        this annotator.

        Created lazily with default configuration, holding this trainer
        registered (pinned) as its only model.  Gives toolbox users the
        queued/asyncio serving APIs (``gateway.submit`` /
        ``await gateway.asubmit``) without further setup; callers who need
        custom batch sizes, cache tiers, or several models should build
        their own registry + gateway.
        """
        if self._gateway is None:
            # Deferred import: serving imports core.
            from ..serving import AnnotationEngine, AnnotationGateway

            self._gateway = AnnotationGateway.for_engine(
                AnnotationEngine(self._trainer)
            )
        return self._gateway

    @property
    def engine(self):
        """The :class:`~repro.serving.AnnotationEngine` the gateway routes
        this annotator's requests to.

        The synchronous ``annotate*`` wrappers below call it directly —
        same engine, same bytes, no worker thread in the way.  Memoized:
        the gateway's single entry is registered in-memory (pinned, never
        evicted), so one registry resolution suffices for the annotator's
        lifetime.
        """
        if self._engine is None:
            self._engine = self.gateway.registry.get()
        return self._engine

    def annotate(self, table: Table, with_embeddings: bool = True) -> AnnotatedTable:
        """Predict column types, relations, and embeddings for ``table``.

        Runs as a single-table engine batch, which is bitwise identical to
        the historical multi-pass implementation while encoding the table
        only once.
        """
        return self.engine.annotate(table, with_embeddings=with_embeddings).annotated

    def annotate_many(
        self, tables: Sequence[Table], with_embeddings: bool = True
    ) -> List[AnnotatedTable]:
        """Annotate several tables as one engine batch.

        The engine composes exact width buckets (:mod:`repro.encoding`), so
        batched outputs are bitwise identical to per-table :meth:`annotate`
        calls while same-width tables share forward passes.
        """
        from ..serving import AnnotationOptions  # deferred: serving imports core

        results = self.engine.annotate_batch(
            tables, options=AnnotationOptions(with_embeddings=with_embeddings)
        )
        return [result.annotated for result in results]

    def annotate_dataframe(
        self, rows: Sequence[Sequence[str]], headers: Optional[Sequence[str]] = None
    ) -> AnnotatedTable:
        """Annotate raw row-major data (the dataframe-like entry point)."""
        if not rows:
            raise ValueError("rows must be non-empty")
        num_cols = len(rows[0])
        if any(len(row) != num_cols for row in rows):
            raise ValueError("all rows must have the same number of cells")
        columns = [
            Column(
                values=[str(row[c]) for row in rows],
                header=headers[c] if headers else None,
            )
            for c in range(num_cols)
        ]
        return self.annotate(Table(columns=columns, table_id="adhoc"))
