"""Toolbox-style public API (mirrors the released DODUO toolbox).

The paper ships a toolbox usable "with just a few lines of Python code":

    >>> from repro import Doduo              # doctest: +SKIP
    >>> model = Doduo.train_on(dataset)      # doctest: +SKIP
    >>> annotated = model.annotate(table)    # doctest: +SKIP
    >>> annotated.coltypes, annotated.colrels, annotated.colemb  # doctest: +SKIP

This module provides that interface on top of :class:`DoduoTrainer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.tables import Column, Table, TableDataset
from ..nn import TransformerConfig
from ..text import WordPieceTokenizer
from .trainer import RELATION_TASK, TYPE_TASK, DoduoConfig, DoduoTrainer


@dataclass
class AnnotatedTable:
    """Result of annotating one table.

    Attributes
    ----------
    coltypes:
        Predicted type names per column (a list of names per column in
        multi-label mode, a single-element list otherwise).
    colrels:
        Predicted relation names per annotated column pair.
    colemb:
        Contextualized column embeddings ``(num_cols, d)``.
    type_scores:
        Per-column ``{type_name: probability}`` over the label vocabulary —
        sigmoid scores in multi-label mode, a softmax distribution otherwise.
        Lets callers threshold or rank predictions instead of trusting the
        argmax.
    """

    table: Table
    coltypes: List[List[str]]
    colrels: Dict[Tuple[int, int], List[str]] = field(default_factory=dict)
    colemb: Optional[np.ndarray] = None
    type_scores: List[Dict[str, float]] = field(default_factory=list)

    def top_types(self, column: int, k: int = 3) -> List[Tuple[str, float]]:
        """The ``k`` highest-scoring type names for one column."""
        scores = self.type_scores[column]
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]


class Doduo:
    """High-level annotator wrapping a trained :class:`DoduoTrainer`."""

    def __init__(self, trainer: DoduoTrainer) -> None:
        self._trainer = trainer
        self._dataset = trainer.dataset

    @classmethod
    def train_on(
        cls,
        dataset: TableDataset,
        tokenizer: WordPieceTokenizer,
        encoder_config: Optional[TransformerConfig] = None,
        config: Optional[DoduoConfig] = None,
        valid_dataset: Optional[TableDataset] = None,
        pretrained_encoder_state: Optional[Dict[str, np.ndarray]] = None,
    ) -> "Doduo":
        """Fine-tune a DODUO model on ``dataset`` and return the annotator."""
        if encoder_config is None:
            encoder_config = TransformerConfig(vocab_size=tokenizer.vocab_size)
        if config is None:
            tasks = (
                (TYPE_TASK, RELATION_TASK)
                if dataset.num_relations > 0
                else (TYPE_TASK,)
            )
            config = DoduoConfig(tasks=tasks, multi_label=dataset.num_relations > 0)
        trainer = DoduoTrainer(
            dataset,
            tokenizer,
            encoder_config,
            config,
            pretrained_encoder_state=pretrained_encoder_state,
        )
        trainer.train(valid_dataset=valid_dataset)
        return cls(trainer)

    @property
    def trainer(self) -> DoduoTrainer:
        return self._trainer

    def annotate(self, table: Table, with_embeddings: bool = True) -> AnnotatedTable:
        """Predict column types, relations, and embeddings for ``table``."""
        trainer = self._trainer
        type_predictions = trainer.predict_types([table])[0]
        coltypes: List[List[str]] = []
        if trainer.config.multi_label:
            for row in type_predictions:
                names = [
                    self._dataset.type_vocab[k] for k in np.flatnonzero(row)
                ]
                coltypes.append(names)
        else:
            coltypes = [
                [self._dataset.type_vocab[int(k)]] for k in type_predictions
            ]

        # Raw per-type scores, so callers can threshold or rank.
        if trainer.config.single_column:
            encoded = [
                trainer.serializer.serialize_column(table, c)
                for c in range(table.num_columns)
            ]
        else:
            encoded = [trainer.serializer.serialize_table(table)]
        probs = trainer.model.predict_type_probs(
            encoded, trainer.config.multi_label
        )
        type_scores = [
            {
                name: float(probs[c, k])
                for k, name in enumerate(self._dataset.type_vocab)
            }
            for c in range(table.num_columns)
        ]

        colrels: Dict[Tuple[int, int], List[str]] = {}
        has_rel_head = self._trainer.model.relation_head is not None
        if has_rel_head and table.num_columns > 1:
            pairs = sorted(table.relation_labels) or [
                (0, j) for j in range(1, table.num_columns)
            ]
            probe = Table(
                columns=table.columns,
                table_id=table.table_id,
                relation_labels={p: ["?"] for p in pairs},
            )
            rel_predictions = self._predict_relations_for(probe, pairs)
            colrels = rel_predictions

        embeddings = self._trainer.column_embeddings(table) if with_embeddings else None
        return AnnotatedTable(
            table=table, coltypes=coltypes, colrels=colrels, colemb=embeddings,
            type_scores=type_scores,
        )

    def _predict_relations_for(
        self, table: Table, pairs: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], List[str]]:
        trainer = self._trainer
        if trainer.config.single_column:
            encoded = [
                trainer.serializer.serialize_column_pair(table, i, j) for i, j in pairs
            ]
            index_pairs = [(b, 0, 1) for b in range(len(pairs))]
        else:
            encoded = [trainer.serializer.serialize_table(table)]
            index_pairs = [(0, i, j) for i, j in pairs]
        probs = trainer.model.predict_relation_probs(
            encoded, index_pairs, trainer.config.multi_label
        )
        result: Dict[Tuple[int, int], List[str]] = {}
        for row, pair in enumerate(pairs):
            if trainer.config.multi_label:
                mask = probs[row] >= 0.5
                if not mask.any():
                    mask[probs[row].argmax()] = True
                result[pair] = [
                    self._dataset.relation_vocab[k] for k in np.flatnonzero(mask)
                ]
            else:
                result[pair] = [self._dataset.relation_vocab[int(probs[row].argmax())]]
        return result

    def annotate_many(
        self, tables: Sequence[Table], with_embeddings: bool = True
    ) -> List[AnnotatedTable]:
        """Annotate several tables (convenience wrapper over :meth:`annotate`)."""
        return [self.annotate(t, with_embeddings=with_embeddings) for t in tables]

    def annotate_dataframe(
        self, rows: Sequence[Sequence[str]], headers: Optional[Sequence[str]] = None
    ) -> AnnotatedTable:
        """Annotate raw row-major data (the dataframe-like entry point)."""
        if not rows:
            raise ValueError("rows must be non-empty")
        num_cols = len(rows[0])
        if any(len(row) != num_cols for row in rows):
            raise ValueError("all rows must have the same number of cells")
        columns = [
            Column(
                values=[str(row[c]) for row in rows],
                header=headers[c] if headers else None,
            )
            for c in range(num_cols)
        ]
        return self.annotate(Table(columns=columns, table_id="adhoc"))
