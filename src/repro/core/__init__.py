"""DODUO core: serialization, model, multi-task trainer, toolbox API."""

from .annotator import AnnotatedTable, Doduo
from .calibration import (
    apply_temperature,
    calibrate_trainer,
    expected_calibration_error,
    fit_temperature,
)
from .model import ColumnRelationHead, ColumnTypeHead, DoduoModel
from .persistence import load_annotator, save_annotator
from .probe import (
    ProbeBudget,
    ProbePlan,
    ProbePlanner,
    relation_type_compatibility,
)
from .pipeline import (
    PipelineConfig,
    build_knowledge_base,
    build_pretrained_lm,
    clear_pretrain_cache,
    make_trainer,
)
from .serialization import (
    EncodedTable,
    SerializerConfig,
    TableSerializer,
    column_visibility,
    pad_batch,
    pad_token_lists,
)
from .trainer import (
    RELATION_TASK,
    TYPE_TASK,
    DoduoConfig,
    DoduoTrainer,
    TrainingHistory,
)
from .wide import (
    annotate_wide,
    cached_column_profile,
    column_profile,
    column_similarity,
    profile_similarity,
    split_columns_by_similarity,
    split_columns_contiguous,
    split_wide_table,
    subtable,
)

__all__ = [
    "AnnotatedTable",
    "ColumnRelationHead",
    "ColumnTypeHead",
    "Doduo",
    "DoduoConfig",
    "DoduoModel",
    "DoduoTrainer",
    "EncodedTable",
    "PipelineConfig",
    "ProbeBudget",
    "ProbePlan",
    "ProbePlanner",
    "RELATION_TASK",
    "SerializerConfig",
    "TYPE_TASK",
    "TableSerializer",
    "TrainingHistory",
    "annotate_wide",
    "apply_temperature",
    "calibrate_trainer",
    "build_knowledge_base",
    "build_pretrained_lm",
    "cached_column_profile",
    "clear_pretrain_cache",
    "column_profile",
    "column_similarity",
    "column_visibility",
    "profile_similarity",
    "relation_type_compatibility",
    "expected_calibration_error",
    "fit_temperature",
    "load_annotator",
    "make_trainer",
    "pad_batch",
    "pad_token_lists",
    "save_annotator",
    "split_columns_by_similarity",
    "split_columns_contiguous",
    "split_wide_table",
    "subtable",
]
