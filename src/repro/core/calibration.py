"""Confidence calibration for column-type predictions.

The toolbox exposes per-type probabilities (`AnnotatedTable.type_scores`);
for downstream decisions ("auto-apply annotations above 0.9, route the rest
to a human") those probabilities should be *calibrated* — a 0.9 should be
right about 90% of the time.  Fine-tuned neural classifiers are typically
overconfident; the standard one-parameter fix is temperature scaling (Guo et
al., 2017): divide the logits by a scalar T fitted on validation data.

* :func:`collect_type_logits` — run the trainer over a labelled dataset and
  return per-column logits with gold labels.
* :func:`fit_temperature` — grid-search the T that minimizes validation NLL.
* :func:`expected_calibration_error` — the standard ECE diagnostic.
* :func:`apply_temperature` — turn logits into calibrated probabilities.

Temperature scaling never changes the argmax, so accuracy is untouched —
only the confidence values move.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..datasets.tables import TableDataset
from .trainer import DoduoTrainer


def collect_type_logits(
    trainer: DoduoTrainer, dataset: TableDataset
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-column type logits ``(n, num_types)`` and gold label ids ``(n,)``.

    Single-label protocol: each column contributes its first gold type.
    """
    logits_rows: List[np.ndarray] = []
    labels: List[int] = []
    trainer.model.eval()
    for table in dataset.tables:
        if trainer.config.single_column:
            encoded = [
                trainer.serializer.serialize_column(table, c)
                for c in range(table.num_columns)
            ]
        else:
            encoded = [trainer.serializer.serialize_table(table)]
        logits = trainer.model.type_logits(encoded).data
        logits_rows.append(logits)
        for column in table.columns:
            if not column.type_labels:
                raise ValueError(
                    f"column without type label in table {table.table_id}"
                )
            labels.append(dataset.type_id(column.type_labels[0]))
    return np.concatenate(logits_rows, axis=0), np.asarray(labels)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def apply_temperature(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Calibrated softmax probabilities ``softmax(logits / T)``."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive: {temperature}")
    return _softmax(np.asarray(logits, dtype=np.float64) / temperature)


def negative_log_likelihood(
    logits: np.ndarray, labels: Sequence[int], temperature: float
) -> float:
    """Mean NLL of the gold labels under the temperature-scaled softmax."""
    probs = apply_temperature(logits, temperature)
    labels = np.asarray(labels)
    gold = probs[np.arange(len(labels)), labels]
    return float(-np.log(np.clip(gold, 1e-12, 1.0)).mean())


def fit_temperature(
    logits: np.ndarray,
    labels: Sequence[int],
    grid: Sequence[float] = tuple(np.geomspace(0.25, 8.0, 33)),
) -> float:
    """The grid temperature minimizing validation NLL.

    A geometric grid is ample for a one-parameter convex-ish objective; ties
    break toward 1.0 (no rescaling).
    """
    logits = np.asarray(logits, dtype=np.float64)
    if not len(logits):
        raise ValueError("cannot fit a temperature on an empty set")
    best_t, best_nll = 1.0, negative_log_likelihood(logits, labels, 1.0)
    for temperature in grid:
        nll = negative_log_likelihood(logits, labels, float(temperature))
        if nll < best_nll - 1e-12:
            best_t, best_nll = float(temperature), nll
    return best_t


def expected_calibration_error(
    probs: np.ndarray, labels: Sequence[int], num_bins: int = 10
) -> float:
    """Standard ECE: confidence-vs-accuracy gap, weighted over bins.

    Uses the top-1 confidence per sample, with equal-width bins on [0, 1].
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels)
    if probs.ndim != 2 or len(probs) != len(labels):
        raise ValueError("probs must be (n, classes) aligned with labels")
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1: {num_bins}")
    confidence = probs.max(axis=1)
    correct = probs.argmax(axis=1) == labels
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    ece = 0.0
    n = len(labels)
    for lo, hi in zip(edges[:-1], edges[1:]):
        in_bin = (confidence > lo) & (confidence <= hi)
        if lo == 0.0:
            in_bin |= confidence == 0.0
        count = int(in_bin.sum())
        if count == 0:
            continue
        gap = abs(confidence[in_bin].mean() - correct[in_bin].mean())
        ece += (count / n) * gap
    return float(ece)


def calibrate_trainer(
    trainer: DoduoTrainer, valid_dataset: TableDataset
) -> float:
    """Fit and return the trainer's temperature on a validation set.

    Only meaningful for single-label (softmax) models; multi-label BCE
    models calibrate per label and are out of scope here.
    """
    if trainer.config.multi_label:
        raise ValueError(
            "temperature scaling is implemented for single-label models"
        )
    logits, labels = collect_type_logits(trainer, valid_dataset)
    return fit_temperature(logits, labels)
