"""End-to-end pipeline helpers: KB -> corpus -> tokenizer -> pre-train -> fine-tune.

Benchmarks and examples share this plumbing so every experiment builds its
models the same way (and caches the expensive pre-training step per
configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..datasets.kb import KnowledgeBase
from ..datasets.tables import TableDataset
from ..nn import TransformerConfig
from ..pretrain import PretrainResult, pretrain_mlm
from ..text import WordPieceTokenizer, train_wordpiece
from .trainer import DoduoConfig, DoduoTrainer

_PRETRAIN_CACHE: Dict[Tuple, Tuple[WordPieceTokenizer, PretrainResult]] = {}


@dataclass(frozen=True)
class PipelineConfig:
    """Controls the shared substrate of an experiment."""

    kb_seed: int = 13
    kb_scale: float = 1.0
    vocab_size: int = 2048
    hidden_dim: int = 96
    num_layers: int = 3
    num_heads: int = 4
    ffn_dim: int = 192
    max_position: int = 256
    num_segments: int = 12
    dropout: float = 0.1
    pretrain_epochs: int = 2
    pretrain_batch_size: int = 32
    pretrain_lr: float = 1e-3
    pretrain_seed: int = 5

    def encoder_config(self, vocab_size: int) -> TransformerConfig:
        return TransformerConfig(
            vocab_size=vocab_size,
            hidden_dim=self.hidden_dim,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            ffn_dim=self.ffn_dim,
            max_position=self.max_position,
            num_segments=self.num_segments,
            dropout=self.dropout,
        )


def build_knowledge_base(config: PipelineConfig) -> KnowledgeBase:
    return KnowledgeBase(np.random.default_rng(config.kb_seed), scale=config.kb_scale)


def build_pretrained_lm(
    config: PipelineConfig,
    kb: Optional[KnowledgeBase] = None,
    extra_corpus: Optional[Tuple[str, ...]] = None,
    use_cache: bool = True,
) -> Tuple[WordPieceTokenizer, PretrainResult]:
    """Build the tokenizer and masked-LM pre-trained on the verbalized KB.

    Results are cached per configuration because several benchmarks share the
    same substrate.
    """
    cache_key = (config, extra_corpus)
    if use_cache and cache_key in _PRETRAIN_CACHE:
        return _PRETRAIN_CACHE[cache_key]

    if kb is None:
        kb = build_knowledge_base(config)
    corpus = kb.verbalize(np.random.default_rng(config.pretrain_seed))
    if extra_corpus:
        corpus = list(corpus) + list(extra_corpus)
    tokenizer = train_wordpiece(corpus, vocab_size=config.vocab_size)
    encoder_config = config.encoder_config(tokenizer.vocab_size)
    result = pretrain_mlm(
        corpus,
        tokenizer,
        encoder_config,
        epochs=config.pretrain_epochs,
        batch_size=config.pretrain_batch_size,
        lr=config.pretrain_lr,
        seed=config.pretrain_seed,
    )
    if use_cache:
        _PRETRAIN_CACHE[cache_key] = (tokenizer, result)
    return tokenizer, result


def make_trainer(
    train_dataset: TableDataset,
    tokenizer: WordPieceTokenizer,
    pipeline_config: PipelineConfig,
    doduo_config: DoduoConfig,
    pretrained: Optional[PretrainResult] = None,
) -> DoduoTrainer:
    """Construct a :class:`DoduoTrainer`, optionally warm-started from the
    pre-trained encoder (the paper's fine-tuning setup)."""
    encoder_config = pipeline_config.encoder_config(tokenizer.vocab_size)
    state = pretrained.encoder.state_dict() if pretrained is not None else None
    return DoduoTrainer(
        train_dataset,
        tokenizer,
        encoder_config,
        doduo_config,
        pretrained_encoder_state=state,
    )


def clear_pretrain_cache() -> None:
    _PRETRAIN_CACHE.clear()
