"""No-tape inference sessions: the optimized twin of the autograd forward.

:class:`InferenceSession` captures a :class:`~repro.core.model.DoduoModel`'s
weights once and replays the encoder forward with the kernels from
:mod:`repro.nn.kernels`: a fused QKV GEMM, matmuls landing in preallocated
workspace buffers, and in-place softmax/layernorm/GELU.  Every operation
mirrors the reference Tensor path's exact sequence (the reference defines
the bytes), and the shape-dependent fusions are proof-gated, so a session's
outputs are bitwise identical to the autograd forward at the same weight
dtype — ``tests/test_kernel_identity.py`` pins this differentially.

Dtype policy
------------
A session is built for one compute dtype:

* ``float32`` — the serving default.  Captured arrays *are* the live
  parameter arrays (no copy), plus a packed QKV copy per block.
* ``float64`` — the high-precision path used by the differential harness
  and available through ``EngineConfig.dtype``.  Weights are cast once at
  session build.
* ``int8`` — :class:`QuantizedInferenceSession`: Linear/QKV weights
  round-trip through per-channel symmetric int8 (float32 accumulate),
  which is *deliberately not byte-identical*.  It therefore skips the
  bitwise proof gates entirely and ships behind the accuracy gate in
  :mod:`repro.nn.quant` instead: one calibration pass records max drift
  per (layer, shape) vs the float32 reference, and drift past tolerance
  disproves the session — it permanently falls back to float32 and every
  fallback bumps the model's ``quant_fallbacks`` odometer.

Staleness
---------
``stale()`` detects any parameter whose ``.data`` array was **replaced**
(``load_state_dict``, checkpoint restore, manual surgery) by object
identity, and :meth:`DoduoModel.train` drops sessions so optimizer steps —
which update weights in place — can never serve through a stale packed QKV
or float64 cast.  Code that mutates weights in place *outside* the training
loop must call ``DoduoModel.invalidate_sessions()``, the same contract the
trainer's ``invalidate_fingerprint()`` already imposes for the result
caches (which would otherwise serve stale hits anyway).

The hidden-state array returned by :meth:`encode_batch` aliases workspace
memory: it is valid until the next call on the same session.  Callers
gather what they need (``[CLS]`` rows) before re-entering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.kernels import (
    Workspace,
    fused_qkv,
    gelu_,
    layer_norm_,
    matmul_into,
    softmax_,
)
from .serialization import EncodedTable, column_visibility, pad_batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .model import DoduoModel

#: Supported compute dtypes for inference sessions.
INFERENCE_DTYPES = ("float32", "float64")

#: Accuracy-gated session dtypes: not byte-identical to the reference,
#: dispatched by :meth:`DoduoModel.inference_session` to
#: :class:`QuantizedInferenceSession` and fenced off from the float
#: cache partitions by the ``precision`` fingerprint fold.
QUANTIZED_DTYPES = ("int8",)

#: Items from the first batch used for the one-shot calibration pass.
CALIBRATION_ITEMS = 8


def _sigmoid_gelu_(x: np.ndarray, ws, scratch: str = "gelu") -> np.ndarray:
    """In-place sigmoid GELU ``x * sigmoid(1.702 x)`` (quantized path only).

    Four ufunc dispatches against the reference tanh chain's nine; the
    approximation differs from exact GELU by at most ~0.021 per element,
    which the accuracy gate measures rather than assumes.  Never call
    this from the proof-gated float path — it is not bitwise anything.
    """
    t = ws.take(scratch, x.shape, x.dtype)
    np.multiply(x, -1.702, out=t)
    np.exp(t, out=t)
    t += 1.0
    np.divide(x, t, out=x)
    return x


def _lean_layer_norm_(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float
) -> np.ndarray:
    """Layer norm with the variance reduced by one einsum (quantized path).

    Same math as :func:`repro.nn.kernels.layer_norm_` but the squared
    deviations never materialize as a full-size scratch array — the
    einsum contracts them directly to per-row sums — and the three
    follow-up ops run on the tiny ``(batch, seq)`` reduction.  Summation
    order differs from the reference, so bytes differ: accuracy-gated
    sessions only.
    """
    inv_dim = 1.0 / x.shape[-1]
    mu = np.einsum("...i->...", x)
    mu *= inv_dim
    np.subtract(x, mu[..., None], out=x)
    var = np.einsum("...i,...i->...", x, x)
    var *= inv_dim
    var += eps
    np.sqrt(var, out=var)
    np.divide(x, var[..., None], out=x)
    np.multiply(x, gamma, out=x)
    np.add(x, beta, out=x)
    return x


class _BlockWeights:
    """Flat per-block weight bundle (plain ndarrays, session dtype)."""

    __slots__ = (
        "w_q", "b_q", "w_k", "b_k", "w_v", "b_v", "w_qkv", "b_qkv",
        "w_o", "b_o", "scale32", "heads", "head_dim",
        "attn_gamma", "attn_beta", "attn_eps",
        "w_in", "b_in", "w_out", "b_out",
        "ffn_gamma", "ffn_beta", "ffn_eps",
    )


class InferenceSession:
    """One model × one compute dtype, ready for repeated no-tape forwards."""

    def __init__(self, model: "DoduoModel", dtype: str = "float32") -> None:
        if dtype not in INFERENCE_DTYPES:
            raise ValueError(
                f"unsupported inference dtype {dtype!r}; expected one of {INFERENCE_DTYPES}"
            )
        self.model = model
        self.dtype = dtype
        self._np_dtype = np.dtype(dtype)
        self.workspace = Workspace()
        self._sources: List[Tuple[object, np.ndarray]] = []
        # When set to a list, _forward appends a copy of every block's
        # output (the int8 calibration pass taps both the quantized and
        # the reference session this way).  None in steady state: the
        # check is a no-op branch, so serving bytes are untouched.
        self._capture: Optional[List[np.ndarray]] = None

        encoder = model.encoder
        self.max_position = encoder.config.max_position
        self.num_segments = encoder.config.num_segments
        self.tok_w = self._arr(encoder.token_embedding.weight)
        self.pos_w = self._arr(encoder.position_embedding.weight)
        self.seg_w = self._arr(encoder.segment_embedding.weight)
        self.emb_gamma = self._arr(encoder.embedding_norm.gamma)
        self.emb_beta = self._arr(encoder.embedding_norm.beta)
        self.emb_eps = encoder.embedding_norm.eps

        self.blocks: List[_BlockWeights] = []
        for block in encoder.blocks:
            attn = block.attention
            bw = _BlockWeights()
            bw.w_q = self._arr(attn.query.weight)
            bw.b_q = self._arr(attn.query.bias)
            bw.w_k = self._arr(attn.key.weight)
            bw.b_k = self._arr(attn.key.bias)
            bw.w_v = self._arr(attn.value.weight)
            bw.b_v = self._arr(attn.value.bias)
            bw.w_qkv, bw.b_qkv = attn.packed_qkv(dtype=self._np_dtype)
            bw.w_o = self._arr(attn.output.weight)
            bw.b_o = self._arr(attn.output.bias)
            # The reference path multiplies scores by Tensor(scale), which
            # wraps the python float as a float32 scalar regardless of the
            # activation dtype — replicated exactly here.
            bw.scale32 = np.asarray(attn.scale, dtype=np.float32)
            bw.heads = attn.num_heads
            bw.head_dim = attn.head_dim
            bw.attn_gamma = self._arr(block.attention_norm.gamma)
            bw.attn_beta = self._arr(block.attention_norm.beta)
            bw.attn_eps = block.attention_norm.eps
            bw.w_in = self._arr(block.ffn_in.weight)
            bw.b_in = self._arr(block.ffn_in.bias)
            bw.w_out = self._arr(block.ffn_out.weight)
            bw.b_out = self._arr(block.ffn_out.bias)
            bw.ffn_gamma = self._arr(block.ffn_norm.gamma)
            bw.ffn_beta = self._arr(block.ffn_norm.beta)
            bw.ffn_eps = block.ffn_norm.eps
            self.blocks.append(bw)

        if model.numeric_embedding is not None:
            self.num_w: Optional[np.ndarray] = self._arr(model.numeric_embedding.weight)
        else:
            self.num_w = None
        self.th_w1 = self._arr(model.type_head.dense.weight)
        self.th_b1 = self._arr(model.type_head.dense.bias)
        self.th_w2 = self._arr(model.type_head.out.weight)
        self.th_b2 = self._arr(model.type_head.out.bias)
        if model.relation_head is not None:
            self.rh_w1: Optional[np.ndarray] = self._arr(model.relation_head.dense.weight)
            self.rh_b1 = self._arr(model.relation_head.dense.bias)
            self.rh_w2 = self._arr(model.relation_head.out.weight)
            self.rh_b2 = self._arr(model.relation_head.out.bias)
        else:
            self.rh_w1 = None
            self.rh_b1 = self.rh_w2 = self.rh_b2 = None

    # -- weight capture ----------------------------------------------------------
    def _arr(self, param) -> np.ndarray:
        """Capture one parameter: share the live array when the dtype
        matches, cast once otherwise; record the source for staleness."""
        data = param.data
        self._sources.append((param, data))
        if data.dtype == self._np_dtype:
            return data
        return data.astype(self._np_dtype)

    def stale(self) -> bool:
        """True when any captured parameter's array has been replaced."""
        return any(param.data is not source for param, source in self._sources)

    # -- forward -----------------------------------------------------------------
    def encode_batch(
        self, encoded: Sequence[EncodedTable], width: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """No-tape twin of :meth:`DoduoModel.encode_batch`.

        Same preprocessing (padding, segments, visibility, numeric bins),
        same odometer updates, same bytes — but returns a plain ndarray
        that aliases workspace memory (valid until the next session call).
        ``width`` forces the padded width (must be >= the longest item), so
        the column cache can encode misses at the exact bucket width.
        """
        model = self.model
        model.encode_calls += 1
        pad_id = 0  # PAD is always id 0 in our vocabulary
        token_ids, attention = pad_batch(encoded, pad_id, width=width)
        padded_width = token_ids.shape[1]
        model.real_tokens += int(sum(e.length for e in encoded))
        model.padded_tokens += int(token_ids.size)
        segments = np.zeros_like(token_ids)
        if model.use_column_segments:
            for row, item in enumerate(encoded):
                segment_row = np.clip(item.column_ids + 1, 0, self.num_segments - 1)
                segments[row, : item.length] = segment_row
        visibility = None
        if model.use_visibility_matrix:
            visibility = column_visibility(encoded, width=padded_width)
        numeric = None
        if self.num_w is not None:
            numeric = np.zeros_like(token_ids)
            for row, item in enumerate(encoded):
                if item.numeric_ids is not None:
                    numeric[row, : item.length] = item.numeric_ids
        hidden = self._forward(token_ids, attention, segments, visibility, numeric)
        locations = []
        for row, item in enumerate(encoded):
            for pos in item.cls_positions:
                locations.append((row, pos))
        return hidden, np.asarray(locations, dtype=np.int64)

    def _forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray],
        segment_ids: np.ndarray,
        visibility: Optional[np.ndarray],
        numeric_ids: Optional[np.ndarray],
    ) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        batch, seq = token_ids.shape
        if seq > self.max_position:
            raise ValueError(
                f"sequence length {seq} exceeds max_position {self.max_position}"
            )
        if token_ids.size and (
            int(token_ids.min()) < 0 or int(token_ids.max()) >= self.tok_w.shape[0]
        ):
            raise IndexError("token id out of range for embedding")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        # (tok + pos) + seg [+ numeric] in the reference's left-to-right
        # order; in-place adds on the fresh gather are bitwise neutral.
        x = self.tok_w[token_ids]
        np.add(x, self.pos_w[positions], out=x)
        np.add(x, self.seg_w[segment_ids], out=x)
        if numeric_ids is not None:
            np.add(x, self.num_w[numeric_ids], out=x)
        layer_norm_(x, self.emb_gamma, self.emb_beta, self.emb_eps, self.workspace)
        if visibility is not None:
            bias = F.visibility_bias(visibility)
            if attention_mask is not None:
                bias = bias + F.attention_bias_from_mask(attention_mask)
        elif attention_mask is not None:
            bias = F.attention_bias_from_mask(attention_mask)
        else:
            bias = None
        for bw in self.blocks:
            x = self._block(x, bias, bw)
            if self._capture is not None:
                # Block outputs alias reused workspace buffers; copy.
                self._capture.append(np.array(x, copy=True))
        return x

    def _block(
        self, x: np.ndarray, bias: Optional[np.ndarray], bw: _BlockWeights
    ) -> np.ndarray:
        batch, seq, dim = x.shape
        ws = self.workspace
        q, k, v = fused_qkv(
            x, bw.w_q, bw.b_q, bw.w_k, bw.b_k, bw.w_v, bw.b_v, bw.w_qkv, bw.b_qkv, ws
        )
        q = q.reshape(batch, seq, bw.heads, bw.head_dim).transpose(0, 2, 1, 3)
        k = k.reshape(batch, seq, bw.heads, bw.head_dim).transpose(0, 2, 1, 3)
        v = v.reshape(batch, seq, bw.heads, bw.head_dim).transpose(0, 2, 1, 3)
        scores = matmul_into(q, k.swapaxes(-1, -2), ws, "scores")
        np.multiply(scores, bw.scale32, out=scores)
        if bias is not None:
            np.add(scores, bias, out=scores)
        softmax_(scores)
        context = matmul_into(scores, v, ws, "context")
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        attended = matmul_into(context, bw.w_o, ws, "attn_out")
        attended += bw.b_o
        np.add(x, attended, out=attended)
        x = layer_norm_(attended, bw.attn_gamma, bw.attn_beta, bw.attn_eps, ws)
        hidden = matmul_into(x, bw.w_in, ws, "ffn_h")
        hidden += bw.b_in
        gelu_(hidden, ws)
        out = matmul_into(hidden, bw.w_out, ws, "ffn_o")
        out += bw.b_out
        np.add(x, out, out=out)
        return layer_norm_(out, bw.ffn_gamma, bw.ffn_beta, bw.ffn_eps, ws)

    # -- heads -------------------------------------------------------------------
    def type_head(self, states: np.ndarray) -> np.ndarray:
        """Raw-numpy twin of :class:`ColumnTypeHead` (same op sequence)."""
        return self._head(states, self.th_w1, self.th_b1, self.th_w2, self.th_b2)

    def relation_head(self, pair_states: np.ndarray) -> np.ndarray:
        """Raw-numpy twin of :class:`ColumnRelationHead`."""
        if self.rh_w1 is None:
            raise RuntimeError("model was built without a relation head")
        return self._head(pair_states, self.rh_w1, self.rh_b1, self.rh_w2, self.rh_b2)

    @staticmethod
    def _head(states, w1, b1, w2, b2) -> np.ndarray:
        hidden = np.matmul(states, w1) + b1
        # Reference GELU sequence (repro.nn.functional.gelu) on fresh
        # arrays: head inputs are small (rows = columns of one table), so
        # workspace reuse buys nothing here and op-order fidelity is what
        # keeps the bytes identical.
        squared = hidden * hidden
        inner = F._SQRT_2_OVER_PI * (hidden + 0.044715 * (squared * hidden))
        activated = 0.5 * hidden * (1.0 + np.tanh(inner))
        return np.matmul(activated, w2) + b2


class QuantizedInferenceSession(InferenceSession):
    """Int8 weights, float32 accumulate, accuracy-gated — not byte-gated.

    Every GEMM weight (packed QKV, attention output, FFN, both heads)
    round-trips through per-channel symmetric int8
    (:func:`repro.nn.quant.quantize_dequantize`) at session build, then
    compute proceeds in float32 on the dequantized arrays: numpy has no
    int8 GEMM, so the weight *representation* is int8 (what an arena
    persists, what the fingerprint sees) while the *arithmetic* is the
    float32 BLAS path.  When the model is attached to an int8 arena the
    round-trip already happened at arena build — the captured arrays are
    the arena's shared dequantized views and no private copy is made.

    Because byte-identity is deliberately off the table, this session is
    licensed to skip machinery that exists only to defend it:

    * ``_block`` issues workspace GEMMs directly — no proof-cache lookups
      and, crucially, no dark-launch double-compute per novel shape.
    * ``merge_head_groups`` tells callers to collapse per-table head
      chains into one bucket-wide GEMM.

    The license is the **accuracy gate**: the first ``encode_batch``
    runs a bounded calibration pass (quantized vs float32 reference),
    records the max drift per (layer, shape) in the proof cache under
    :data:`repro.nn.quant.DRIFT_KEY_PREFIX` keys, and a summary verdict
    under :data:`~repro.nn.quant.GATE_KEY`.  Drift past tolerance
    disproves the gate: the session permanently delegates to the
    memoized float32 session and bumps ``model.quant_fallbacks`` once
    per delegated call.  A persisted ``GATE_KEY`` verdict (hydrated into
    ``workspace.proofs`` before first use) skips calibration entirely.
    """

    def __init__(self, model: "DoduoModel") -> None:
        super().__init__(model, "float32")
        self.dtype = "int8"
        self.fallback = False
        self._calibrated = False
        arena = getattr(model, "_weight_arena", None)
        if arena is not None and arena.precision == "int8":
            # Parameters already hold the arena's dequantized views, and
            # per-channel quantization commutes with column concat, so
            # the packed QKV built from them equals quantizing the pack.
            pass
        else:
            from ..nn.quant import quantize_dequantize

            for bw in self.blocks:
                bw.w_qkv = quantize_dequantize(bw.w_qkv)
                bw.w_o = quantize_dequantize(bw.w_o)
                bw.w_in = quantize_dequantize(bw.w_in)
                bw.w_out = quantize_dequantize(bw.w_out)
            self.th_w1 = quantize_dequantize(self.th_w1)
            self.th_w2 = quantize_dequantize(self.th_w2)
            if self.rh_w1 is not None:
                self.rh_w1 = quantize_dequantize(self.rh_w1)
                self.rh_w2 = quantize_dequantize(self.rh_w2)
        # Fold the attention scale into the Q columns of the packed QKV:
        # (s·q) @ kᵀ == s·(q @ kᵀ) exactly in real arithmetic, so the
        # full (seq × seq) scores multiply disappears from every block.
        # ``packed_qkv`` hands back fresh concat copies (and the
        # quantize branch above replaced them again), so the in-place
        # scale never touches arena views or live parameters.  Rounding
        # differs from the reference order — accuracy gate territory.
        for bw in self.blocks:
            dim = bw.w_qkv.shape[0]
            qcols = bw.w_qkv[:, :dim]
            np.multiply(qcols, bw.scale32, out=qcols)
            qbias = bw.b_qkv[:dim]
            np.multiply(qbias, bw.scale32, out=qbias)

    @property
    def merge_head_groups(self) -> bool:
        """Collapse per-table head groups into one GEMM — unless the gate
        failed, in which case the float32 fallback keeps reference
        (per-group) behavior."""
        return not self.fallback

    # -- gate --------------------------------------------------------------------
    def _float_session(self) -> InferenceSession:
        return self.model.inference_session("float32")

    def _calibrate(
        self, encoded: Sequence[EncodedTable], width: Optional[int]
    ) -> None:
        from ..nn import quant

        proofs = self.workspace.proofs
        persisted = proofs.verdict(quant.GATE_KEY)
        if persisted is not None:
            self._calibrated = True
            self.fallback = not persisted
            return
        sample = list(encoded[:CALIBRATION_ITEMS])
        if not sample:
            return  # nothing to measure yet; retry on the next batch
        self._calibrated = True
        reference = self._float_session()
        self._capture = []
        hidden_q, loc_q = super().encode_batch(sample, width=width)
        captured_q, self._capture = self._capture, None
        cls_q = np.array(hidden_q[(loc_q[:, 0], loc_q[:, 1])], copy=True)
        reference._capture = []
        hidden_f, loc_f = reference.encode_batch(sample, width=width)
        captured_f, reference._capture = reference._capture, None
        cls_f = np.array(hidden_f[(loc_f[:, 0], loc_f[:, 1])], copy=True)
        ok = True
        for i, (xq, xf) in enumerate(zip(captured_q, captured_f)):
            drift = quant.max_drift(xq, xf)
            layer_ok = drift <= quant.HIDDEN_DRIFT_TOLERANCE
            ok = ok and layer_ok
            proofs.record(
                quant.drift_key(f"block{i}", xq.shape), layer_ok, drift=drift
            )
        logits_q = InferenceSession.type_head(self, cls_q)
        logits_f = reference.type_head(cls_f)
        drift = quant.max_drift(logits_q, logits_f)
        head_ok = drift <= quant.LOGIT_DRIFT_TOLERANCE
        ok = ok and head_ok
        proofs.record(
            quant.drift_key("type_head", logits_q.shape), head_ok, drift=drift
        )
        if self.rh_w1 is not None and cls_q.shape[0] >= 2:
            pairs_q = np.concatenate([cls_q[:-1], cls_q[1:]], axis=-1)
            pairs_f = np.concatenate([cls_f[:-1], cls_f[1:]], axis=-1)
            rel_q = InferenceSession.relation_head(self, pairs_q)
            rel_f = reference.relation_head(pairs_f)
            drift = quant.max_drift(rel_q, rel_f)
            rel_ok = drift <= quant.LOGIT_DRIFT_TOLERANCE
            ok = ok and rel_ok
            proofs.record(
                quant.drift_key("relation_head", rel_q.shape), rel_ok, drift=drift
            )
        proofs.record(quant.GATE_KEY, ok)
        self.fallback = not ok

    # -- forward -----------------------------------------------------------------
    def encode_batch(
        self, encoded: Sequence[EncodedTable], width: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not self._calibrated:
            self._calibrate(encoded, width)
        if self.fallback:
            self.model.quant_fallbacks += 1
            return self._float_session().encode_batch(encoded, width=width)
        return super().encode_batch(encoded, width=width)

    def _block(
        self, x: np.ndarray, bias: Optional[np.ndarray], bw: _BlockWeights
    ) -> np.ndarray:
        # Same workspace buffer names as the proof-gated base block, but
        # every GEMM lands in its buffer unconditionally — the accuracy
        # gate replaces the per-shape bitwise proof, so no verdict
        # lookups and no dark-launch reference recompute — and the
        # elementwise chain is the fused variant: attention scale is
        # pre-folded into the Q weights, GELU is the 4-op sigmoid form,
        # layer norm reduces variance by einsum.
        batch, seq, dim = x.shape
        ws = self.workspace
        qkv = np.matmul(
            x, bw.w_qkv, out=ws.take("qkv", (batch, seq, 3 * dim), x.dtype)
        )
        qkv += bw.b_qkv
        q = qkv[..., :dim].reshape(batch, seq, bw.heads, bw.head_dim)
        k = qkv[..., dim : 2 * dim].reshape(batch, seq, bw.heads, bw.head_dim)
        v = qkv[..., 2 * dim :].reshape(batch, seq, bw.heads, bw.head_dim)
        q = q.transpose(0, 2, 1, 3)
        k = k.transpose(0, 2, 1, 3)
        v = v.transpose(0, 2, 1, 3)
        scores = np.matmul(
            q,
            k.swapaxes(-1, -2),
            out=ws.take("scores", (batch, bw.heads, seq, seq), x.dtype),
        )
        if bias is not None:
            np.add(scores, bias, out=scores)
        softmax_(scores)
        context = np.matmul(
            scores, v, out=ws.take("context", (batch, bw.heads, seq, bw.head_dim), x.dtype)
        )
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        attended = np.matmul(
            context, bw.w_o, out=ws.take("attn_out", (batch, seq, dim), x.dtype)
        )
        attended += bw.b_o
        np.add(x, attended, out=attended)
        x = _lean_layer_norm_(attended, bw.attn_gamma, bw.attn_beta, bw.attn_eps)
        hidden = np.matmul(
            x, bw.w_in, out=ws.take("ffn_h", (batch, seq, bw.w_in.shape[1]), x.dtype)
        )
        hidden += bw.b_in
        _sigmoid_gelu_(hidden, ws)
        out = np.matmul(
            hidden, bw.w_out, out=ws.take("ffn_o", (batch, seq, dim), x.dtype)
        )
        out += bw.b_out
        np.add(x, out, out=out)
        return _lean_layer_norm_(out, bw.ffn_gamma, bw.ffn_beta, bw.ffn_eps)

    # -- heads -------------------------------------------------------------------
    def type_head(self, states: np.ndarray) -> np.ndarray:
        if self.fallback:
            self.model.quant_fallbacks += 1
            return self._float_session().type_head(states)
        return super().type_head(states)

    def relation_head(self, pair_states: np.ndarray) -> np.ndarray:
        if self.fallback:
            self.model.quant_fallbacks += 1
            return self._float_session().relation_head(pair_states)
        return super().relation_head(pair_states)

    @staticmethod
    def _head(states, w1, b1, w2, b2) -> np.ndarray:
        # Lean head chain: sigmoid GELU on fresh arrays (head inputs are
        # a handful of rows — no workspace needed).  Calibration runs
        # the drift check through this same code path, so the gate
        # verdict covers exactly what serving executes.
        hidden = np.matmul(states, w1)
        hidden += b1
        t = np.multiply(hidden, -1.702)
        np.exp(t, out=t)
        t += 1.0
        np.divide(hidden, t, out=hidden)
        out = np.matmul(hidden, w2)
        out += b2
        return out
