"""Numeric-aware input features (the paper's Section 3.1 future work).

DODUO casts every cell to a string, which the paper flags as a limitation
for numeric columns: "There has been extensions of the Transformer models to
support numeric data [60] and providing such direct support of numeric data
is important future work."  Table 5 quantifies the damage — ``ranking``
(33.2 F1) and ``capacity`` (62.6 F1) are the model's worst types.

This module implements that future-work extension at the input layer: every
cell is mapped to a *magnitude bin* — non-numeric, zero, one of twelve
log10-magnitude buckets, or date-like — and the model adds a learned
embedding of the bin to each of the cell's tokens.  The WordPiece digit-pair
tokens tell the model *which digits* a number has; the magnitude embedding
tells it *how big* the number is, which digit pieces encode only indirectly
through token count.

Enabled with ``DoduoConfig(use_numeric_embeddings=True)``; measured by
``benchmarks/bench_ablation_numeric.py`` on the Table 5 numeric types.
"""

from __future__ import annotations

import re
from typing import List

# Bin layout: 0 non-numeric, 1 zero, 2..13 log10 magnitude in [-4, 7]
# (clipped), 14 date-like, 15 reserved for non-finite parses.
NON_NUMERIC_BIN = 0
ZERO_BIN = 1
_MAGNITUDE_BIN_START = 2
_MAGNITUDE_MIN_EXP = -4
_MAGNITUDE_MAX_EXP = 7
DATE_BIN = 14
OTHER_NUMERIC_BIN = 15
NUM_MAGNITUDE_BINS = 16

_DATE_RE = re.compile(
    r"^\s*\d{1,4}[/\-.]\d{1,2}[/\-.]\d{1,4}\s*$"
)
_STRIP_CHARS = " ,$%€£+"


def magnitude_bin(value: str) -> int:
    """Map one cell value to its magnitude bin.

    The parse is deliberately permissive about formatting (thousands
    separators, currency signs, trailing units like ``"120 kg"`` are *not*
    accepted — mixed text stays non-numeric, matching the %num measure of
    Table 5 which counts only fully castable cells).
    """
    text = value.strip()
    if not text:
        return NON_NUMERIC_BIN
    if _DATE_RE.match(text):
        return DATE_BIN
    cleaned = text.strip(_STRIP_CHARS).replace(",", "")
    if not cleaned:
        return NON_NUMERIC_BIN
    try:
        number = float(cleaned)
    except ValueError:
        return NON_NUMERIC_BIN
    if number != number or number in (float("inf"), float("-inf")):
        return OTHER_NUMERIC_BIN
    magnitude = abs(number)
    if magnitude == 0.0:
        return ZERO_BIN
    exponent = 0
    while magnitude >= 10.0 and exponent < _MAGNITUDE_MAX_EXP:
        magnitude /= 10.0
        exponent += 1
    while magnitude < 1.0 and exponent > _MAGNITUDE_MIN_EXP:
        magnitude *= 10.0
        exponent -= 1
    return _MAGNITUDE_BIN_START + (exponent - _MAGNITUDE_MIN_EXP)


def column_magnitude_bins(values: List[str]) -> List[int]:
    """Magnitude bins for every value of a column."""
    return [magnitude_bin(v) for v in values]
