"""Wide-table annotation (Section 6.2 of the paper).

Table 8 shows that with MaxToken/col = 32 the encoder fits about 15 columns —
enough for Web Tables (4 columns on average) but not for enterprise or open
data (12–16 columns, often more).  The paper's prescription:

    "a reasonable option is to first split the wide table into clusters of
    relevant columns (maybe by some user-defined rules), then apply Doduo on
    each cluster.  In this case, Doduo still has the advantage of leveraging
    partial context of the input table."

This module implements that prescription.  Three grouping strategies are
provided:

* ``contiguous`` — consecutive chunks, preserving the table's column order
  (the cheapest rule, right when adjacent columns are related, as is common
  in hand-authored spreadsheets).
* ``similarity`` — greedy agglomerative grouping on character-3-gram Jaccard
  similarity of column values, so related columns share an encoder context
  even if they are far apart.
* ``rules`` — a user-supplied partition (the "user-defined rules" option).

:func:`annotate_wide` then runs a trained annotator per group and stitches
the per-group predictions back into a single
:class:`~repro.core.annotator.AnnotatedTable` in original column order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..datasets.tables import Column, Table
from ..encoding.cache import LRUCache, column_fingerprint
from .annotator import AnnotatedTable, Doduo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .probe import ProbePlanner


def _char_ngrams(text: str, n: int = 3) -> Set[str]:
    padded = f" {text.lower()} "
    if len(padded) < n:
        return {padded}
    return {padded[i:i + n] for i in range(len(padded) - n + 1)}


def column_profile(column: Column, max_values: int = 20) -> Set[str]:
    """Character-3-gram profile of a column's values (cheap, model-free)."""
    grams: Set[str] = set()
    for value in column.values[:max_values]:
        grams |= _char_ngrams(value)
    return grams


#: Content-addressed memo for :func:`column_profile` (default ``max_values``
#: only — the key is content, not parameters).  Module-level on purpose:
#: the same column reappearing across tables, grouping runs, and probe
#: plans builds its profile once per process.  LRU-bounded so lake-scale
#: corpora cannot grow it without limit; :func:`profile_cache_stats`
#: surfaces the hit/miss/eviction counters.
PROFILE_CACHE: LRUCache[Set[str]] = LRUCache(4096)


def profile_cache_stats() -> Dict[str, int]:
    """Counters of the module-level profile memo (size, hits, misses,
    evictions) — ``evictions > 0`` means the corpus's distinct-column
    working set exceeds the cap and profiles are being rebuilt."""
    return {
        "size": len(PROFILE_CACHE),
        "capacity": PROFILE_CACHE.capacity,
        "hits": PROFILE_CACHE.hits,
        "misses": PROFILE_CACHE.misses,
        "evictions": PROFILE_CACHE.evictions,
    }


def cached_column_profile(column: Column, max_values: int = 20) -> Set[str]:
    """Memoized :func:`column_profile`, keyed by column content.

    Grouping used to rebuild both profiles on every
    :func:`column_similarity` call — O(k²) profile builds for a k-column
    table; with the memo it is k builds, and the probe planner
    (:mod:`repro.core.probe`) reuses the same entries as its stage-1
    signal.  A non-default ``max_values`` bypasses the cache.
    """
    if max_values != 20:
        return column_profile(column, max_values)
    key = column_fingerprint(column)
    cached = PROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    profile = column_profile(column, max_values)
    PROFILE_CACHE.put(key, profile)
    return profile


def profile_similarity(grams_a: Set[str], grams_b: Set[str]) -> float:
    """Jaccard similarity between two precomputed 3-gram profiles."""
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    if not union:
        return 0.0
    return len(grams_a & grams_b) / len(union)


def column_similarity(a: Column, b: Column) -> float:
    """Jaccard similarity between two columns' character-3-gram profiles."""
    return profile_similarity(cached_column_profile(a), cached_column_profile(b))


def split_columns_contiguous(num_columns: int, max_columns: int) -> List[List[int]]:
    """Partition ``range(num_columns)`` into consecutive chunks."""
    if max_columns < 1:
        raise ValueError(f"max_columns must be >= 1: {max_columns}")
    return [
        list(range(start, min(start + max_columns, num_columns)))
        for start in range(0, num_columns, max_columns)
    ]


def split_columns_by_similarity(
    table: Table, max_columns: int
) -> List[List[int]]:
    """Greedy agglomerative grouping under a group-size cap.

    Starts from singleton groups and repeatedly merges the most similar pair
    of groups whose combined size still fits ``max_columns`` (single-linkage
    over :func:`column_similarity`).  Deterministic: ties break on the lowest
    column indices.  Groups are returned sorted by their smallest member so
    output order is stable.
    """
    if max_columns < 1:
        raise ValueError(f"max_columns must be >= 1: {max_columns}")
    n = table.num_columns
    if n == 0:
        return []

    # One memoized profile per column, then O(k²) set arithmetic — the
    # per-cell column_similarity call used to rebuild both profiles every
    # time (O(k²) profile builds).
    profiles = [cached_column_profile(column) for column in table.columns]
    similarity = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            similarity[i, j] = similarity[j, i] = profile_similarity(
                profiles[i], profiles[j]
            )

    groups: List[List[int]] = [[i] for i in range(n)]
    while True:
        best: Optional[Tuple[float, int, int]] = None
        for gi in range(len(groups)):
            for gj in range(gi + 1, len(groups)):
                if len(groups[gi]) + len(groups[gj]) > max_columns:
                    continue
                link = max(
                    similarity[a, b] for a in groups[gi] for b in groups[gj]
                )
                key = (link, -groups[gi][0], -groups[gj][0])
                if best is None or key > (best[0], -groups[best[1]][0], -groups[best[2]][0]):
                    best = (link, gi, gj)
        if best is None or best[0] <= 0.0:
            break
        _, gi, gj = best
        merged = sorted(groups[gi] + groups[gj])
        groups = [g for k, g in enumerate(groups) if k not in (gi, gj)]
        groups.append(merged)

    return sorted(groups, key=lambda g: g[0])


def validate_partition(groups: Sequence[Sequence[int]], num_columns: int) -> None:
    """Check that ``groups`` is an exact partition of ``range(num_columns)``."""
    seen = [index for group in groups for index in group]
    if sorted(seen) != list(range(num_columns)):
        raise ValueError(
            f"groups {groups} are not a partition of {num_columns} columns"
        )


def split_wide_table(
    table: Table,
    max_columns: int,
    strategy: str = "contiguous",
    rules: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[int]]:
    """Partition a table's columns into annotation groups.

    ``strategy`` is one of ``"contiguous"``, ``"similarity"``, or ``"rules"``
    (which requires ``rules``, a user-supplied partition).  Every group holds
    at most ``max_columns`` column indices.
    """
    if strategy == "rules":
        if rules is None:
            raise ValueError('strategy="rules" requires the rules argument')
        groups = [list(group) for group in rules]
        validate_partition(groups, table.num_columns)
        oversized = [g for g in groups if len(g) > max_columns]
        if oversized:
            raise ValueError(
                f"rule group {oversized[0]} exceeds max_columns={max_columns}"
            )
        return groups
    if strategy == "contiguous":
        return split_columns_contiguous(table.num_columns, max_columns)
    if strategy == "similarity":
        return split_columns_by_similarity(table, max_columns)
    raise ValueError(f"unknown strategy: {strategy!r}")


def subtable(table: Table, indices: Sequence[int], suffix: str = "") -> Table:
    """Project ``table`` onto the given column indices.

    Relation annotations are kept when both endpoints survive, with indices
    remapped to the subtable's local positions.
    """
    position = {old: new for new, old in enumerate(indices)}
    relations = {}
    for (i, j), labels in table.relation_labels.items():
        if i in position and j in position:
            relations[(position[i], position[j])] = list(labels)
    return Table(
        columns=[table.columns[i] for i in indices],
        table_id=f"{table.table_id}{suffix}",
        relation_labels=relations,
        metadata=dict(table.metadata),
    )


def annotate_wide(
    annotator: Doduo,
    table: Table,
    max_columns: Optional[int] = None,
    strategy: str = "contiguous",
    rules: Optional[Sequence[Sequence[int]]] = None,
    with_embeddings: bool = True,
    probe_planner: Optional["ProbePlanner"] = None,
) -> AnnotatedTable:
    """Annotate a table wider than the encoder's column budget.

    The table is partitioned with :func:`split_wide_table`, each group is
    annotated with partial table context, and the results are merged back in
    original column order.  Relations are predicted within groups only — the
    deliberate trade-off of the paper's splitting recipe.

    All groups go to the annotator's engine as **one** batch, so same-width
    groups share encoder passes (exact width buckets — bitwise identical to
    the historical per-group calls).  ``probe_planner`` (a
    :class:`~repro.core.probe.ProbePlanner`) replaces each group's
    exhaustive relation probing with a planned, budgeted pair set; without
    one, every group probes its
    :func:`~repro.core.trainer.default_relation_pairs` as before.

    ``max_columns`` defaults to what the annotator's serializer can fit in
    half its maximum sequence length (a conservative budget that leaves room
    for the per-column token budget).
    """
    from dataclasses import replace

    # Deferred: serving imports core, so core.wide cannot import serving at
    # module scope (same pattern as Doduo.annotate_many).
    from ..serving.request import AnnotationRequest

    trainer = annotator.trainer
    if max_columns is None:
        budget = trainer.serializer.config.max_sequence_length
        max_columns = max(1, trainer.serializer.max_columns_within(budget))
    groups = split_wide_table(table, max_columns, strategy=strategy, rules=rules)

    coltypes: List[List[str]] = [[] for _ in range(table.num_columns)]
    type_scores: List[Dict[str, float]] = [{} for _ in range(table.num_columns)]
    colrels: Dict[Tuple[int, int], List[str]] = {}
    embeddings: Optional[np.ndarray] = None

    engine = annotator.engine
    requests = []
    for g, group in enumerate(groups):
        piece = subtable(table, group, suffix=f"#g{g}")
        requests.append(
            AnnotationRequest(
                table=piece,
                options=replace(
                    engine.config.default_options,
                    with_embeddings=with_embeddings,
                ),
                pairs=(
                    probe_planner.plan(piece).pairs
                    if probe_planner is not None
                    else None
                ),
            )
        )
    results = engine.annotate_batch(requests)

    for group, result in zip(groups, results):
        annotated = result.annotated
        for local, original in enumerate(group):
            coltypes[original] = annotated.coltypes[local]
            if annotated.type_scores:
                type_scores[original] = annotated.type_scores[local]
        for (i, j), labels in annotated.colrels.items():
            colrels[(group[i], group[j])] = labels
        if with_embeddings and annotated.colemb is not None:
            if embeddings is None:
                embeddings = np.zeros(
                    (table.num_columns, annotated.colemb.shape[1]),
                    dtype=annotated.colemb.dtype,
                )
            embeddings[list(group)] = annotated.colemb

    return AnnotatedTable(
        table=table, coltypes=coltypes, colrels=colrels, colemb=embeddings,
        type_scores=type_scores,
    )
