"""Budgeted relation-probe planning (the serving-time answer to O(k²) pairs).

The relation head answers one question per column *pair*, so exhaustively
probing a k-column table costs O(k²) encoder work — the dominant cost on the
wide enterprise/open-data tables of Section 6.2.  The join-planning
literature's lesson (submodular-width bounds, and planners that reach them
without enumerating the full cross product) applies directly: never pay for
the full pair cross-product when cheap structure can prune it first.

:class:`ProbePlanner` decides *which* pairs the head encodes, in three
stages:

1. **Prefilters** (model-free, O(k²) set arithmetic — no encoder): prune
   numeric↔numeric pairs (a relation endpoint pair always involves an
   entity-like column), near-duplicate columns (char-3-gram Jaccard from the
   memoized :func:`~repro.core.wide.cached_column_profile`), and — when the
   caller already has type probabilities — pairs whose predicted types never
   co-occurred as gold relation endpoints (:func:`relation_type_compatibility`).
2. **Ranking**: survivors are scored with a cheap hashed-3-gram embedding
   cosine plus model-free subject-column evidence (entity-ness × value
   distinctness), pair proximity, and the subject-column prior of
   :func:`~repro.core.trainer.default_relation_pairs`.  A per-request
   :class:`ProbeBudget` caps the selected pairs, with top-k refinement: every
   right-hand column keeps its best-scoring candidate subjects before the
   remaining budget fills globally, so no column is silently dropped from
   the probe set.
3. **Batching** is *not* this module's job: the selected pairs flow into
   :meth:`~repro.core.trainer.DoduoTrainer.annotate_batch` as explicit pair
   requests, where the existing exact-bucket
   :class:`~repro.encoding.BatchPlanner` batches the probes across tables
   like everything else.

Contract: the planner only changes *which* pairs are paid for.  A planned
probe of pair set S is byte-identical to explicitly requesting S, and gold
pairs (``table.relation_labels``) are always pinned into the plan — they are
known questions, never budget casualties.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from ..datasets.tables import Column, Table, TableDataset
from ..encoding.cache import LRUCache, table_fingerprint
from .trainer import default_relation_pairs, validate_relation_pairs
from .wide import cached_column_profile, profile_similarity

Pair = Tuple[int, int]

# Stage-2 score weights.  Tuned on the stitched wide-table workload of
# benchmarks/bench_probe_planning.py (multi-schema tables where the gold
# pairs are each schema's subject column against its own attributes); the
# dominant signal is subject-ness of the left column, with proximity
# breaking ties between a nearby and a far-away subject candidate.
SUBJECT_WEIGHT = 1.0
PROXIMITY_WEIGHT = 0.6
COSINE_WEIGHT = 0.15
# Deliberately small: on multi-entity tables (several schemas side by side)
# the TURL first-column prior is wrong for every schema but the first, and
# a large bonus lets the (0, j) star eat the whole budget.
PRIOR_WEIGHT = 0.1
# Weight of the learned subject-type prior (type-assisted planning only):
# how often the left column's predicted type acts as a relation subject in
# training.  Strong enough to outvote proximity — an attribute column right
# next to j must not beat the schema's real subject a little further away.
SUBJECT_TYPE_WEIGHT = 0.4

#: Columns whose numeric value fraction reaches this cutoff count as
#: numeric for the numeric↔numeric prefilter.
NUMERIC_FRACTION_CUTOFF = 0.5
#: Jaccard at or above this prunes a pair as near-duplicate columns (a
#: column relates to a subject, not to its own copy).
DUPLICATE_SIMILARITY = 0.9
#: Values sampled per column for the cheap statistics (mirrors
#: ``wide.column_profile``'s default).
PROFILE_VALUES = 20

_HASH_DIM = 64  # hashed character-3-gram embedding dimensionality


@dataclass(frozen=True)
class ProbeBudget:
    """How much relation probing one request may pay for.

    ``max_pairs`` caps the pairs selected per table (``None`` means
    prefilter-only planning: every stage-1 survivor is probed).
    ``per_column`` is the top-k refinement width: each right-hand column
    keeps its ``per_column`` best-scoring candidate subject pairs ahead of
    the global fill, so budget pressure trims redundant probes before it
    trims coverage.
    ``min_similarity`` optionally floors the hashed-embedding cosine
    (0.0 disables — related columns often share little surface vocabulary).
    ``numeric_numeric`` opts numeric↔numeric pairs back in for corpora
    whose relations hold between measure columns.
    """

    max_pairs: Optional[int] = None
    per_column: int = 1
    min_similarity: float = 0.0
    numeric_numeric: bool = False

    def __post_init__(self) -> None:
        if self.max_pairs is not None and self.max_pairs < 1:
            raise ValueError(f"max_pairs must be >= 1: {self.max_pairs}")
        if self.per_column < 0:
            raise ValueError(f"per_column must be >= 0: {self.per_column}")
        if not 0.0 <= self.min_similarity <= 1.0:
            raise ValueError(
                f"min_similarity must be in [0, 1]: {self.min_similarity}"
            )

    def describe(self) -> str:
        """Canonical parameter string (folds into the annotation
        fingerprint — two budgets with equal descriptions plan identically)."""
        return (
            f"max_pairs={self.max_pairs},per_column={self.per_column},"
            f"min_similarity={self.min_similarity},"
            f"numeric_numeric={self.numeric_numeric}"
        )


@dataclass(frozen=True)
class ProbePlan:
    """The planner's answer for one table.

    ``pairs`` is the probe set in canonical (sorted) order.  ``candidates``
    counts the full universe considered — every unordered pair plus any
    gold pairs — ``pruned`` how many of those the prefilters and the budget
    discarded, and ``pinned`` how many came from gold relation labels
    (pinned pairs bypass prefilters and budget).
    """

    pairs: Tuple[Pair, ...]
    candidates: int
    pruned: int
    pinned: int

    @property
    def planned(self) -> int:
        return len(self.pairs)


def _is_numeric(value: str) -> bool:
    text = value.strip().replace(",", "")
    if text[:1] in ("$", "€", "£"):
        text = text[1:]
    if text.endswith("%"):
        text = text[:-1]
    if not text:
        return False
    try:
        float(text)
    except ValueError:
        return False
    return True


def _column_stats(column: Column) -> Tuple[float, float]:
    """(numeric fraction, distinct fraction) over the profiled value head."""
    values = [v.strip() for v in column.values[:PROFILE_VALUES] if v.strip()]
    if not values:
        return 0.0, 0.0
    numeric = sum(1 for v in values if _is_numeric(v))
    distinct = len({v.lower() for v in values})
    return numeric / len(values), distinct / len(values)


def _profile_vector(grams: Set[str]) -> np.ndarray:
    """Unit-norm hashed count embedding of a char-3-gram profile.

    crc32, not ``hash()``: the builtin is salted per process, and planner
    decisions must be stable across processes (they fold into cache keys
    via the annotation fingerprint).
    """
    vector = np.zeros(_HASH_DIM, dtype=np.float64)
    for gram in grams:
        vector[zlib.crc32(gram.encode("utf-8")) % _HASH_DIM] += 1.0
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm else vector


def relation_type_compatibility(dataset: TableDataset) -> FrozenSet[Pair]:
    """Type-id pairs observed as gold relation endpoints in ``dataset``.

    The training corpus already says which (subject type, object type)
    combinations carry relations; a planner given type probabilities can
    prune every pair whose predicted types never co-occurred.  Ordered
    pairs: relations are directional, and so is the head.
    """
    type_to_id = {label: k for k, label in enumerate(dataset.type_vocab)}
    compatible: Set[Pair] = set()
    for table in dataset.tables:
        for i, j in table.relation_labels:
            if not (0 <= i < table.num_columns and 0 <= j < table.num_columns):
                continue
            for left in table.columns[i].type_labels:
                for right in table.columns[j].type_labels:
                    if left in type_to_id and right in type_to_id:
                        compatible.add((type_to_id[left], type_to_id[right]))
    return frozenset(compatible)


def subject_type_priors(dataset: TableDataset) -> Dict[int, float]:
    """P(column is a relation subject | column carries this type label).

    Counts, over the gold tables of ``dataset``, how often a column with
    each type label appears as the *left* endpoint of a gold relation pair.
    Types that only ever name subjects (e.g. the entity type a table is
    about) get 1.0; pure attribute types (years, positions) get 0.0; types
    that play both roles (person: sometimes the table's subject, sometimes
    a director/author attribute) land in between.  Feeds the planner's
    stage-2 ranking next to :func:`relation_type_compatibility`.
    """
    type_to_id = {label: k for k, label in enumerate(dataset.type_vocab)}
    as_subject: Dict[int, int] = {}
    total: Dict[int, int] = {}
    for table in dataset.tables:
        lefts = {i for i, _ in table.relation_labels}
        for c, column in enumerate(table.columns):
            for label in column.type_labels:
                type_id = type_to_id.get(label)
                if type_id is None:
                    continue
                total[type_id] = total.get(type_id, 0) + 1
                if c in lefts:
                    as_subject[type_id] = as_subject.get(type_id, 0) + 1
    return {
        type_id: as_subject.get(type_id, 0) / count
        for type_id, count in total.items()
    }


class ProbePlanner:
    """Plans relation probes under a :class:`ProbeBudget`.

    Stateful for the same reason :class:`~repro.serving.ColumnCache` is:
    the owner (an engine, a benchmark loop) reads cumulative counters off
    it, and repeated tables hit a small content-addressed plan cache
    instead of re-scoring.  Planning is deterministic — equal content,
    labels, and budget always yield the identical plan, which is what lets
    the budget description stand in for the plan inside the annotation
    fingerprint.
    """

    def __init__(
        self,
        budget: Optional[ProbeBudget] = None,
        plan_cache_size: int = 512,
    ) -> None:
        self.budget = budget or ProbeBudget()
        self.tables_planned = 0
        self.pairs_considered = 0
        self.pairs_planned = 0
        self.pairs_pruned = 0
        self._plan_cache: LRUCache[ProbePlan] = LRUCache(plan_cache_size)

    def fingerprint_tag(self) -> str:
        """The probe descriptor folded into
        :meth:`~repro.core.trainer.DoduoTrainer.annotation_fingerprint`."""
        return f"planned({self.budget.describe()})"

    def plan_pairs(
        self,
        table: Table,
        type_probs: Optional[np.ndarray] = None,
        type_compatibility: Optional[FrozenSet[Pair]] = None,
        subject_priors: Optional[Dict[int, float]] = None,
    ) -> List[Pair]:
        """Just the pairs of :meth:`plan`, as a list."""
        return list(
            self.plan(
                table,
                type_probs=type_probs,
                type_compatibility=type_compatibility,
                subject_priors=subject_priors,
            ).pairs
        )

    def plan(
        self,
        table: Table,
        type_probs: Optional[np.ndarray] = None,
        type_compatibility: Optional[FrozenSet[Pair]] = None,
        subject_priors: Optional[Dict[int, float]] = None,
    ) -> ProbePlan:
        """Select the column pairs the relation head should probe.

        ``type_probs`` (``(num_columns, num_types)``, e.g. from a prior
        type pass) together with ``type_compatibility``
        (:func:`relation_type_compatibility`) enables the type prefilter,
        and ``subject_priors`` (:func:`subject_type_priors`) additionally
        ranks candidate subject columns by how often their predicted type
        plays the subject role in training; without them planning is fully
        model-free.
        """
        cacheable = (
            type_probs is None
            and type_compatibility is None
            and subject_priors is None
        )
        key = None
        if cacheable:
            # Labels matter (gold pairs pin) but are not part of the
            # content fingerprint, so they join the key explicitly.
            key = (
                table_fingerprint(table),
                tuple(sorted(table.relation_labels)),
            )
            cached = self._plan_cache.get(key)
            if cached is not None:
                self._count(cached)
                return cached
        plan = self._plan_uncached(
            table, type_probs, type_compatibility, subject_priors
        )
        if cacheable and key is not None:
            self._plan_cache.put(key, plan)
        self._count(plan)
        return plan

    def _count(self, plan: ProbePlan) -> None:
        self.tables_planned += 1
        self.pairs_considered += plan.candidates
        self.pairs_planned += plan.planned
        self.pairs_pruned += plan.pruned

    def _plan_uncached(
        self,
        table: Table,
        type_probs: Optional[np.ndarray],
        type_compatibility: Optional[FrozenSet[Pair]],
        subject_priors: Optional[Dict[int, float]],
    ) -> ProbePlan:
        k = table.num_columns
        if k < 2:
            return ProbePlan(pairs=(), candidates=0, pruned=0, pinned=0)
        budget = self.budget

        # Gold pairs are pinned: they are known questions, exempt from
        # prefilters and budget alike.  Reversed/repeated gold duplicates
        # collapse through default_relation_pairs.
        pinned: List[Pair] = []
        if table.relation_labels:
            pinned = validate_relation_pairs(table, default_relation_pairs(table))
        pinned_set = set(pinned)
        prior_set = set(default_relation_pairs(table))

        universe: List[Pair] = [
            (i, j) for i in range(k) for j in range(i + 1, k)
        ]
        candidates = len(set(universe) | pinned_set)

        profiles = [cached_column_profile(column) for column in table.columns]
        vectors = [_profile_vector(profile) for profile in profiles]
        stats = [_column_stats(column) for column in table.columns]
        subjectness = [
            (1.0 - numeric) * (0.2 + 0.8 * distinct)
            for numeric, distinct in stats
        ]
        predicted_types: Optional[List[int]] = None
        if type_probs is not None and (
            type_compatibility is not None or subject_priors is not None
        ):
            predicted_types = [
                int(np.argmax(type_probs[c])) for c in range(k)
            ]
        type_subjectness = [0.0] * k
        if predicted_types is not None and subject_priors is not None:
            type_subjectness = [
                subject_priors.get(predicted_types[c], 0.5) for c in range(k)
            ]

        survivors: List[Tuple[float, Pair]] = []
        for i, j in universe:
            if (i, j) in pinned_set:
                continue
            cosine = float(np.dot(vectors[i], vectors[j]))
            # --- Stage 1: model-free prefilters -----------------------
            if (
                not budget.numeric_numeric
                and stats[i][0] >= NUMERIC_FRACTION_CUTOFF
                and stats[j][0] >= NUMERIC_FRACTION_CUTOFF
            ):
                continue
            if profile_similarity(profiles[i], profiles[j]) >= DUPLICATE_SIMILARITY:
                continue
            if budget.min_similarity > 0.0 and cosine < budget.min_similarity:
                continue
            if (
                predicted_types is not None
                and type_compatibility is not None
                and (predicted_types[i], predicted_types[j])
                not in type_compatibility
            ):
                continue
            # --- Stage 2: ranking -------------------------------------
            score = (
                SUBJECT_WEIGHT * subjectness[i]
                + PROXIMITY_WEIGHT / (1.0 + (j - i))
                + COSINE_WEIGHT * cosine
                + (PRIOR_WEIGHT if (i, j) in prior_set else 0.0)
                + SUBJECT_TYPE_WEIGHT * type_subjectness[i]
            )
            survivors.append((score, (i, j)))
        survivors.sort(key=lambda item: (-item[0], item[1]))

        selected: List[Pair] = list(pinned)
        selected_set = set(selected)
        remaining = (
            None
            if budget.max_pairs is None
            else max(0, budget.max_pairs - len(selected))
        )

        def take(pair: Pair) -> bool:
            nonlocal remaining
            if pair in selected_set:
                return True
            if remaining == 0:
                return False
            selected.append(pair)
            selected_set.add(pair)
            if remaining is not None:
                remaining -= 1
            return True

        # Top-k refinement: every *right-hand* column keeps its
        # ``per_column`` best candidate subjects first, so the global fill
        # spends the rest of the budget on raw score without starving any
        # column of its relation-to-subject probe.  (Relations point from a
        # subject column to each attribute column — the hub-and-spoke
        # structure of ``default_relation_pairs`` — so coverage is about
        # right endpoints; subjects get covered for free as lefts.)
        if budget.per_column > 0:
            required: List[Tuple[float, Pair]] = []
            kept: Dict[int, int] = {c: 0 for c in range(k)}
            for score, (i, j) in survivors:
                if kept[j] < budget.per_column:
                    required.append((score, (i, j)))
                    kept[j] += 1
            for _, pair in required:
                take(pair)
        for _, pair in survivors:
            if remaining == 0:
                break
            take(pair)

        pairs = tuple(sorted(selected))
        return ProbePlan(
            pairs=pairs,
            candidates=candidates,
            pruned=candidates - len(pairs),
            pinned=len(pinned),
        )


__all__ = [
    "ProbeBudget",
    "ProbePlan",
    "ProbePlanner",
    "relation_type_compatibility",
    "subject_type_priors",
]
