"""Saving and loading trained annotators as self-contained model bundles.

The released DODUO toolbox ships fine-tuned models that users load and apply
without retraining.  A *bundle* here is a directory holding everything needed
to reconstruct a working :class:`~repro.core.annotator.Doduo`:

* ``bundle.json`` — encoder config, fine-tuning config, label vocabularies
* ``tokenizer.json`` — the WordPiece vocabulary
* ``weights.npz`` — the fine-tuned model parameters

``load_annotator(save_annotator(model))`` reproduces predictions bit-exactly
(asserted by the tests), which is what makes the CLI's train-then-annotate
workflow possible across processes.

A bundle can additionally carry derived **weight arenas**
(``arena-<precision>.rpwa``, see :mod:`repro.nn.arena`): flat mmap-able
files holding the inference weights, built on demand by
:func:`ensure_model_arena` and consumed via
``load_annotator(..., weight_arena=...)`` — the model's parameters then
*are* read-only views over the arena's pages, shared by every process
that maps the same file, instead of a private ``weights.npz`` copy.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Union

from ..datasets.tables import TableDataset
from ..nn import TransformerConfig, deferred_init, load_checkpoint, save_checkpoint
from ..nn.arena import ARENA_SUFFIX, Arena, attach_arena, write_model_arena
from ..text import WordPieceTokenizer
from .annotator import Doduo
from .trainer import DoduoConfig, DoduoTrainer

PathLike = Union[str, Path]

_BUNDLE_VERSION = 1


def save_annotator(annotator: Doduo, directory: PathLike) -> Path:
    """Write a trained annotator as a model bundle under ``directory``.

    The directory is created if missing; existing bundle files inside it are
    overwritten.  Returns the bundle path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    trainer = annotator.trainer

    manifest = {
        "kind": "doduo-bundle",
        "version": _BUNDLE_VERSION,
        "encoder_config": dataclasses.asdict(trainer.model.config),
        "doduo_config": dataclasses.asdict(trainer.config),
        "type_vocab": list(trainer.dataset.type_vocab),
        "relation_vocab": list(trainer.dataset.relation_vocab),
        "dataset_name": trainer.dataset.name,
    }
    with open(directory / "bundle.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    trainer.tokenizer.save(directory / "tokenizer.json")
    save_checkpoint(trainer.model, directory / "weights.npz")
    return directory


def load_annotator(
    directory: PathLike, weight_arena: Optional[PathLike] = None
) -> Doduo:
    """Reconstruct an annotator from a bundle written by :func:`save_annotator`.

    ``weight_arena`` (a path or an open :class:`~repro.nn.arena.Arena`)
    replaces the ``weights.npz`` deserialization with zero-copy attachment:
    every parameter becomes a read-only memmap view over the arena file, so
    N processes loading the same bundle share one physical copy of the
    weights and "loading" is a header parse plus a remap.  A float32 arena
    is bitwise the npz load; an int8 arena attaches the dequantized
    round-trip (the quantized serving representation).

    Raises
    ------
    ValueError
        If the directory is not a bundle or was written by an incompatible
        version.
    """
    directory = Path(directory)
    manifest_path = directory / "bundle.json"
    if not manifest_path.exists():
        raise ValueError(f"{directory} does not contain a bundle.json")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("kind") != "doduo-bundle":
        raise ValueError(f"{manifest_path} is not a doduo bundle manifest")
    if manifest.get("version") != _BUNDLE_VERSION:
        raise ValueError(
            f"bundle version {manifest.get('version')} is not supported "
            f"(this build reads version {_BUNDLE_VERSION})"
        )

    tokenizer = WordPieceTokenizer.load(directory / "tokenizer.json")
    encoder_config = TransformerConfig(**manifest["encoder_config"])
    doduo_config = DoduoConfig(**{
        key: tuple(value) if key == "tasks" else value
        for key, value in manifest["doduo_config"].items()
    })

    # The trainer only needs the label vocabularies at inference time; an
    # empty table list keeps the bundle self-contained.
    dataset = TableDataset(
        tables=[],
        type_vocab=list(manifest["type_vocab"]),
        relation_vocab=list(manifest["relation_vocab"]),
        name=manifest.get("dataset_name", ""),
    )
    # Every parameter is about to be overwritten (npz copy) or replaced
    # (arena view), so skip the random init: drawing ~the full weight
    # payload just to discard it costs startup time, and in a forked
    # serving worker it permanently dirties that many COW heap pages —
    # which would defeat the arena's per-worker memory savings.
    with deferred_init():
        trainer = DoduoTrainer(dataset, tokenizer, encoder_config, doduo_config)
    if weight_arena is not None:
        arena = (
            weight_arena
            if isinstance(weight_arena, Arena)
            else Arena(weight_arena)
        )
        attach_arena(trainer.model, arena)
    else:
        load_checkpoint(trainer.model, directory / "weights.npz")
    trainer.model.eval()
    return Doduo(trainer)


def _weights_signature(weights_path: Path) -> dict:
    stat = weights_path.stat()
    return {"size": stat.st_size, "mtime_ns": stat.st_mtime_ns}


def ensure_model_arena(
    bundle_dir: PathLike,
    precision: str = "float32",
    arena_dir: Optional[PathLike] = None,
) -> Path:
    """The bundle's weight arena for ``precision``, building it if needed.

    The arena lives next to the bundle by default
    (``arena-<precision>.rpwa``; ``arena_dir`` overrides the directory).
    An existing file is reused only when its recorded precision and its
    source signature — size and mtime of ``weights.npz`` at build time —
    still match, so retraining or re-saving the bundle invalidates the
    arena instead of serving stale weights.  Building parses the bundle
    once (the one deserialization N workers then all skip) and writes
    atomically, so concurrent builders race benignly to identical bytes.
    """
    bundle_dir = Path(bundle_dir)
    weights_path = bundle_dir / "weights.npz"
    signature = _weights_signature(weights_path)
    directory = Path(arena_dir) if arena_dir is not None else bundle_dir
    path = directory / f"arena-{precision}{ARENA_SUFFIX}"
    if path.exists():
        try:
            existing = Arena(path)
        except (OSError, ValueError, KeyError):
            existing = None  # corrupt or truncated: rebuild below
        if (
            existing is not None
            and existing.precision == precision
            and existing.meta.get("source") == signature
        ):
            return path
    annotator = load_annotator(bundle_dir)
    directory.mkdir(parents=True, exist_ok=True)
    write_model_arena(
        annotator.trainer.model,
        path,
        precision=precision,
        meta={"source": signature},
    )
    return path
