"""Saving and loading trained annotators as self-contained model bundles.

The released DODUO toolbox ships fine-tuned models that users load and apply
without retraining.  A *bundle* here is a directory holding everything needed
to reconstruct a working :class:`~repro.core.annotator.Doduo`:

* ``bundle.json`` — encoder config, fine-tuning config, label vocabularies
* ``tokenizer.json`` — the WordPiece vocabulary
* ``weights.npz`` — the fine-tuned model parameters

``load_annotator(save_annotator(model))`` reproduces predictions bit-exactly
(asserted by the tests), which is what makes the CLI's train-then-annotate
workflow possible across processes.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from ..datasets.tables import TableDataset
from ..nn import TransformerConfig, load_checkpoint, save_checkpoint
from ..text import WordPieceTokenizer
from .annotator import Doduo
from .trainer import DoduoConfig, DoduoTrainer

PathLike = Union[str, Path]

_BUNDLE_VERSION = 1


def save_annotator(annotator: Doduo, directory: PathLike) -> Path:
    """Write a trained annotator as a model bundle under ``directory``.

    The directory is created if missing; existing bundle files inside it are
    overwritten.  Returns the bundle path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    trainer = annotator.trainer

    manifest = {
        "kind": "doduo-bundle",
        "version": _BUNDLE_VERSION,
        "encoder_config": dataclasses.asdict(trainer.model.config),
        "doduo_config": dataclasses.asdict(trainer.config),
        "type_vocab": list(trainer.dataset.type_vocab),
        "relation_vocab": list(trainer.dataset.relation_vocab),
        "dataset_name": trainer.dataset.name,
    }
    with open(directory / "bundle.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    trainer.tokenizer.save(directory / "tokenizer.json")
    save_checkpoint(trainer.model, directory / "weights.npz")
    return directory


def load_annotator(directory: PathLike) -> Doduo:
    """Reconstruct an annotator from a bundle written by :func:`save_annotator`.

    Raises
    ------
    ValueError
        If the directory is not a bundle or was written by an incompatible
        version.
    """
    directory = Path(directory)
    manifest_path = directory / "bundle.json"
    if not manifest_path.exists():
        raise ValueError(f"{directory} does not contain a bundle.json")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("kind") != "doduo-bundle":
        raise ValueError(f"{manifest_path} is not a doduo bundle manifest")
    if manifest.get("version") != _BUNDLE_VERSION:
        raise ValueError(
            f"bundle version {manifest.get('version')} is not supported "
            f"(this build reads version {_BUNDLE_VERSION})"
        )

    tokenizer = WordPieceTokenizer.load(directory / "tokenizer.json")
    encoder_config = TransformerConfig(**manifest["encoder_config"])
    doduo_config = DoduoConfig(**{
        key: tuple(value) if key == "tasks" else value
        for key, value in manifest["doduo_config"].items()
    })

    # The trainer only needs the label vocabularies at inference time; an
    # empty table list keeps the bundle self-contained.
    dataset = TableDataset(
        tables=[],
        type_vocab=list(manifest["type_vocab"]),
        relation_vocab=list(manifest["relation_vocab"]),
        name=manifest.get("dataset_name", ""),
    )
    trainer = DoduoTrainer(dataset, tokenizer, encoder_config, doduo_config)
    load_checkpoint(trainer.model, directory / "weights.npz")
    trainer.model.eval()
    return Doduo(trainer)
