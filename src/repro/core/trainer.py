"""Multi-task training of DODUO (Algorithm 1 of the paper).

The trainer alternates between the column-type task and the column-relation
task every epoch, each with its own optimizer and linear-decay scheduler, and
keeps the checkpoint with the best validation F1 — exactly the procedure of
Sections 4.4 and 5.3.

Three model variants from the paper map onto configuration flags:

* **Doduo** — table-wise serialization, both tasks (``tasks=("type", "relation")``)
* **Dosolo** — table-wise serialization, a single task (no multi-task learning)
* **DosoloSCol** — ``single_column=True``: each column (or column pair) is
  serialized independently, discarding table context
* **TURL baseline** — ``use_visibility_matrix=True``: cross-column attention
  edges removed

Further configuration flags extend the paper's setup:
``use_numeric_embeddings`` (Section 3.1 future work),
``augment_column_shuffle`` (column-order-invariance training),
``use_column_segments=False`` (ablates this reproduction's segment prior),
and ``early_stopping_patience`` (stop when validation F1 plateaus).
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datasets.tables import Table, TableDataset
from ..encoding import BatchPlanner, EncodingPipeline
from ..encoding.cache import column_fingerprint
from ..evaluation.metrics import PRF, multiclass_micro_f1, multilabel_micro_prf
from ..nn import Adam, LinearDecayScheduler, TransformerConfig
from ..nn import functional as F
from ..text import WordPieceTokenizer
from .model import DoduoModel, activation_probs
from .serialization import EncodedTable, SerializerConfig, TableSerializer

TYPE_TASK = "type"
RELATION_TASK = "relation"


def default_relation_pairs(table: Table) -> List[Tuple[int, int]]:
    """Column pairs the relation head probes when none are requested.

    Annotated tables keep their gold pairs (sorted); unannotated tables fall
    back to TURL's subject-column convention and probe ``(0, j)`` for every
    non-subject column ``j``.  Single-column tables have nothing to probe.

    Gold pairs recorded both ways round — ``(i, j)`` and ``(j, i)``, which
    real annotation dumps do contain — ask the head the same gold question
    twice, so unordered duplicates collapse to their first (sorted)
    occurrence and no pair is ever encoded twice.
    """
    if table.num_columns < 2:
        return []
    gold = sorted(table.relation_labels)
    if not gold:
        return [(0, j) for j in range(1, table.num_columns)]
    seen = set()
    unique: List[Tuple[int, int]] = []
    for i, j in gold:
        key = (i, j) if i <= j else (j, i)
        if key in seen:
            continue
        seen.add(key)
        unique.append((i, j))
    return unique


def validate_relation_pairs(
    table: Table, pairs: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Check that every requested pair indexes real columns of ``table``.

    Exact repeats are dropped (probing a pair twice buys nothing), but a
    reversed request ``(j, i)`` is kept alongside ``(i, j)``: the relation
    head concatenates the two column states in order, so the two directions
    are genuinely different probes — unlike gold duplicates, where
    :func:`default_relation_pairs` collapses unordered repeats of the same
    annotation.
    """
    checked: List[Tuple[int, int]] = []
    seen = set()
    for pair in pairs:
        i, j = pair
        for index in (i, j):
            if not 0 <= index < table.num_columns:
                raise ValueError(
                    f"relation pair {pair!r} is out of range for table "
                    f"{table.table_id!r} with {table.num_columns} columns"
                )
        key = (int(i), int(j))
        if key in seen:
            continue
        seen.add(key)
        checked.append(key)
    return checked


@dataclass
class DoduoConfig:
    """Hyper-parameters for fine-tuning.

    ``multi_label`` selects BCE loss (WikiTable) vs CE loss (VizNet), per
    Section 5.3.
    """

    tasks: Tuple[str, ...] = (TYPE_TASK, RELATION_TASK)
    multi_label: bool = True
    single_column: bool = False
    use_visibility_matrix: bool = False
    use_column_segments: bool = True
    use_numeric_embeddings: bool = False
    augment_column_shuffle: bool = False
    max_tokens_per_column: int = 8
    include_headers: bool = False
    value_order: str = "head"
    epochs: int = 10
    batch_size: int = 8
    learning_rate: float = 1e-3
    seed: int = 0
    keep_best_checkpoint: bool = True
    early_stopping_patience: int = 0  # 0 disables early stopping

    def __post_init__(self) -> None:
        for task in self.tasks:
            if task not in (TYPE_TASK, RELATION_TASK):
                raise ValueError(f"unknown task: {task}")
        if self.early_stopping_patience < 0:
            raise ValueError(
                f"early_stopping_patience must be >= 0: "
                f"{self.early_stopping_patience}"
            )


@dataclass
class _TypeExample:
    encoded: EncodedTable
    labels: np.ndarray  # multi-hot (num_cols, num_types) or int (num_cols,)


@dataclass
class _RelationExample:
    encoded: EncodedTable
    pairs: List[Tuple[int, int]]          # local column index pairs
    labels: np.ndarray                    # multi-hot (num_pairs, R) or int (num_pairs,)


@dataclass
class RawTableAnnotation:
    """Model outputs for one table from a single-pass annotation batch.

    ``type_probs`` is ``(num_cols, num_types)``; ``relation_probs`` maps each
    probed column pair to its ``(num_relations,)`` probability vector;
    ``embeddings`` is ``(num_cols, hidden_dim)`` or ``None`` when not
    requested.
    """

    type_probs: np.ndarray
    relation_probs: Dict[Tuple[int, int], np.ndarray]
    probed_pairs: List[Tuple[int, int]]
    embeddings: Optional[np.ndarray] = None


# Table-wise mode serializes a table to one sequence; single-column mode to
# one sequence per column.
EncodedAnnotationInput = Union[EncodedTable, List[EncodedTable]]


@dataclass
class TrainingHistory:
    """Loss / validation-F1 trajectory of a training run.

    ``real_tokens``/``padded_tokens`` total the encoder passes of the run
    (training batches plus per-epoch validation): how many sequence slots
    were allocated versus how many carried real tokens.  ``padding_waste``
    is the fraction of allocated slots that were padding — the quantity
    :mod:`benchmarks.bench_padding_waste` tracks across encoding policies.
    """

    task_losses: Dict[str, List[float]] = field(default_factory=dict)
    valid_f1: List[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False
    real_tokens: int = 0
    padded_tokens: int = 0

    @property
    def padding_waste(self) -> float:
        if self.padded_tokens == 0:
            return 0.0
        return (self.padded_tokens - self.real_tokens) / self.padded_tokens


class DoduoTrainer:
    """Fine-tunes a :class:`DoduoModel` on a :class:`TableDataset`."""

    def __init__(
        self,
        dataset: TableDataset,
        tokenizer: WordPieceTokenizer,
        encoder_config: TransformerConfig,
        config: DoduoConfig,
        pretrained_encoder_state: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.tokenizer = tokenizer
        # The unified encoding layer: one serializer + one content-hash
        # cache shared by example preparation, evaluation, the ``predict_*``
        # entry points, serving (the engine reuses this pipeline by
        # default), and the analysis modules.
        self.encoding = EncodingPipeline(
            TableSerializer(
                tokenizer,
                SerializerConfig(
                    max_tokens_per_column=config.max_tokens_per_column,
                    max_sequence_length=encoder_config.max_position,
                    include_headers=config.include_headers,
                    value_order=config.value_order,
                ),
            ),
            single_column=config.single_column,
        )
        rng = np.random.default_rng(config.seed)
        num_relations = dataset.num_relations if RELATION_TASK in config.tasks else 0
        self.model = DoduoModel(
            encoder_config,
            num_types=dataset.num_types,
            num_relations=num_relations,
            rng=rng,
            use_visibility_matrix=config.use_visibility_matrix,
            use_column_segments=config.use_column_segments,
            use_numeric_embeddings=config.use_numeric_embeddings,
        )
        if pretrained_encoder_state is not None:
            self.model.encoder.load_state_dict(pretrained_encoder_state)
        self._rng = rng
        self.history = TrainingHistory(
            task_losses={task: [] for task in config.tasks}
        )
        # Memoized annotation fingerprints (one per compute dtype): hashing
        # walks every weight, and the serving registry/gateway key routing
        # and cache partitions on it, so it must not cost a weight walk per
        # lookup.  Invalidated by train() — external weight mutation must
        # call invalidate_fingerprint() (or hand the registry a fresh
        # trainer).
        # Keyed by (dtype, probe descriptor, waste budget) — see
        # annotation_fingerprint.
        self._annotation_fingerprints: Dict[
            Tuple[str, Optional[str], int], str
        ] = {}

    @property
    def serializer(self) -> TableSerializer:
        """The pipeline's serializer (kept for API compatibility)."""
        return self.encoding.serializer

    # ------------------------------------------------------------------
    # Example preparation
    # ------------------------------------------------------------------
    def _type_label_array(self, table: Table) -> np.ndarray:
        if self.config.multi_label:
            labels = np.zeros((table.num_columns, self.dataset.num_types), dtype=np.float32)
            for c, column in enumerate(table.columns):
                for name in column.type_labels:
                    labels[c, self.dataset.type_id(name)] = 1.0
            return labels
        labels = np.zeros(table.num_columns, dtype=np.int64)
        for c, column in enumerate(table.columns):
            if not column.type_labels:
                raise ValueError(f"column {c} of {table.table_id} has no type label")
            labels[c] = self.dataset.type_id(column.type_labels[0])
        return labels

    def _relation_label_array(self, table: Table, pairs: List[Tuple[int, int]]) -> np.ndarray:
        if self.config.multi_label:
            labels = np.zeros((len(pairs), self.dataset.num_relations), dtype=np.float32)
            for row, pair in enumerate(pairs):
                for name in table.relation_labels[pair]:
                    labels[row, self.dataset.relation_id(name)] = 1.0
            return labels
        labels = np.zeros(len(pairs), dtype=np.int64)
        for row, pair in enumerate(pairs):
            labels[row] = self.dataset.relation_id(table.relation_labels[pair][0])
        return labels

    def _prepare_type_examples(self, tables: Sequence[Table]) -> List[_TypeExample]:
        examples: List[_TypeExample] = []
        for table in tables:
            label_array = self._type_label_array(table)
            if self.config.single_column:
                for c, encoded in enumerate(self.encoding.encode_columns(table)):
                    examples.append(_TypeExample(encoded, label_array[c:c + 1]))
            else:
                encoded = self.encoding.encode_table(table)
                examples.append(_TypeExample(encoded, label_array))
        return examples

    def _prepare_relation_examples(self, tables: Sequence[Table]) -> List[_RelationExample]:
        examples: List[_RelationExample] = []
        for table in tables:
            pairs = sorted(table.relation_labels)
            if not pairs:
                continue
            labels = self._relation_label_array(table, pairs)
            if self.config.single_column:
                for row, (i, j) in enumerate(pairs):
                    encoded = self.encoding.encode_pair(table, i, j)
                    examples.append(
                        _RelationExample(encoded, [(0, 1)], labels[row:row + 1])
                    )
            else:
                encoded = self.encoding.encode_table(table)
                examples.append(_RelationExample(encoded, pairs, labels))
        return examples

    # ------------------------------------------------------------------
    # Loss computation per batch
    # ------------------------------------------------------------------
    def _type_batch_loss(self, batch: Sequence[_TypeExample]):
        logits = self.model.type_logits([ex.encoded for ex in batch])
        if self.config.multi_label:
            targets = np.concatenate([ex.labels for ex in batch], axis=0)
            return F.binary_cross_entropy_logits(logits, targets)
        targets = np.concatenate([ex.labels for ex in batch], axis=0)
        return F.cross_entropy_logits(logits, targets)

    def _relation_batch_loss(self, batch: Sequence[_RelationExample]):
        encoded = [ex.encoded for ex in batch]
        pairs = [
            (b, i, j)
            for b, ex in enumerate(batch)
            for (i, j) in ex.pairs
        ]
        logits = self.model.relation_logits(encoded, pairs)
        targets = np.concatenate([ex.labels for ex in batch], axis=0)
        if self.config.multi_label:
            return F.binary_cross_entropy_logits(logits, targets)
        return F.cross_entropy_logits(logits, targets)

    # ------------------------------------------------------------------
    # Training loop (Algorithm 1)
    # ------------------------------------------------------------------
    def train(
        self,
        valid_dataset: Optional[TableDataset] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        config = self.config

        def prepare(tables):
            type_examples = (
                self._prepare_type_examples(tables)
                if TYPE_TASK in config.tasks
                else []
            )
            relation_examples = (
                self._prepare_relation_examples(tables)
                if RELATION_TASK in config.tasks
                else []
            )
            return type_examples, relation_examples

        real_tokens_before = self.model.real_tokens
        padded_tokens_before = self.model.padded_tokens
        type_examples, relation_examples = prepare(self.dataset.tables)

        # One optimizer + scheduler per task (hard parameter sharing: both
        # optimizers update the shared encoder).
        optimizers: Dict[str, Adam] = {}
        schedulers: Dict[str, LinearDecayScheduler] = {}
        counts = {TYPE_TASK: len(type_examples), RELATION_TASK: len(relation_examples)}
        for task in config.tasks:
            if counts[task] == 0:
                continue
            optimizers[task] = Adam(self.model.parameters(), lr=config.learning_rate)
            steps = config.epochs * max(1, int(np.ceil(counts[task] / config.batch_size)))
            schedulers[task] = LinearDecayScheduler(optimizers[task], total_steps=steps)

        best_f1 = -1.0
        best_state: Optional[Dict[str, np.ndarray]] = None
        epochs_without_improvement = 0

        self.model.train()
        for epoch in range(config.epochs):
            if config.augment_column_shuffle and epoch > 0:
                # Re-serialize with a fresh column permutation per table so
                # the model cannot tie a type to a column position — the
                # order-invariance property the Table 6 ablation measures.
                shuffled = [t.shuffled_columns(self._rng) for t in self.dataset.tables]
                type_examples, relation_examples = prepare(shuffled)
            for task in config.tasks:
                if task not in optimizers:
                    continue
                examples = type_examples if task == TYPE_TASK else relation_examples
                order = self._rng.permutation(len(examples))
                epoch_loss, num_batches = 0.0, 0
                for start in range(0, len(order), config.batch_size):
                    batch = [examples[i] for i in order[start:start + config.batch_size]]
                    if task == TYPE_TASK:
                        loss = self._type_batch_loss(batch)
                    else:
                        loss = self._relation_batch_loss(batch)
                    optimizers[task].zero_grad()
                    loss.backward()
                    optimizers[task].step()
                    schedulers[task].step()
                    epoch_loss += loss.item()
                    num_batches += 1
                self.history.task_losses[task].append(epoch_loss / max(num_batches, 1))

            if valid_dataset is not None and config.keep_best_checkpoint:
                scores = self.evaluate(valid_dataset)
                mean_f1 = float(np.mean([prf.f1 for prf in scores.values()]))
                self.history.valid_f1.append(mean_f1)
                if mean_f1 > best_f1:
                    best_f1 = mean_f1
                    best_state = self.model.state_dict()
                    self.history.best_epoch = epoch
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                self.model.train()
            if verbose:  # pragma: no cover - console output
                losses = {t: v[-1] for t, v in self.history.task_losses.items() if v}
                print(f"epoch {epoch}: losses={losses}")
            if (
                config.early_stopping_patience > 0
                and epochs_without_improvement >= config.early_stopping_patience
            ):
                self.history.stopped_early = True
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        self.invalidate_fingerprint()  # the weights just changed
        self.history.real_tokens = self.model.real_tokens - real_tokens_before
        self.history.padded_tokens = (
            self.model.padded_tokens - padded_tokens_before
        )
        return self.history

    # ------------------------------------------------------------------
    # Prediction and evaluation
    # ------------------------------------------------------------------
    def _predict_multilabel(self, probs: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        predictions = probs >= threshold
        # Guarantee at least the top-scoring label per sample.
        top = probs.argmax(axis=-1)
        predictions[np.arange(len(probs)), top] = True
        return predictions

    def predict_types(self, tables: Sequence[Table]) -> List[np.ndarray]:
        """Per-table type predictions.

        Multi-label mode returns boolean indicator matrices
        ``(num_cols, num_types)``; single-label mode returns int arrays.

        Batches are composed on exact serialized-width boundaries (see
        :class:`~repro.encoding.BatchPlanner`): tables only share a forward
        pass when they dictate the same padded width, so batch predictions
        are byte-identical to per-table calls and no token slot is wasted
        on cross-table padding.
        """
        self.model.eval()
        items = [self.encoding.encode(t) for t in tables]
        planner = BatchPlanner(batch_size=max(1, self.config.batch_size))
        signatures = [(self.encoding.annotation_width(item),) for item in items]
        results: List[Optional[np.ndarray]] = [None] * len(tables)
        for group in planner.plan(signatures):
            if self.config.single_column:
                encoded: List[EncodedTable] = []
                head_groups: List[List[int]] = []
                for i in group:
                    start = len(encoded)
                    encoded.extend(items[i])
                    head_groups.append(list(range(start, len(encoded))))
            else:
                encoded = [items[i] for i in group]
                head_groups = [[k] for k in range(len(group))]
            out = self.model.forward_full(
                encoded, with_embeddings=False, head_groups=head_groups
            )
            probs = activation_probs(out.type_logits, self.config.multi_label)
            offset = 0
            for i in group:
                num_cols = tables[i].num_columns
                rows = probs[offset:offset + num_cols]
                offset += num_cols
                if self.config.multi_label:
                    results[i] = self._predict_multilabel(rows)
                else:
                    results[i] = rows.argmax(axis=-1)
        return results  # type: ignore[return-value]

    def predict_relations(
        self,
        tables: Sequence[Table],
        probe_planner: Optional["ProbePlanner"] = None,
    ) -> List[Dict[Tuple[int, int], np.ndarray]]:
        """Per-table relation predictions for each annotated column pair.

        Batched like :meth:`predict_types`: tables are composed into exact
        width buckets (:class:`~repro.encoding.BatchPlanner`) and run
        through :meth:`DoduoModel.forward_full` with one head group per
        table, so same-width tables share encoder passes while every
        prediction stays byte-identical to a per-table call — the
        evaluation path carries the same batched-vs-sequential stability
        contract as serving.

        ``probe_planner`` (a :class:`~repro.core.probe.ProbePlanner`)
        switches from probing each table's gold pairs to probing the
        planner's budgeted pair set — evaluation under a probe budget.
        Gold pairs are pinned by the planner, so labeled tables keep every
        annotated pair in the probe set.
        """
        self.model.eval()
        results: List[Dict[Tuple[int, int], np.ndarray]] = [
            {} for _ in tables
        ]
        if probe_planner is None:
            pairs_per_table = [sorted(t.relation_labels) for t in tables]
        else:
            pairs_per_table = [probe_planner.plan_pairs(t) for t in tables]
        active = [i for i, pairs in enumerate(pairs_per_table) if pairs]
        if not active:
            return results
        planner = BatchPlanner(batch_size=max(1, self.config.batch_size))
        if self.config.single_column:
            encoded_pairs = {
                i: [
                    self.encoding.encode_pair(tables[i], a, b)
                    for a, b in pairs_per_table[i]
                ]
                for i in active
            }
            # The pass over one table's pair sequences pads to that table's
            # widest pair — the width its solo pass would use.
            signatures = [
                (max(e.length for e in encoded_pairs[i]),) for i in active
            ]
            for group in planner.plan(signatures):
                chunk = [active[k] for k in group]
                flat: List[EncodedTable] = []
                head_groups: List[List[int]] = []
                for i in chunk:
                    start = len(flat)
                    flat.extend(encoded_pairs[i])
                    head_groups.append(list(range(start, len(flat))))
                out = self.model.forward_full(
                    flat,
                    pairs=[(k, 0, 1) for k in range(len(flat))],
                    with_types=False,
                    with_embeddings=False,
                    head_groups=head_groups,
                )
                probs = activation_probs(
                    out.relation_logits, self.config.multi_label
                )
                offset = 0
                for i in chunk:
                    for pair in pairs_per_table[i]:
                        results[i][pair] = self._decide_relation(probs[offset])
                        offset += 1
        else:
            encoded = {i: self.encoding.encode_table(tables[i]) for i in active}
            signatures = [(encoded[i].length,) for i in active]
            for group in planner.plan(signatures):
                chunk = [active[k] for k in group]
                flat_pairs = [
                    (b, col_i, col_j)
                    for b, i in enumerate(chunk)
                    for (col_i, col_j) in pairs_per_table[i]
                ]
                out = self.model.forward_full(
                    [encoded[i] for i in chunk],
                    pairs=flat_pairs,
                    with_types=False,
                    with_embeddings=False,
                    # One head group per table: relation-head GEMM row
                    # counts depend on that table alone (byte identity).
                    head_groups=[[b] for b in range(len(chunk))],
                )
                probs = activation_probs(
                    out.relation_logits, self.config.multi_label
                )
                offset = 0
                for i in chunk:
                    for pair in pairs_per_table[i]:
                        results[i][pair] = self._decide_relation(probs[offset])
                        offset += 1
        return results

    def _decide_relation(self, probs_row: np.ndarray) -> np.ndarray:
        """The per-pair decision rule (threshold-or-argmax vs argmax)."""
        if self.config.multi_label:
            return self._predict_multilabel(probs_row[None])[0]
        return np.asarray(probs_row.argmax())

    # ------------------------------------------------------------------
    # Single-pass batched annotation (the serving path)
    # ------------------------------------------------------------------
    def invalidate_fingerprint(self) -> None:
        """Drop the memoized annotation fingerprint.

        :meth:`train` calls this automatically; code that mutates model
        weights behind the trainer's back (manual ``load_state_dict``,
        parameter surgery) must call it too, or stale fingerprints would
        alias cached annotations across different weights.  Also drops the
        model's memoized inference sessions — they cache weight views under
        the same contract.
        """
        self._annotation_fingerprints.clear()
        self.model.invalidate_sessions()

    def annotation_fingerprint(
        self,
        dtype: str = "float32",
        probe: Optional[str] = None,
        waste_budget: int = 0,
        precision: Optional[str] = None,
    ) -> str:
        """Stable hash of everything that determines an annotation output.

        Combines :meth:`DoduoModel.fingerprint` (architecture + weights) with
        the serialization recipe (token budget, value ordering, headers), the
        tokenizer vocabulary, the decision regime (``multi_label``,
        ``single_column``), and the label vocabularies.  Two trainers with
        equal fingerprints produce bitwise-identical annotations for the same
        request, so this is the model component of the persistent result
        cache key (:mod:`repro.serving.diskcache`) **and** the routing key
        of the multi-model registry (:mod:`repro.serving.registry`):
        changing any weight, serializer knob, or vocabulary invalidates
        every cached entry and re-keys the route.

        ``dtype`` is the serving compute precision (``EngineConfig.dtype``):
        a ``float64`` engine produces different bytes than a ``float32``
        one, so the dtype folds into the digest and caches never mix
        precisions.  The default ``"float32"`` digest is unchanged from
        before the dtype policy existed, keeping persisted disk-cache
        entries valid.

        ``probe`` is the probe-planning descriptor
        (:meth:`~repro.core.probe.ProbePlanner.fingerprint_tag`): a planned
        engine answers ``pairs=None`` requests with a *different pair set*
        than an exhaustive one, so the plan policy folds into the digest
        and no cache or route ever mixes plans.  ``None`` — exhaustive
        probing, the default policy — leaves the digest marker-free, same
        contract as the dtype marker: pre-planner persisted cache keys stay
        valid.

        ``waste_budget`` is the engine's near-width packing budget
        (``EngineConfig.waste_budget``): a non-zero budget lets adjacent
        width buckets merge, which changes padding and therefore output
        bytes — so it folds into the digest.  The default ``0`` (exact
        bucketing, the byte-identity contract) stays marker-free like the
        other defaults, keeping previously persisted cache keys valid.

        ``precision`` is the weight-representation policy
        (``EngineConfig.precision``): ``"int8"`` serves from quantized
        weights behind an accuracy gate, which is *deliberately* not
        byte-identical, so it must never share a cache partition or a
        registry route with any float path.  ``None`` and ``"float32"``
        both leave the digest marker-free (float32 weights are the
        baseline the other markers already describe).

        Memoized (hashing walks every weight); :meth:`train` invalidates the
        memo, and :meth:`invalidate_fingerprint` does so for out-of-band
        weight mutation.
        """
        memo_key = (dtype, probe, waste_budget, precision)
        cached = self._annotation_fingerprints.get(memo_key)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.model.fingerprint().encode("utf-8"))
        digest.update(repr(self.serializer.config).encode("utf-8"))
        digest.update(
            repr(
                (
                    self.config.multi_label,
                    self.config.single_column,
                    tuple(self.config.tasks),
                )
            ).encode("utf-8")
        )
        for word in self.tokenizer.vocab.tokens():
            digest.update(b"\x1f")
            digest.update(word.encode("utf-8"))
        for vocab in (self.dataset.type_vocab, self.dataset.relation_vocab):
            digest.update(b"\x1d")
            for label in vocab:
                digest.update(b"\x1f")
                digest.update(label.encode("utf-8"))
        if dtype != "float32":
            # The float32 digest predates the dtype policy; keeping it
            # marker-free preserves every previously persisted cache key.
            digest.update(f"|dtype={dtype}".encode("utf-8"))
        if probe is not None:
            # Same pattern: exhaustive probing (None) predates the planner
            # and stays marker-free.
            digest.update(f"|probe={probe}".encode("utf-8"))
        if waste_budget:
            # Near-width packing merges width buckets, changing padding and
            # output bytes; exact bucketing (0) stays marker-free.
            digest.update(f"|waste_budget={waste_budget}".encode("utf-8"))
        if precision not in (None, "float32"):
            # Quantized weights (int8) are accuracy-gated, not byte-gated:
            # they get their own cache partition.  float32 — the baseline
            # representation — stays marker-free like every other default.
            digest.update(f"|precision={precision}".encode("utf-8"))
        value = digest.hexdigest()
        self._annotation_fingerprints[memo_key] = value
        return value

    def encode_for_annotation(self, table: Table) -> EncodedAnnotationInput:
        """Serialize ``table`` the way :meth:`annotate_batch` consumes it.

        Reads through the shared encoding pipeline, so repeated annotation
        of the same content never re-serializes.
        """
        return self.encoding.encode(table)

    def annotate_batch(
        self,
        tables: Sequence[Table],
        encoded: Optional[Sequence[EncodedAnnotationInput]] = None,
        pair_requests: Optional[Sequence[Optional[Sequence[Tuple[int, int]]]]] = None,
        with_embeddings: bool = True,
        with_relations: bool = True,
        waste_budget: int = 0,
        kernels: Optional[str] = None,
        compute_dtype: str = "float32",
        column_cache: Optional["ColumnStateStore"] = None,
        probe_planner: Optional["ProbePlanner"] = None,
    ) -> List[RawTableAnnotation]:
        """Annotate a batch of tables, one encoder pass per width bucket.

        Types, per-type probabilities, relation probabilities, and column
        embeddings are all derived from one padded forward pass per bucket
        (:meth:`DoduoModel.forward_full`) — the legacy ``predict_*`` entry
        points re-encode the same tables once per product.  Single-column
        mode needs a second pass for column-pair sequences (they are
        serialized differently from single columns), but both passes remain
        batched across the bucket's tables.

        Buckets are exact (:class:`~repro.encoding.BatchPlanner`): tables
        share a pass only when they dictate identical padded widths, so
        every result is **byte-identical** to annotating its table alone —
        batching changes cost, never bytes.

        ``encoded`` lets callers (the serving engine's cache) supply
        pre-serialized inputs; ``pair_requests`` overrides the probed column
        pairs per table (``None`` entries fall back to
        :func:`default_relation_pairs`); ``waste_budget`` forwards the
        planner's opt-in near-width packing (merged buckets trade the
        byte-identity contract for fewer passes — see
        :class:`~repro.encoding.BatchPlanner`; 0, the default, keeps exact
        buckets).

        ``kernels``/``compute_dtype`` select the forward implementation and
        precision (see :meth:`DoduoModel.forward_full`).  ``column_cache``
        enables column-level content addressing in single-column mode: an
        object with ``lookup(fingerprint, width)`` / ``store(fingerprint,
        width, state)`` (the serving :class:`~repro.serving.ColumnCache`)
        supplying ``[CLS]`` encoder states for columns already seen — at the
        same padded width — in any prior table; it is ignored in table-wise
        mode, where cross-column attention makes per-column states
        context-dependent and therefore unsound to share.

        ``probe_planner`` (a :class:`~repro.core.probe.ProbePlanner`, or
        anything with ``plan_pairs(table)``) replaces the
        :func:`default_relation_pairs` policy for tables whose
        ``pair_requests`` entry is ``None``: the planner's budgeted,
        prefilter-pruned pair set is probed instead of the exhaustive
        default.  Explicit pair requests always bypass the planner, and a
        planned probe of pair set S is byte-identical to explicitly
        requesting S — planning changes *which* pairs are paid for, never
        the bytes of a probed pair.
        """
        if encoded is not None and len(encoded) != len(tables):
            raise ValueError(
                f"encoded has {len(encoded)} entries for {len(tables)} tables"
            )
        if pair_requests is not None and len(pair_requests) != len(tables):
            raise ValueError(
                f"pair_requests has {len(pair_requests)} entries "
                f"for {len(tables)} tables"
            )
        if not tables:
            return []
        self.model.eval()
        if encoded is None:
            encoded = [self.encode_for_annotation(t) for t in tables]
        can_relate = with_relations and self.model.relation_head is not None
        pairs_per_table: List[List[Tuple[int, int]]] = []
        for index, table in enumerate(tables):
            requested = pair_requests[index] if pair_requests else None
            if not can_relate:
                if with_relations and requested:
                    # An explicit relation question on a model that cannot
                    # answer it must fail loudly, not return an empty dict.
                    raise RuntimeError(
                        f"relation pairs {list(requested)!r} were requested for "
                        f"table {table.table_id!r} but the model was built "
                        "without a relation head"
                    )
                pairs_per_table.append([])
            elif requested is None:
                if probe_planner is not None:
                    pairs_per_table.append(
                        validate_relation_pairs(
                            table, probe_planner.plan_pairs(table)
                        )
                    )
                else:
                    pairs_per_table.append(default_relation_pairs(table))
            else:
                pairs_per_table.append(validate_relation_pairs(table, requested))
        # Exact width bucketing: only tables whose forward passes would use
        # identical padded widths share a bucket, so batch results stay
        # byte-identical to per-table annotation.  Callers that pre-plan
        # (the serving engine) hand over homogeneous batches, making this a
        # single-group no-op.
        signatures = [
            self.encoding.annotation_signature(item, pairs)
            for item, pairs in zip(encoded, pairs_per_table)
        ]
        planner = BatchPlanner(batch_size=len(tables), waste_budget=waste_budget)
        results: List[Optional[RawTableAnnotation]] = [None] * len(tables)
        for group in planner.plan(signatures):
            group_results = self._annotate_bucket(
                [tables[i] for i in group],
                [encoded[i] for i in group],
                [pairs_per_table[i] for i in group],
                with_embeddings,
                kernels=kernels,
                compute_dtype=compute_dtype,
                column_cache=column_cache,
            )
            for i, annotation in zip(group, group_results):
                results[i] = annotation
        return results  # type: ignore[return-value]

    def _annotate_bucket(
        self,
        tables: Sequence[Table],
        encoded: Sequence[EncodedAnnotationInput],
        pairs_per_table: Sequence[List[Tuple[int, int]]],
        with_embeddings: bool,
        kernels: Optional[str] = None,
        compute_dtype: str = "float32",
        column_cache: Optional["ColumnStateStore"] = None,
    ) -> List[RawTableAnnotation]:
        """Annotate one width-homogeneous bucket with one pass (or two in
        single-column mode: columns, then column pairs)."""
        if self.config.single_column:
            return self._annotate_batch_single_column(
                tables,
                encoded,
                pairs_per_table,
                with_embeddings,
                kernels=kernels,
                compute_dtype=compute_dtype,
                column_cache=column_cache,
            )
        flat_pairs = [
            (b, i, j)
            for b, pairs in enumerate(pairs_per_table)
            for (i, j) in pairs
        ]
        out = self.model.forward_full(
            list(encoded),
            pairs=flat_pairs or None,
            with_embeddings=with_embeddings,
            # One head group per table: every head GEMM's row count depends
            # on that table alone, keeping batched outputs byte-identical
            # to single-table passes (see DoduoModel.forward_full).
            head_groups=[[b] for b in range(len(tables))],
            kernels=kernels,
            compute_dtype=compute_dtype,
        )
        type_probs = activation_probs(out.type_logits, self.config.multi_label)
        relation_probs = (
            activation_probs(out.relation_logits, self.config.multi_label)
            if out.relation_logits is not None
            else None
        )
        return self._assemble_annotations(
            tables, pairs_per_table, type_probs, relation_probs, out.embeddings
        )

    def _annotate_batch_single_column(
        self,
        tables: Sequence[Table],
        encoded: Sequence[EncodedAnnotationInput],
        pairs_per_table: Sequence[List[Tuple[int, int]]],
        with_embeddings: bool,
        kernels: Optional[str] = None,
        compute_dtype: str = "float32",
        column_cache: Optional["ColumnStateStore"] = None,
    ) -> List[RawTableAnnotation]:
        """Single-column mode: one pass over columns, one over column pairs."""
        flat_columns: List[EncodedTable] = []
        column_groups: List[List[int]] = []
        for item in encoded:
            start = len(flat_columns)
            flat_columns.extend(item)
            column_groups.append(list(range(start, len(flat_columns))))
        if column_cache is not None and flat_columns:
            type_probs, embeddings = self._annotate_columns_cached(
                tables,
                flat_columns,
                column_groups,
                column_cache,
                kernels,
                compute_dtype,
            )
            if not with_embeddings:
                embeddings = None
        else:
            out = self.model.forward_full(
                flat_columns,
                with_embeddings=with_embeddings,
                # Heads run per table (its columns / its pairs), so their
                # GEMM row counts — and therefore their bytes — never
                # depend on which other tables share the batch.
                head_groups=column_groups,
                kernels=kernels,
                compute_dtype=compute_dtype,
            )
            type_probs = activation_probs(out.type_logits, self.config.multi_label)
            embeddings = out.embeddings
        pair_encoded: List[EncodedTable] = []
        pair_groups: List[List[int]] = []
        for table, pairs in zip(tables, pairs_per_table):
            start = len(pair_encoded)
            for i, j in pairs:
                pair_encoded.append(self.encoding.encode_pair(table, i, j))
            if len(pair_encoded) > start:
                pair_groups.append(list(range(start, len(pair_encoded))))
        relation_probs = None
        if pair_encoded:
            pair_out = self.model.forward_full(
                pair_encoded,
                pairs=[(k, 0, 1) for k in range(len(pair_encoded))],
                with_types=False,
                with_embeddings=False,
                head_groups=pair_groups,
                kernels=kernels,
                compute_dtype=compute_dtype,
            )
            relation_probs = activation_probs(
                pair_out.relation_logits, self.config.multi_label
            )
        return self._assemble_annotations(
            tables, pairs_per_table, type_probs, relation_probs, embeddings
        )

    def _annotate_columns_cached(
        self,
        tables: Sequence[Table],
        flat_columns: Sequence[EncodedTable],
        column_groups: Sequence[List[int]],
        column_cache: "ColumnStateStore",
        kernels: Optional[str],
        compute_dtype: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Column-pass products served through the content-addressed cache.

        Sound only in single-column mode: each column's sequence attends to
        itself alone, and batch-composition independence (the pinned
        batched==sequential contract) means a ``[CLS]`` state computed in
        any prior pass *at the same padded width* is bitwise the state this
        pass would compute.  Misses are deduplicated by content and encoded
        in one pass forced to the bucket width, so hits and misses share
        identical geometry; the type head then runs per table over the
        assembled state matrix — the same per-table GEMM row counts as the
        uncached path.  Returns ``(type_probs, state_matrix)``; the state
        matrix is row-aligned with the flattened column order, exactly like
        ``FullForward.embeddings``.
        """
        width = max(e.length for e in flat_columns)
        fingerprints = [
            column_fingerprint(column) for table in tables for column in table.columns
        ]
        states: List[Optional[np.ndarray]] = [
            column_cache.lookup(fp, width) for fp in fingerprints
        ]
        missing: Dict[str, List[int]] = {}
        for index, state in enumerate(states):
            if state is None:
                missing.setdefault(fingerprints[index], []).append(index)
        if missing:
            firsts = [positions[0] for positions in missing.values()]
            hidden, locations = self._encode_states(
                [flat_columns[i] for i in firsts], width, kernels, compute_dtype
            )
            gathered = hidden[(locations[:, 0], locations[:, 1])]
            for row, first in enumerate(firsts):
                state = gathered[row].copy()
                column_cache.store(fingerprints[first], width, state)
                for index in missing[fingerprints[first]]:
                    states[index] = state
        state_matrix = np.stack(states)
        session = self.model._resolve_session(kernels, compute_dtype)
        if getattr(session, "merge_head_groups", False):
            # Accuracy-gated sessions (int8) are licensed to run one head
            # GEMM over the whole assembled state matrix instead of one
            # per table — groups are contiguous ranges in flat order, so
            # concatenating them preserves row alignment.
            column_groups = [[i for group in column_groups for i in group]]
        parts = []
        for group in column_groups:
            if group:
                parts.append(
                    self.model.apply_type_head(state_matrix[group], session)
                )
        num_types = self.model.type_head.out.out_features
        type_logits = (
            np.concatenate(parts, axis=0)
            if parts
            else np.empty((0, num_types), dtype=state_matrix.dtype)
        )
        type_probs = activation_probs(type_logits, self.config.multi_label)
        return type_probs, state_matrix

    def _encode_states(
        self,
        encoded_items: Sequence[EncodedTable],
        width: Optional[int],
        kernels: Optional[str],
        compute_dtype: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One encoder pass at a forced width, via the selected kernel path."""
        session = self.model._resolve_session(kernels, compute_dtype)
        if session is not None:
            return session.encode_batch(encoded_items, width=width)
        hidden, locations = self.model.encode_batch(encoded_items, width=width)
        return hidden.data, locations

    @staticmethod
    def _assemble_annotations(
        tables: Sequence[Table],
        pairs_per_table: Sequence[List[Tuple[int, int]]],
        type_probs: np.ndarray,
        relation_probs: Optional[np.ndarray],
        embeddings: Optional[np.ndarray],
    ) -> List[RawTableAnnotation]:
        """Split flat batch outputs back into per-table annotations."""
        results: List[RawTableAnnotation] = []
        col_offset = pair_offset = 0
        for table, pairs in zip(tables, pairs_per_table):
            num_cols = table.num_columns
            table_relations: Dict[Tuple[int, int], np.ndarray] = {}
            for pair in pairs:
                table_relations[pair] = relation_probs[pair_offset]
                pair_offset += 1
            results.append(
                RawTableAnnotation(
                    type_probs=type_probs[col_offset:col_offset + num_cols],
                    relation_probs=table_relations,
                    probed_pairs=list(pairs),
                    embeddings=(
                        embeddings[col_offset:col_offset + num_cols].copy()
                        if embeddings is not None
                        else None
                    ),
                )
            )
            col_offset += num_cols
        return results

    def evaluate(self, dataset: TableDataset) -> Dict[str, PRF]:
        """Micro PRF per task on ``dataset``."""
        scores: Dict[str, PRF] = {}
        if TYPE_TASK in self.config.tasks:
            predictions = self.predict_types(dataset.tables)
            if self.config.multi_label:
                y_true = np.concatenate(
                    [self._indicator_for(table, dataset) for table in dataset.tables], axis=0
                )
                y_pred = np.concatenate(predictions, axis=0)
                scores[TYPE_TASK] = multilabel_micro_prf(y_true, y_pred)
            else:
                y_true = np.concatenate(
                    [
                        [dataset.type_id(col.type_labels[0]) for col in table.columns]
                        for table in dataset.tables
                    ]
                )
                y_pred = np.concatenate(predictions)
                scores[TYPE_TASK] = multiclass_micro_f1(y_true, y_pred)
        if RELATION_TASK in self.config.tasks and dataset.num_relations > 0:
            predictions = self.predict_relations(dataset.tables)
            true_rows, pred_rows = [], []
            for table, table_pred in zip(dataset.tables, predictions):
                for pair in sorted(table.relation_labels):
                    row = np.zeros(dataset.num_relations, dtype=bool)
                    for name in table.relation_labels[pair]:
                        row[dataset.relation_id(name)] = True
                    true_rows.append(row)
                    if self.config.multi_label:
                        pred_rows.append(table_pred[pair])
                    else:
                        one_hot = np.zeros(dataset.num_relations, dtype=bool)
                        one_hot[int(table_pred[pair])] = True
                        pred_rows.append(one_hot)
            if true_rows:
                scores[RELATION_TASK] = multilabel_micro_prf(
                    np.stack(true_rows), np.stack(pred_rows)
                )
        return scores

    def _indicator_for(self, table: Table, dataset: TableDataset) -> np.ndarray:
        indicator = np.zeros((table.num_columns, dataset.num_types), dtype=bool)
        for c, column in enumerate(table.columns):
            for name in column.type_labels:
                indicator[c, dataset.type_id(name)] = True
        return indicator

    # ------------------------------------------------------------------
    # Embeddings (case study / analysis)
    # ------------------------------------------------------------------
    def column_embeddings(
        self,
        table: Table,
        max_tokens_per_column: Optional[int] = None,
        layer: int = -1,
    ) -> np.ndarray:
        """Contextualized column embeddings ``(num_cols, d)`` for a table.

        ``max_tokens_per_column`` widens (or narrows) the serialization
        budget at inference time — embeddings used for clustering benefit
        from seeing more cell evidence than the training budget, and the
        position embeddings cover the longer sequence as long as it fits
        ``max_sequence_length``.  ``layer`` selects the encoder block to
        read (see :meth:`DoduoModel.column_embeddings`).
        """
        self.model.eval()
        if max_tokens_per_column is None:
            # The standard recipe reads through the shared encoding cache.
            if self.config.single_column:
                encoded = self.encoding.encode_columns(table)
            else:
                encoded = [self.encoding.encode_table(table)]
            return self.model.column_embeddings(encoded, layer=layer).data.copy()
        # A widened/narrowed budget is a different serialization recipe, so
        # it must bypass the cache (entries are keyed by content only).
        limits = self.serializer.config
        serializer = TableSerializer(
            self.tokenizer,
            SerializerConfig(
                max_tokens_per_column=max_tokens_per_column,
                max_sequence_length=limits.max_sequence_length,
                include_headers=limits.include_headers,
                value_order=limits.value_order,
                sample_seed=limits.sample_seed,
            ),
        )
        if self.config.single_column:
            encoded = [
                serializer.serialize_column(table, c)
                for c in range(table.num_columns)
            ]
        else:
            encoded = [serializer.serialize_table(table)]
        return self.model.column_embeddings(encoded, layer=layer).data.copy()

    def clone_state(self) -> Dict[str, np.ndarray]:
        return copy.deepcopy(self.model.state_dict())
