"""Asynchronous, dedup-aware request queue over one annotation engine.

:class:`EngineWorker` is the per-engine drain loop the serving front-ends
are built from: callers :meth:`~EngineWorker.submit` tables from any thread
and get back a :class:`concurrent.futures.Future`; a single worker thread
drains the bounded queue into batches under a max-batch/max-latency policy
and answers every waiter.  The multi-model
:class:`~repro.serving.gateway.AnnotationGateway` runs one worker per
routed model; :class:`AnnotationService` — the historical single-model
front-end — is now a thin compatibility wrapper over a single-entry
gateway.

Request lifecycle
-----------------
1. ``submit`` wraps the table in an :class:`~repro.serving.request.AnnotationRequest`,
   enqueues it (blocking briefly when the queue is full — backpressure, not
   unbounded memory), and returns a future.
2. The worker takes the first pending request, then keeps gathering until
   either ``max_batch`` requests are in hand or ``max_latency`` seconds have
   passed since the batch opened — the classic throughput/latency dial.
3. The drained batch is **deduplicated**: requests whose (table content,
   options, pairs) cache key match share one annotation.  Each group's
   representative is annotated once and the *same*
   :class:`~repro.serving.request.AnnotationResult` object is handed to
   every waiter in the group, so ten users asking about one popular table
   cost one forward pass (or zero, when the engine's disk tier already
   holds the answer).
4. Futures resolve with the result, or with the exception the engine raised
   (delivered per-waiter, never swallowed).

Exactness and drain planning
----------------------------
Every drain of unique requests is handed to ``engine.annotate_batch``,
which splits it on serialized-length boundaries into **exact width
buckets** (:mod:`repro.encoding`): no sequence is ever padded beyond the
width it would use alone, so queued results are **byte-identical** to
direct ``engine.annotate`` calls in *both* modes — dedup, batching, and
the cache tiers change cost, never bytes.  (Historically ``exact`` mode
bought byte-identity by running one single-table pass per unique request;
the encoding layer made that trade obsolete.)

The ``exact`` flag now selects the *failure-isolation* policy: ``True``
(default) retries a failed drain one request at a time so an invalid
request poisons only its own dedup group; ``False`` lets the whole drain
share the exception — marginally cheaper when failures are impossible.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.annotator import AnnotatedTable
from .diskcache import result_cache_key
from .engine import AnnotationEngine, RequestLike
from .request import AnnotationOptions, AnnotationRequest, AnnotationResult


@dataclass(frozen=True)
class QueueConfig:
    """Batching policy of one :class:`EngineWorker` (and, by extension, of
    every worker an :class:`~repro.serving.gateway.AnnotationGateway` or
    :class:`AnnotationService` spawns).

    ``max_batch`` caps how many requests one drain gathers; ``max_latency``
    is how long (seconds) the worker waits for the batch to fill before
    serving what it has — the knob trading per-request latency against
    batching efficiency; ``max_queue_size`` bounds the pending queue
    (``submit`` blocks when full, raising ``queue.Full`` after
    ``submit_timeout`` seconds, so producers feel backpressure instead of
    exhausting memory); ``exact`` keeps per-request failure isolation (a
    failed drain is retried request-by-request) — results are
    byte-identical to direct engine calls either way, because the engine
    batches drains on exact serialized-length boundaries (see the module
    docstring).
    """

    max_batch: int = 8
    max_latency: float = 0.01
    max_queue_size: int = 1024
    submit_timeout: Optional[float] = None
    exact: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {self.max_batch}")
        if self.max_latency < 0:
            raise ValueError(f"max_latency must be >= 0: {self.max_latency}")
        if self.max_queue_size < 1:
            raise ValueError(f"max_queue_size must be >= 1: {self.max_queue_size}")


@dataclass
class ServiceStats:
    """Counters for one worker's (or single-model service's) lifetime.

    ``dedup_hits`` counts requests answered by sharing another request's
    in-flight annotation (queue-level dedup, before any cache tier);
    ``unique_annotated`` counts representatives actually handed to the
    engine; ``batches`` counts worker drains, not engine forward batches.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    dedup_hits: int = 0
    unique_annotated: int = 0


class _Pending:
    """One queued request plus the future its submitter holds."""

    __slots__ = ("request", "future")

    def __init__(self, request: AnnotationRequest, future: Future) -> None:
        self.request = request
        self.future = future


_SHUTDOWN = object()


class EngineWorker:
    """Per-engine drain loop: bounded queue, batching worker thread, dedup.

    Typical direct use::

        engine = AnnotationEngine(trainer, EngineConfig(cache_dir="cache/"))
        with EngineWorker(engine) as worker:
            futures = [worker.submit(t) for t in tables]
            results = [f.result() for f in futures]

    The worker owns no model state — it is a scheduling layer over the
    engine it is given, and every equivalence guarantee of the engine's
    cache tiers applies unchanged (see the module docstring for the exact
    contract).  One worker thread annotates; any number of threads may
    submit.  Most code reaches workers through a front-end — the
    single-model :class:`AnnotationService` or the multi-model
    :class:`~repro.serving.gateway.AnnotationGateway`, which runs one
    worker per registered model so dedup windows and drain batches never
    mix fingerprints.
    """

    def __init__(
        self,
        engine: AnnotationEngine,
        config: Optional[QueueConfig] = None,
    ) -> None:
        self.engine = engine
        self.config = config or QueueConfig()
        self.stats = ServiceStats()
        self._queue: "_queue.Queue" = _queue.Queue(maxsize=self.config.max_queue_size)
        self._lock = threading.Lock()
        # Serializes the post-shutdown leftover sweeps (close() and late
        # blocking submitters): the engine assumes one annotating thread.
        self._sweep_lock = threading.Lock()
        self._worker: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EngineWorker":
        """Spawn the worker thread (idempotent; raises once closed).

        (No lock here: external callers race benignly with the `is None`
        check, and `submit` calls this while already holding ``_lock``.)
        """
        if self._closed:
            # A post-close thread would park on queue.get forever — nothing
            # can be enqueued again and close() will not join it twice.
            raise RuntimeError("cannot start a closed worker")
        if self._worker is None:
            self._worker = threading.Thread(
                target=self._worker_loop, name="annotation-worker", daemon=True
            )
            self._worker.start()
        return self

    def close(self) -> None:
        """Stop accepting submissions, serve everything pending, then join.

        Every future obtained before ``close`` resolves; submitting after
        ``close`` raises ``RuntimeError``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._worker is not None:
            self._queue.put(_SHUTDOWN)
            self._worker.join()
            with self._lock:
                self._worker = None
            # Post-join sweep: a blocking submit that only won its race
            # against the sentinel after the worker's final drain may have
            # left items behind — serve them here so every future obtained
            # before (or during) close still resolves.
            self._sweep_leftovers()

    def _sweep_leftovers(self) -> None:
        """Serve anything still queued after the worker thread is gone.

        Serialized: several late submitters and close() may all reach
        here, and the engine must only ever be driven by one thread at a
        time (the shared encoding LRU and the stats deltas assume it).
        """
        with self._sweep_lock:
            leftovers = self._drain_remaining()
            if leftovers:
                self._process(leftovers)

    def __enter__(self) -> "EngineWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions] = None,
        block: bool = True,
    ) -> "Future[AnnotationResult]":
        """Enqueue one table; returns the future holding its result.

        Blocks (up to ``config.submit_timeout``) when the queue is full —
        backpressure — and raises ``queue.Full`` on timeout.  With
        ``block=False`` a full queue raises ``queue.Full`` immediately
        instead of blocking (the gateway's asyncio path polls this way so
        backpressure never stalls an event loop).  The returned future
        resolves to the same :class:`AnnotationResult` object for every
        concurrent submitter of content-identical requests.
        """
        request = self.engine._as_request(item, options)
        future: "Future[AnnotationResult]" = Future()
        pending = _Pending(request, future)
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed worker")
            if self._worker is None:
                # Auto-start so `worker.submit(...)` works without an
                # explicit start()/with-block.
                self.start()
            if not block:
                # Non-blocking enqueue completes under the lock: cheap, and
                # close() can never interleave mid-submission.
                self._queue.put_nowait(pending)
                self.stats.submitted += 1
                return future
        # The BLOCKING put runs outside the lock — a submitter stuck on a
        # full queue must not convoy other submitters (or the gateway's
        # asyncio put_nowait path) behind the state lock for a whole
        # drain.  The price is a shutdown race: close()'s sentinel can now
        # overtake us, so if the worker is already gone when our item
        # lands, we drain and serve the queue ourselves rather than
        # strand the future (close() runs the same sweep after joining).
        self._queue.put(pending, timeout=self.config.submit_timeout)
        with self._lock:
            self.stats.submitted += 1
            worker_gone = self._closed and self._worker is None
        if worker_gone:
            self._sweep_leftovers()
        return future

    def annotate(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions] = None,
    ) -> AnnotationResult:
        """Synchronous convenience: submit and wait for the result.

        (Windowed streaming lives on the front-ends —
        ``AnnotationGateway.annotate_stream``/``astream`` and the
        ``AnnotationService`` wrapper — so the policy exists in one place.)
        """
        return self.submit(item, options).result()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        shutting_down = False
        while not shutting_down:
            item = self._queue.get()
            if item is _SHUTDOWN:
                # Keep draining: submissions enqueued before close() must
                # still be served (close() flipped _closed first, so no new
                # work can race in behind the sentinel).
                shutting_down = True
                batch = self._drain_remaining()
            else:
                batch, shutting_down = self._gather_batch(item)
            if not batch:
                continue
            try:
                self._process(batch)
            except Exception as error:  # noqa: BLE001 - worker must survive
                # Backstop: nothing outside _process's own guards may kill
                # the worker — a dead worker strands every future and
                # deadlocks submitters against the bounded queue.
                for pending in batch:
                    if not pending.future.done():
                        self.stats.failed += 1
                        pending.future.set_exception(error)

    def _gather_batch(self, first: _Pending) -> Tuple[List[_Pending], bool]:
        """Collect up to ``max_batch`` requests within the latency budget."""
        batch = [first]
        deadline = time.monotonic() + self.config.max_latency
        shutting_down = False
        while len(batch) < self.config.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except _queue.Empty:
                break
            if item is _SHUTDOWN:
                shutting_down = True
                batch.extend(self._drain_remaining())
                break
            batch.append(item)
        return batch, shutting_down

    def _drain_remaining(self) -> List[_Pending]:
        """Pull every request still queued (used once shutdown is signalled)."""
        drained: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except _queue.Empty:
                return drained
            if item is not _SHUTDOWN:
                drained.append(item)

    def _process(self, batch: Sequence[_Pending]) -> None:
        """Dedup the batch, annotate one representative per group, fan out."""
        self.stats.batches += 1
        # Claim every future first; submitters may have cancelled while
        # their request sat in the queue.
        live = [p for p in batch if p.future.set_running_or_notify_cancel()]
        if not live:
            return
        fingerprint = self.engine.model_fingerprint
        groups: "dict[str, List[_Pending]]" = {}
        for pending in live:
            try:
                key = result_cache_key(fingerprint, pending.request)
            except Exception as error:  # noqa: BLE001 - malformed request
                # e.g. non-string cell values break the content hash; fail
                # that request alone, not the whole drain.
                self._fan_out_error([pending], error)
                continue
            groups.setdefault(key, []).append(pending)
        representatives = [members[0] for members in groups.values()]
        self.stats.dedup_hits += len(live) - len(representatives)
        self.stats.unique_annotated += len(representatives)
        # One engine call per drain: the engine plans the unique requests
        # into exact width buckets, so results are byte-identical to
        # single-table passes while the drain still batches.
        try:
            results = self.engine.annotate_batch(
                [rep.request for rep in representatives]
            )
        except Exception as error:  # noqa: BLE001 - delivered to waiters
            if not self.config.exact:
                # The drain shares its fate: every waiter sees the error.
                for members in groups.values():
                    self._fan_out_error(members, error)
                return
            # Exact mode isolates failures: retry request-by-request so a
            # poisoned request fails alone.  Retried requests cost nothing
            # extra beyond their own pass — serializations are cached, and
            # single-request results are byte-identical to batched ones.
            for members in groups.values():
                try:
                    result = self.engine.annotate_batch([members[0].request])[0]
                except Exception as retry_error:  # noqa: BLE001
                    self._fan_out_error(members, retry_error)
                else:
                    self._fan_out(members, result)
            return
        for result, members in zip(results, groups.values()):
            self._fan_out(members, result)

    def _fan_out(self, members: Sequence[_Pending], result: AnnotationResult) -> None:
        for pending in members:
            # Count BEFORE resolving: the future is the waiter's wake-up
            # call, and a waiter that has its answer may immediately read
            # the stats (the gateway's admin plane serves them over the
            # wire) — the completion must already be visible then.
            self.stats.completed += 1
            if pending.request.table is result.request.table:
                # Deliberately the same object for every waiter asking about
                # the same table — the dedup contract tests rely on identity.
                pending.future.set_result(result)
            else:
                # Content-equal but distinct table objects (e.g. different
                # table_id): share every annotation product, but wrap them
                # around the waiter's *own* table so its identity/metadata
                # survive — same rule the disk tier applies on decode.
                pending.future.set_result(self._rewrap(pending.request, result))

    @staticmethod
    def _rewrap(request: AnnotationRequest, result: AnnotationResult) -> AnnotationResult:
        source = result.annotated
        annotated = AnnotatedTable(
            table=request.table,
            coltypes=source.coltypes,
            colrels=source.colrels,
            colemb=source.colemb,
            type_scores=source.type_scores,
            requested_pairs=source.requested_pairs,
        )
        return AnnotationResult(
            request=request,
            annotated=annotated,
            from_cache=result.from_cache,
            batch_index=result.batch_index,
            from_disk=result.from_disk,
        )

    def _fan_out_error(self, members: Sequence[_Pending], error: Exception) -> None:
        for pending in members:
            self.stats.failed += 1  # counted before the waiter wakes (see _fan_out)
            pending.future.set_exception(error)


class AnnotationService:
    """Single-model compatibility wrapper over an
    :class:`~repro.serving.gateway.AnnotationGateway`.

    The historical PR-2 front-end: one engine, one queue, one worker.  It
    now *delegates* to a gateway holding exactly that engine (registered
    pinned, under the name ``"default"``), so the single-model and
    multi-model serving paths are one code path; the thread-based API —
    ``submit`` returning a :class:`concurrent.futures.Future`,
    ``annotate``, ``annotate_stream``, context-manager lifecycle — is
    unchanged.  For several models behind one front door, or for the
    asyncio-native ``asubmit``/``astream`` API, use the gateway directly::

        engine = AnnotationEngine(trainer, EngineConfig(cache_dir="cache/"))
        with AnnotationService(engine) as service:
            futures = [service.submit(t) for t in tables]
            results = [f.result() for f in futures]
    """

    #: Name the wrapped engine is registered under in the backing gateway.
    MODEL_NAME = "default"

    def __init__(
        self,
        engine: AnnotationEngine,
        config: Optional[QueueConfig] = None,
    ) -> None:
        from .gateway import AnnotationGateway  # deferred: gateway imports queue

        self.engine = engine
        self.config = config or QueueConfig()
        self.gateway = AnnotationGateway.for_engine(
            engine, name=self.MODEL_NAME, queue_config=self.config
        )
        # One pinned in-memory engine is never evicted, so the worker is
        # stable for the service's lifetime; grab it once for stats/start.
        self._worker = self.gateway.worker(self.MODEL_NAME)

    @property
    def stats(self) -> ServiceStats:
        """The underlying worker's counters (the historical attribute)."""
        return self._worker.stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AnnotationService":
        """Spawn the worker thread (idempotent)."""
        self._worker.start()
        return self

    def close(self) -> None:
        """Stop accepting submissions, serve everything pending, then join."""
        self.gateway.close()

    def __enter__(self) -> "AnnotationService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission (delegated through the gateway's single route)
    # ------------------------------------------------------------------
    def submit(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions] = None,
    ) -> "Future[AnnotationResult]":
        """Enqueue one table; see :meth:`EngineWorker.submit`."""
        return self.gateway.submit(item, options)

    def annotate(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions] = None,
    ) -> AnnotationResult:
        """Synchronous convenience: submit and wait for the result."""
        return self.gateway.annotate(item, options)

    def annotate_stream(
        self,
        items: Iterable[RequestLike],
        options: Optional[AnnotationOptions] = None,
        window: Optional[int] = None,
    ) -> Iterator[AnnotationResult]:
        """Pump an iterable through the queue, yielding results in order."""
        return self.gateway.annotate_stream(items, options, window=window)
