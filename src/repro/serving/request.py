"""Request/response types of the annotation serving API.

An :class:`AnnotationRequest` pairs one table with per-request options the
legacy ``Doduo.annotate`` signature could not express (score thresholds,
top-k score truncation, explicit relation pairs); an
:class:`AnnotationResult` wraps the :class:`~repro.core.annotator.AnnotatedTable`
produced for it plus serving metadata (cache hit, batch id).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.annotator import AnnotatedTable
from ..datasets.tables import Table


@dataclass(frozen=True)
class AnnotationOptions:
    """Per-request knobs.

    ``with_embeddings``/``with_relations`` switch whole products off;
    ``score_threshold`` overrides the multi-label decision threshold
    (default 0.5 — the paper's protocol); ``top_k`` truncates each column's
    ``type_scores`` dictionary to its ``k`` best entries so results stay
    small on wide label vocabularies.

    Cache contract: every field participates in the persistent result-cache
    key and the queue's dedup key (:func:`repro.serving.diskcache.result_cache_key`),
    so requests with different options never share a cached or deduped
    answer, and changing any option is an automatic cache invalidation.
    """

    with_embeddings: bool = True
    with_relations: bool = True
    top_k: Optional[int] = None
    score_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k < 1:
            raise ValueError(f"top_k must be >= 1: {self.top_k}")
        if self.score_threshold is not None and not 0.0 <= self.score_threshold <= 1.0:
            raise ValueError(
                f"score_threshold must be in [0, 1]: {self.score_threshold}"
            )


@dataclass
class AnnotationRequest:
    """One table to annotate, plus options and optional explicit pairs.

    ``pairs`` fixes which column pairs the relation head probes; ``None``
    falls back to the default policy (gold pairs when the table carries
    relation labels, else subject-column pairs ``(0, j)``).

    ``model`` is a *routing* hint for the multi-model
    :class:`~repro.serving.gateway.AnnotationGateway`: the registered model
    name (or fingerprint) that should answer this request.  ``None`` means
    "whatever the caller/gateway defaults to".  The
    :class:`~repro.serving.AnnotationEngine` ignores it (an engine IS one
    model); routed front-ends — the gateway, and therefore also the
    single-entry :class:`~repro.serving.AnnotationService` wrapper — raise
    ``KeyError`` when it names a route they don't hold.

    Identity for caching and dedup is the table's *content* fingerprint
    (headers + cell values — :func:`repro.encoding.cache.table_fingerprint`)
    plus the options and pairs: two requests for content-equal tables share
    work even when ``table_id``/metadata or object identity differ.
    ``model`` deliberately does **not** participate in the cache key — the
    serving model's own fingerprint already does, so two names routing to
    the same weights share cached work, and one name re-pointed at new
    weights misses cleanly.
    """

    table: Table
    options: AnnotationOptions = field(default_factory=AnnotationOptions)
    pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    model: Optional[str] = None

    def __post_init__(self) -> None:
        if self.table.num_columns == 0:
            raise ValueError(
                f"table {self.table.table_id!r} has no columns to annotate"
            )
        if self.pairs is not None:
            self.pairs = tuple((int(i), int(j)) for i, j in self.pairs)


@dataclass
class AnnotationResult:
    """The engine's answer for one request.

    ``annotated`` carries the toolbox-compatible payload (types, scores,
    relations, embeddings, probed pairs); ``from_cache`` records whether the
    table's serialization was an in-memory LRU hit; ``from_disk`` records
    whether the whole annotation was served from the persistent result cache
    (no encoder pass at all — see :mod:`repro.serving.diskcache`);
    ``batch_index`` says which forward batch produced it (``-1`` for disk
    hits, which never join a batch).

    Equivalence contract: regardless of which tier answered — fresh forward
    pass, LRU-cached serialization, or disk-cached annotation — the
    ``annotated`` payload for a given (table content, model fingerprint,
    options) triple is byte-identical to the pass that first produced it.
    """

    request: AnnotationRequest
    annotated: AnnotatedTable
    from_cache: bool = False
    batch_index: int = -1
    from_disk: bool = False

    # -- convenience passthroughs -------------------------------------------
    @property
    def table(self) -> Table:
        return self.annotated.table

    @property
    def coltypes(self) -> List[List[str]]:
        return self.annotated.coltypes

    @property
    def colrels(self) -> Dict[Tuple[int, int], List[str]]:
        return self.annotated.colrels

    @property
    def colemb(self):
        return self.annotated.colemb

    @property
    def type_scores(self) -> List[Dict[str, float]]:
        return self.annotated.type_scores

    def top_types(self, column: int, k: int = 3) -> List[Tuple[str, float]]:
        return self.annotated.top_types(column, k=k)

    def to_dict(
        self,
        with_scores: bool = True,
        with_embeddings: bool = False,
        record_id: Optional[object] = None,
    ) -> Dict:
        """JSON-serializable summary (the ``repro annotate`` JSONL record).

        ``record_id`` is the serving protocol's client correlation token
        (:mod:`repro.serving.protocol`): when the wire record carried an
        ``"id"`` field it is echoed here as the answer's last key, so
        clients can match out-of-order answers.  ``None`` (no token)
        leaves the record byte-identical to the historical shape.
        """
        payload: Dict = {
            "table_id": self.table.table_id,
            "columns": [
                {
                    "header": col.header,
                    "predicted_types": self.coltypes[c],
                }
                for c, col in enumerate(self.table.columns)
            ],
            "relations": [
                {"columns": list(pair), "predicted_relations": labels}
                for pair, labels in sorted(self.colrels.items())
            ],
        }
        if with_scores:
            for c, column_payload in enumerate(payload["columns"]):
                ranked = sorted(
                    self.type_scores[c].items(), key=lambda item: (-item[1], item[0])
                )
                column_payload["type_scores"] = {
                    name: round(float(score), 6) for name, score in ranked
                }
        if self.colemb is not None:
            payload["embedding_dim"] = int(self.colemb.shape[1])
            if with_embeddings:
                for c, column_payload in enumerate(payload["columns"]):
                    column_payload["embedding"] = [
                        round(float(v), 6) for v in self.colemb[c]
                    ]
        if record_id is not None:
            payload["id"] = record_id
        return payload
