"""Serving front-end: batched single-pass annotation over trained models.

The stack, bottom-up:

* :class:`AnnotationRequest` / :class:`AnnotationOptions` — one table plus
  per-request knobs; :class:`AnnotationResult` wraps the toolbox-compatible
  payload plus serving metadata.
* :class:`AnnotationEngine` — exact width-bucketed batching over the shared
  :class:`~repro.encoding.EncodingPipeline` (zero cross-request padding,
  batched results byte-identical to sequential ones), one encoder forward
  pass per bucket, and an optional persistent result-cache tier
  (:class:`DiskCache`, boundable via ``max_bytes`` and compactable) so
  repeated corpora never re-encode across process restarts.
* :class:`AnnotationService` — an asynchronous bounded request queue whose
  worker drains submissions into batches under a max-batch/max-latency
  policy and dedups concurrent content-identical requests onto one forward
  pass.

Quickstart::

    from repro.serving import (
        AnnotationEngine, AnnotationService, EngineConfig, QueueConfig,
    )

    engine = AnnotationEngine(model, EngineConfig(batch_size=16,
                                                  cache_dir="anno-cache/"))
    results = engine.annotate_batch(tables)            # one pass per chunk
    for result in engine.annotate_stream(table_iter):  # unbounded workloads
        print(result.coltypes)

    with AnnotationService(engine, QueueConfig(max_latency=0.005)) as service:
        futures = [service.submit(t) for t in tables]  # any thread, any time
        answers = [f.result() for f in futures]

Every tier preserves the engine's equivalence contract: dedup and caching
change what a request *costs*, never what it *returns* (see
:mod:`repro.serving.queue` and :mod:`repro.serving.diskcache` for the exact
byte-identity guarantees).
"""

from .cache import LRUCache, table_fingerprint
from .diskcache import (
    CompactionResult,
    DiskCache,
    DiskCacheStats,
    result_cache_key,
)
from .engine import AnnotationEngine, EngineConfig, EngineStats
from .queue import AnnotationService, QueueConfig, ServiceStats
from .request import AnnotationOptions, AnnotationRequest, AnnotationResult

__all__ = [
    "AnnotationEngine",
    "AnnotationOptions",
    "AnnotationRequest",
    "AnnotationResult",
    "AnnotationService",
    "CompactionResult",
    "DiskCache",
    "DiskCacheStats",
    "EngineConfig",
    "EngineStats",
    "LRUCache",
    "QueueConfig",
    "ServiceStats",
    "result_cache_key",
    "table_fingerprint",
]
