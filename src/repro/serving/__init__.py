"""Serving front-end: batched single-pass annotation over trained models.

The triad:

* :class:`AnnotationRequest` — one table + per-request options,
* :class:`AnnotationEngine` — length-bucketed batching, an LRU serialization
  cache, one padded encoder forward pass per batch,
* :class:`AnnotationResult` — the toolbox-compatible payload plus serving
  metadata.

Quickstart::

    from repro.serving import AnnotationEngine, EngineConfig

    engine = AnnotationEngine(model, EngineConfig(batch_size=16))
    results = engine.annotate_batch(tables)            # one pass per chunk
    for result in engine.annotate_stream(table_iter):  # unbounded workloads
        print(result.coltypes)
"""

from .cache import LRUCache, table_fingerprint
from .engine import AnnotationEngine, EngineConfig, EngineStats
from .request import AnnotationOptions, AnnotationRequest, AnnotationResult

__all__ = [
    "AnnotationEngine",
    "AnnotationOptions",
    "AnnotationRequest",
    "AnnotationResult",
    "EngineConfig",
    "EngineStats",
    "LRUCache",
    "table_fingerprint",
]
