"""Serving front-end: batched single-pass annotation behind a routed gateway.

The stack, bottom-up:

* :class:`AnnotationRequest` / :class:`AnnotationOptions` — one table plus
  per-request knobs and an optional ``model`` route;
  :class:`AnnotationResult` wraps the toolbox-compatible payload plus
  serving metadata.
* :class:`AnnotationEngine` — exact width-bucketed batching over the shared
  :class:`~repro.encoding.EncodingPipeline` (zero cross-request padding,
  batched results byte-identical to sequential ones — or opt-in near-width
  packing via ``EngineConfig.waste_budget``), one encoder forward pass per
  bucket, and an optional persistent result-cache tier
  (:class:`DiskCache`, boundable via ``max_bytes`` and compactable) so
  repeated corpora never re-encode across process restarts.
* :class:`EngineWorker` — the per-engine bounded request queue whose worker
  thread drains submissions into batches under a max-batch/max-latency
  policy and dedups concurrent content-identical requests onto one forward
  pass.
* :class:`ModelRegistry` — named models (lazy checkpoint loading, routing
  by name *or* model fingerprint, LRU eviction of idle engines above
  ``max_live`` with a pinned floor, per-fingerprint disk-cache
  partitioning).
* :class:`AnnotationGateway` — the single front door: routes every request
  to its model's worker and exposes both the thread-based ``submit()`` and
  the asyncio-native ``asubmit()``/``astream()`` client APIs.
* :class:`AnnotationService` — the historical single-model front-end, now
  a thin compatibility wrapper over a one-entry gateway.
* :mod:`repro.serving.protocol` — the transport-agnostic wire protocol
  (newline-delimited JSON records, ``{"error": ...}`` answers, ``"id"``
  correlation echo, admin operations) shared by corpus serving, the stdin
  loop, and the socket server.
* :class:`AnnotationServer` — the asyncio TCP front door speaking that
  protocol over the gateway's native ``asubmit()``, with per-connection
  ordering, backpressure, an admin plane (``stats``/``health``/hot
  ``register``/``repoint``/``unregister``/``shutdown``), and graceful
  drain; :class:`ServerThread` embeds it in synchronous code.
* :class:`FabricCache` — the concurrently-writable cross-process disk
  tier (per-writer append segments, shared compacted generations served
  over ``mmap``) that lets sibling worker processes read each other's
  cached results.
* :class:`ServingPool` — the multi-process front door behind ``repro
  serve --listen HOST:PORT --workers N``: one parent owning the address,
  N worker processes each running a full gateway + server stack over a
  shared listener and the shared cache fabric, with supervision,
  bounded restart, coordinated drain, and a pool-wide merged admin
  plane.

Quickstart::

    from repro.serving import (
        AnnotationEngine, AnnotationGateway, AnnotationService,
        EngineConfig, ModelRegistry, QueueConfig,
    )

    engine = AnnotationEngine(model, EngineConfig(batch_size=16,
                                                  cache_dir="anno-cache/"))
    results = engine.annotate_batch(tables)            # one pass per chunk
    for result in engine.annotate_stream(table_iter):  # unbounded workloads
        print(result.coltypes)

    with AnnotationService(engine, QueueConfig(max_latency=0.005)) as service:
        futures = [service.submit(t) for t in tables]  # any thread, any time
        answers = [f.result() for f in futures]

    registry = ModelRegistry(max_live=2, cache_dir="anno-cache/")
    registry.register("stable", "models/stable/")
    registry.register("canary", "models/canary/")
    with AnnotationGateway(registry) as gateway:
        future = gateway.submit(table, model="canary")  # thread API
        # ...or, inside a coroutine:
        #     result = await gateway.asubmit(table, model="canary")

    from repro.serving.server import ServerThread
    with ServerThread(gateway, port=9000) as (host, port):
        ...  # newline-delimited JSON clients connect to (host, port)

Every tier preserves the engine's equivalence contract: routing, dedup,
and caching change what a request *costs* and *which model answers*, never
what that model returns (see :mod:`repro.serving.gateway`,
:mod:`repro.serving.queue`, and :mod:`repro.serving.diskcache` for the
exact byte-identity guarantees).
"""

from ..encoding.cache import LRUCache, table_fingerprint
from . import protocol
from .colcache import ColumnCache
from .diskcache import (
    CacheLockedError,
    CompactionResult,
    DiskCache,
    DiskCacheStats,
    FileLock,
    result_cache_key,
)
from .engine import AnnotationEngine, EngineConfig, EngineStats
from .fabric import FabricCache, FabricStats, is_fabric_directory
from .gateway import AnnotationGateway, GatewayStats
from .pool import PoolConfig, ServingPool
from .queue import AnnotationService, EngineWorker, QueueConfig, ServiceStats
from .registry import ModelRegistry, RegisteredModel, RegistryStats
from .request import AnnotationOptions, AnnotationRequest, AnnotationResult
from .server import AnnotationServer, ServerStats, ServerThread

__all__ = [
    "AnnotationEngine",
    "AnnotationGateway",
    "AnnotationOptions",
    "AnnotationRequest",
    "AnnotationResult",
    "AnnotationServer",
    "AnnotationService",
    "CacheLockedError",
    "ColumnCache",
    "CompactionResult",
    "DiskCache",
    "DiskCacheStats",
    "EngineConfig",
    "EngineStats",
    "EngineWorker",
    "FabricCache",
    "FabricStats",
    "FileLock",
    "GatewayStats",
    "LRUCache",
    "ModelRegistry",
    "PoolConfig",
    "QueueConfig",
    "RegisteredModel",
    "RegistryStats",
    "ServerStats",
    "ServerThread",
    "ServiceStats",
    "ServingPool",
    "is_fabric_directory",
    "protocol",
    "result_cache_key",
    "table_fingerprint",
]
