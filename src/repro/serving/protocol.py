"""Transport-agnostic wire protocol of the annotation serving stack.

Every serving face of the toolbox — ``repro serve`` over a corpus file,
the stdin/stdout loop mode, and the asyncio socket server
(:mod:`repro.serving.server`) — speaks the same newline-delimited JSON
protocol.  This module is that protocol's single implementation: one
codepath parses wire records into :class:`~repro.serving.request.AnnotationRequest`
objects or admin operations, one codepath renders results and errors back
to JSON-serializable answer dicts.  Transports add nothing but bytes in
motion, which is what keeps the stdin loop byte-identical to the socket
server for the same traffic.

Record shapes (one JSON object per line):

* **Table record** — the :func:`repro.io.table_to_dict` shape
  (``{"kind": "table", "table_id": ..., "columns": [...]}``), optionally
  extended with a ``"model"`` route (registered name or model
  fingerprint) and an ``"id"`` correlation token.  Answered with the
  :meth:`~repro.serving.request.AnnotationResult.to_dict` record.
* **Dataset header** — ``{"kind": "dataset", ...}`` records are skipped,
  so a whole corpus file can be piped through unchanged.
* **Admin record** — ``{"op": ...}`` with one of :data:`ADMIN_OPS`
  (``health``, ``stats``, ``register``, ``repoint``, ``unregister``,
  ``shutdown``), answered with ``{"ok": true, "op": ...}`` payloads (see
  :func:`handle_admin`).  Admin records are live-traffic only
  (``decode_record(admin=True)``); a static corpus row carrying ``"op"``
  is an input error.
* **Error answer** — anything that cannot be served (broken JSON, a
  zero-column table, an unknown route, a per-request annotation failure)
  is answered with ``{"error": ...}``, never with a dead connection.

Correlation: a client-supplied ``"id"`` field (any JSON value) is echoed
back as the last key of the matching answer — including error answers —
so clients multiplexing one connection can correlate out-of-order or
interleaved traffic.  Records without an ``"id"`` get byte-identical
answers to the pre-``id`` protocol.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from ..io import table_from_dict
from .request import AnnotationOptions, AnnotationRequest, AnnotationResult

#: Admin operations the protocol understands, in wire-name order.
ADMIN_OPS = ("health", "register", "repoint", "shutdown", "stats", "unregister")


def format_error(error: object) -> str:
    """The wire rendering of an exception: its message, unquoted.

    ``KeyError`` stringifies with quotes around the message; stripping
    them keeps error answers readable (and is the historical loop-mode
    rendering, so existing clients see unchanged bytes).
    """
    return str(error).strip("'\"")


def error_answer(
    message: str,
    record_id: Optional[Any] = None,
    table_id: Optional[str] = None,
    op: Optional[str] = None,
) -> Dict:
    """One ``{"error": ...}`` answer record.

    ``table_id`` names the table whose annotation failed; ``op`` names the
    admin operation that failed; ``record_id`` is the client correlation
    token (echoed last, like every answer).
    """
    answer: Dict = {}
    if table_id is not None:
        answer["table_id"] = table_id
    if op is not None:
        answer["op"] = op
    answer["error"] = message
    if record_id is not None:
        answer["id"] = record_id
    return answer


class ProtocolError(ValueError):
    """A wire record that cannot become a request or admin operation.

    Carries what little identity could be salvaged from the broken record
    (``record_id``, ``table_id``) so the error answer still correlates.
    Lenient transports (the stdin loop, the socket server) emit
    :meth:`answer`; strict ones (corpus files) let it propagate — it *is*
    a ``ValueError``, so the CLI's input-error handling applies.
    """

    def __init__(
        self,
        message: str,
        record_id: Optional[Any] = None,
        table_id: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.record_id = record_id
        self.table_id = table_id

    def answer(self) -> Dict:
        """The ready-to-emit ``{"error": ...}`` record for this failure."""
        return error_answer(
            str(self), record_id=self.record_id, table_id=self.table_id
        )


@dataclass
class RequestRecord:
    """One decoded table record: the request plus its correlation id."""

    request: AnnotationRequest
    record_id: Optional[Any] = None


@dataclass
class AdminRecord:
    """One decoded admin record: the op, its arguments, its correlation id."""

    op: str
    payload: Dict = field(default_factory=dict)
    record_id: Optional[Any] = None


DecodedRecord = Union[RequestRecord, AdminRecord]


def decode_record(
    line: Union[str, bytes, Dict],
    options: Optional[AnnotationOptions] = None,
    admin: bool = False,
) -> Optional[DecodedRecord]:
    """Decode one wire line (or an already-parsed payload).

    Returns ``None`` for blank lines and dataset-header records, a
    :class:`RequestRecord` for table records, or — with ``admin=True`` —
    an :class:`AdminRecord` for ``{"op": ...}`` records.  Anything else
    raises :class:`ProtocolError` (broken JSON, a non-table payload, a
    zero-column table, an unknown or disallowed admin op), carrying the
    record's ``"id"`` when one could be read.

    ``options`` becomes the request's per-request knobs; the transport
    owns them (CLI flags, server configuration), not the wire record.
    """
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8", errors="replace")
    if isinstance(line, str):
        text = line.strip()
        if not text:
            return None
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ProtocolError(format_error(error)) from error
        except RecursionError as error:
            # A pathologically nested line ('['*10000) blows the parser's
            # stack, not ours: still just a bad record, never a dead
            # server.
            raise ProtocolError("record is nested too deeply") from error
    else:
        payload = line
    record_id: Optional[Any] = None
    try:
        if isinstance(payload, dict):
            record_id = payload.pop("id", None)
            if "op" in payload:
                return _decode_admin(payload, record_id, admin)
        if payload.get("kind") == "dataset":
            return None
        model = payload.pop("model", None)
        request = AnnotationRequest(
            table=table_from_dict(payload),
            options=options or AnnotationOptions(),
            model=model,
        )
    except ProtocolError:
        raise
    except (ValueError, KeyError, TypeError, AttributeError) as error:
        # Salvage what identity the broken record still offers so the
        # error answer correlates even without an "id".
        table_id = (
            payload.get("table_id") if isinstance(payload, dict) else None
        )
        if not isinstance(table_id, str):
            table_id = None
        raise ProtocolError(
            format_error(error), record_id=record_id, table_id=table_id
        ) from error
    return RequestRecord(request=request, record_id=record_id)


def _decode_admin(
    payload: Dict, record_id: Optional[Any], admin: bool
) -> AdminRecord:
    op = payload.pop("op")
    if not admin:
        # Covers both refusal contexts accurately: a strict corpus row
        # (admin records are live traffic) and a live transport started
        # with admin disabled (`--no-admin`).
        raise ProtocolError(
            f"admin op {op!r} is not allowed here (this transport does "
            "not accept admin records)",
            record_id=record_id,
        )
    if not isinstance(op, str) or op not in ADMIN_OPS:
        raise ProtocolError(
            f"unknown admin op {op!r} (expected one of: {', '.join(ADMIN_OPS)})",
            record_id=record_id,
        )
    return AdminRecord(op=op, payload=payload, record_id=record_id)


def encode_result(
    result: AnnotationResult,
    with_embeddings: bool = False,
    record_id: Optional[Any] = None,
) -> Dict:
    """The answer record for one annotation result (id echoed last)."""
    return result.to_dict(with_embeddings=with_embeddings, record_id=record_id)


def encode_line(record: Dict) -> str:
    """Render one answer record as its wire line (newline-terminated)."""
    return json.dumps(record) + "\n"


def handle_admin(record: AdminRecord, gateway) -> Dict:
    """Execute one admin operation against a gateway; return the answer.

    Never raises: a failed operation (missing argument, unknown name, a
    path that is not a bundle) answers ``{"op": ..., "error": ...}`` —
    the admin plane must outlive its worst client line exactly like the
    data plane.  ``shutdown`` is acknowledged here but *performed* by the
    transport (the stdin loop breaks, the socket server drains and
    stops): the protocol layer has no connections to close.

    Mutations (``register``/``repoint``/``unregister``) act on the
    gateway, not just the registry, so stale workers are retired (drained
    first) in the same step — see :meth:`AnnotationGateway.repoint
    <repro.serving.gateway.AnnotationGateway.repoint>`.
    """
    op, payload, record_id = record.op, record.payload, record.record_id
    registry = gateway.registry
    try:
        if op == "health":
            answer = {
                "ok": True,
                "op": op,
                "models": registry.names(),
                "live": registry.live_names(),
                "default": registry.default_name,
            }
        elif op == "stats":
            answer = {
                "ok": True,
                "op": op,
                "gateway": gateway.stats.to_dict(),
                "registry": registry.stats.to_dict(),
            }
        elif op == "shutdown":
            answer = {"ok": True, "op": op}
        elif op in ("register", "repoint"):
            name = _required(payload, "name", op)
            path = _required(payload, "path", op)
            pinned = bool(payload.get("pinned", False))
            if op == "register":
                gateway.register(name, path, pinned=pinned)
            else:
                gateway.repoint(name, path, pinned=pinned)
            answer = {"ok": True, "op": op, "name": name}
        else:  # op == "unregister" (decode_record admitted only ADMIN_OPS)
            name = _required(payload, "name", op)
            gateway.unregister(name)
            answer = {"ok": True, "op": op, "name": name}
    except Exception as error:  # noqa: BLE001 - answered, never fatal
        return error_answer(format_error(error), record_id=record_id, op=op)
    if record_id is not None:
        answer["id"] = record_id
    return answer


def _required(payload: Dict, key: str, op: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ValueError(f"admin op {op!r} requires a non-empty {key!r} field")
    return value
