"""Asyncio TCP front door for the annotation gateway.

:class:`AnnotationServer` puts a real network face on the
:class:`~repro.serving.gateway.AnnotationGateway`: clients connect over
TCP and speak the newline-delimited JSON protocol of
:mod:`repro.serving.protocol` — the *same* protocol as ``repro serve``'s
stdin loop, implemented by the same module, so a socket answer is
byte-identical to the loop-mode answer (and therefore to a direct
``engine.annotate`` call) for the same record.

Concurrency model
-----------------
One event loop serves every connection; annotation work happens on the
gateway's per-model worker threads, bridged with the asyncio-native
``asubmit()`` — a thousand concurrent in-flight requests cost one thread
per *model*, not per request or per connection.

* **Per-connection ordering** — answers on one connection come back in
  the order its records arrived.  Each connection keeps a FIFO of pending
  answers; a writer coroutine awaits and emits them in order, so results
  stream out as each completes, with at most one window of head-of-line
  wait — never buffered behind the slowest batch of another connection.
* **Backpressure, never blocking** — each connection bounds its in-flight
  window (default ``4 * max_batch``); a full window suspends that
  connection's reader (TCP pushes back to the client), and a full gateway
  queue is retried with ``asyncio.sleep`` backoff inside ``asubmit`` —
  the event loop never blocks, so hot connections keep streaming while a
  slow model's queue fills.
* **Errors are answers** — broken JSON, zero-column tables, unknown
  routes, and per-request annotation failures produce ``{"error": ...}``
  records on the offending connection; the server and every other
  connection keep serving.

Admin plane
-----------
With ``admin=True`` (default) the same wire protocol carries operations:
``{"op": "health"}``, ``{"op": "stats"}``, hot registry mutation
(``register`` / ``repoint`` / ``unregister`` — drained worker retirement
included, see the gateway), and ``{"op": "shutdown"}``, which answers
``{"ok": true}`` and then gracefully drains the whole server.  Admin
operations run in the default executor: a registry mutation may drain a
worker (annotation passes), which must not stall the event loop.  Note
that ``register``/``repoint`` name *server-side* bundle paths — expose an
admin-enabled server only to clients you would let touch the model
directory.

Shutdown
--------
:meth:`AnnotationServer.stop` (triggered by ``{"op": "shutdown"}``, by
SIGINT/SIGTERM in the CLI, or programmatically) closes the listener,
stops reading new records, drains every accepted answer to its client,
and closes the connections.  Closing the *gateway* afterwards (the CLI
does) drains the per-model workers and flushes/closes the persistent
:class:`~repro.serving.diskcache.DiskCache` tiers — no answer accepted
before the shutdown is lost, and no cache write is torn.

:class:`ServerThread` runs the whole thing on a private event loop in a
daemon thread — the harness for embedding a socket server in synchronous
code (and for the test suite and benchmarks).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Set, Tuple, Union

from . import protocol
from .gateway import AnnotationGateway
from .request import AnnotationOptions

#: Default asyncio stream limit is 64 KiB — too small for wide tables.
DEFAULT_MAX_LINE_BYTES = 10 * 1024 * 1024

_DONE = object()


def _transfer_to(slot: "asyncio.Future", stats: "ServerStats"):
    """Done-callback copying an answer task's outcome into its reserved
    FIFO slot (a task cancelled at loop teardown cancels the slot).
    Counts the answer as ``ready``.  Answer coroutines catch their own
    failures, but an exception escaping anyway (an executor refusing
    work at teardown, an encoding bug) becomes an error *answer* here —
    an unresolved slot would block the connection's writer, and with it
    graceful shutdown, forever."""

    def transfer(task: "asyncio.Task") -> None:
        if slot.done():
            return
        if task.cancelled():
            slot.cancel()
            return
        stats.ready += 1
        error = task.exception()
        if error is not None:
            stats.errors += 1
            slot.set_result(
                protocol.error_answer(protocol.format_error(error))
            )
        else:
            slot.set_result(task.result())

    return transfer


@dataclass
class ServerStats:
    """Counters for one server's lifetime.

    ``requests`` counts accepted table records; ``admin_ops`` counts
    accepted admin records; ``errors`` counts error answers emitted
    (including per-request annotation failures); ``ready`` counts
    answers produced and queued for their connection (annotation done or
    error built — written or not yet); ``answered`` counts every answer
    line actually written.  ``ready - answered`` approximates the
    write-blocked backlog (answers retired unwritten on a torn
    connection also leave the gap; the graceful stop's stall detection
    therefore tracks progress per connection, not from these totals).
    """

    connections: int = 0
    requests: int = 0
    admin_ops: int = 0
    errors: int = 0
    ready: int = 0
    answered: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)


class _Connection:
    """Per-connection state: the answer FIFO, the cancellable reader, and
    the drain telemetry — ``retired`` counts answers taken off the FIFO
    (written or dropped on a broken transport), ``writing`` is True
    exactly while the writer coroutine sits inside ``write``/``drain``.
    ``writing`` with ``retired`` not moving for a whole grace window is
    what marks a connection write-blocked during graceful stop (a writer
    awaiting a still-computing answer has ``writing`` False, however
    long it waits)."""

    __slots__ = ("writer", "answers", "reader_task", "retired", "writing")

    def __init__(self, writer: asyncio.StreamWriter, window: int) -> None:
        self.writer = writer
        self.answers: "asyncio.Queue" = asyncio.Queue(maxsize=window)
        self.reader_task: Optional["asyncio.Task"] = None
        self.retired = 0
        self.writing = False


class AnnotationServer:
    """Serve a gateway over TCP, speaking the loop-mode JSON protocol.

    Typical embedding::

        registry = ModelRegistry(cache_dir="anno-cache/")
        registry.register("stable", "models/stable/")
        gateway = AnnotationGateway(registry)
        server = AnnotationServer(gateway, host="127.0.0.1", port=9000)

        async def main():
            await server.start()
            await server.shutdown_requested.wait()   # {"op": "shutdown"}
            await server.stop()

    ``options`` fixes the per-request knobs for every record this server
    answers (like the CLI's flags fix them for a loop session);
    ``with_embeddings`` switches embedding vectors into answer records;
    ``window`` bounds each connection's in-flight answers (default
    ``4 * max_batch``); ``port=0`` binds an ephemeral port — read
    :attr:`address` after :meth:`start`.

    Pool embedding hooks: ``sock`` serves an already-bound listening
    socket instead of binding ``host``/``port`` (the inherited-FD sharding
    of :mod:`repro.serving.pool`); ``reuse_port`` sets ``SO_REUSEPORT`` on
    the bind so several worker processes can share one port (kernel
    load-balanced); ``admin_handler(record, gateway)`` — called in the
    executor before the default admin plane — lets an embedding answer
    (or augment) admin operations itself; returning ``None`` falls
    through to :func:`protocol.handle_admin`.  An op answered by the
    handler triggers none of the default side effects (in particular, a
    handled ``shutdown`` does *not* set :attr:`shutdown_requested` — the
    pool drains its workers itself).
    """

    def __init__(
        self,
        gateway: AnnotationGateway,
        options: Optional[AnnotationOptions] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        with_embeddings: bool = False,
        admin: bool = True,
        window: Optional[int] = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        shutdown_grace: float = 10.0,
        sock=None,
        reuse_port: bool = False,
        admin_handler=None,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        if shutdown_grace < 0:
            raise ValueError(f"shutdown_grace must be >= 0: {shutdown_grace}")
        if sock is not None and reuse_port:
            raise ValueError("sock= and reuse_port are mutually exclusive")
        self.gateway = gateway
        self.options = options or AnnotationOptions()
        self.host = host
        self.port = port
        self.with_embeddings = with_embeddings
        self.admin = admin
        self.window = window or 4 * gateway.queue_config.max_batch
        self.max_line_bytes = max_line_bytes
        self.shutdown_grace = shutdown_grace
        self.sock = sock
        self.reuse_port = reuse_port
        self.admin_handler = admin_handler
        self.stats = ServerStats()
        self._server: Optional["asyncio.base_events.Server"] = None
        self._connections: Set[_Connection] = set()
        self._handlers: Set["asyncio.Task"] = set()
        self._stopped = False
        #: Set when a client's ``{"op": "shutdown"}`` was acknowledged;
        #: the embedding loop should then call :meth:`stop`.
        self.shutdown_requested: Optional[asyncio.Event] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — meaningful after :meth:`start`
        (with ``port=0`` this is where the ephemeral port shows up)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("the server is not started")
        return self._server.sockets[0].getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AnnotationServer":
        """Bind and start accepting connections (idempotent; a *stopped*
        server cannot rebind — create a fresh one)."""
        if self._stopped:
            raise RuntimeError(
                "cannot restart a stopped AnnotationServer; create a new one"
            )
        if self._server is not None:
            return self
        self.shutdown_requested = asyncio.Event()
        if self.sock is not None:
            self._server = await asyncio.start_server(
                self._serve_connection,
                sock=self.sock,
                limit=self.max_line_bytes,
            )
        else:
            kwargs = {"reuse_port": True} if self.reuse_port else {}
            self._server = await asyncio.start_server(
                self._serve_connection,
                self.host,
                self.port,
                limit=self.max_line_bytes,
                **kwargs,
            )
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, close (idempotent).

        The listener closes first; then every connection's reader is
        cancelled — records already accepted keep their place in the
        answer FIFO and are written out before the connection closes, so
        a client that saw its record accepted gets its answer.  (A line
        in flight at the instant of cancellation may go unanswered; it
        was never accepted.)  The drain is *progress*-bounded: as long
        as answers keep going out — or the backlog is still computing
        (slow annotation is not a reason to drop accepted work) — the
        drain keeps going.  Only a full ``shutdown_grace`` seconds with
        answers **ready but none written** marks the remaining
        connections stalled (a client that stopped reading blocks our
        ``drain()`` through its full TCP buffer forever); their
        transports are then aborted: shutdown must not hang on the worst
        client.  The gateway is *not* closed here — the owner closes it
        to drain workers and flush disk caches.
        """
        self._stopped = True
        if self._server is not None:
            self._server.close()
        for connection in list(self._connections):
            if connection.reader_task is not None:
                connection.reader_task.cancel()
        pending = set(self._handlers)
        # A floor on the window keeps shutdown_grace=0 ("no patience for
        # stalled clients") from busy-spinning while accepted work is
        # still computing.
        window = max(self.shutdown_grace, 0.05)
        while pending:
            progress = {c: c.retired for c in list(self._connections)}
            done, pending = await asyncio.wait(pending, timeout=window)
            if not pending:
                break
            # Per-connection verdicts: only a connection whose writer is
            # INSIDE a write/drain that made no progress all window is
            # stalled; a writer awaiting a still-computing answer (even
            # with faster answers queued behind it), one actively
            # writing, or a newly observed connection gets another
            # window.
            stalled = [
                c
                for c in list(self._connections)
                if c.writing and c.retired == progress.get(c, -1)
            ]
            for connection in stalled:
                try:
                    connection.writer.transport.abort()
                except Exception:  # noqa: BLE001 - already closing
                    pass
            # Aborted writers observe the broken transport and retire
            # their remaining answers; loop until every handler exits.
        if self._server is not None:
            # Awaited LAST deliberately: since Python 3.12.1 wait_closed()
            # also waits for every connection handler — awaiting it before
            # the reader cancel above would deadlock on any open client.
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopped:
            # Accepted in the same beat stop() started: this handler is
            # in neither the cancel sweep nor the drain snapshot, so it
            # must leave on its own — otherwise wait_closed() (which
            # waits on every handler since Python 3.12.1) never returns.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        connection = _Connection(writer, self.window)
        self._connections.add(connection)
        self.stats.connections += 1
        writer_task = asyncio.ensure_future(self._write_answers(connection))
        connection.reader_task = asyncio.ensure_future(
            self._read_records(reader, connection)
        )
        try:
            try:
                await connection.reader_task
            except asyncio.CancelledError:
                # stop() cancelled the reader: fall through to the drain.
                pass
            except Exception:  # noqa: BLE001 - reader bug, not fatal
                # An unexpected reader failure closes THIS connection;
                # the drain below still writes every accepted answer, and
                # the server keeps serving the other connections.
                self.stats.errors += 1
        finally:
            # Always drain: without the sentinel the writer task would
            # block on the queue forever and accepted answers would be
            # dropped.
            await connection.answers.put(_DONE)
            await writer_task
            self._connections.discard(connection)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_records(
        self, reader: asyncio.StreamReader, connection: _Connection
    ) -> None:
        """Accept records until EOF (or a cancel from :meth:`stop`).

        Every accepted record takes one slot in the connection's answer
        FIFO *here*, in arrival order — that single await is both the
        ordering guarantee and the per-connection backpressure (a full
        window suspends this coroutine, and TCP suspends the client).
        The slot is reserved *before* the answer task is spawned, so a
        shutdown cancel landing in the (possibly blocking) reservation
        leaves nothing accepted: a record either never dispatched, or
        holds a FIFO slot whose answer the drain will write.
        """
        loop = asyncio.get_running_loop()
        while True:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                # Overlong line (stream limit) or a reset mid-line: the
                # framing is unrecoverable, close this connection.
                await connection.answers.put(
                    protocol.error_answer(
                        f"line exceeds {self.max_line_bytes} bytes or the "
                        "connection broke mid-line"
                    )
                )
                self.stats.errors += 1
                self.stats.ready += 1
                return
            if not line:
                return  # client closed its write side
            try:
                record = protocol.decode_record(
                    line, self.options, admin=self.admin
                )
            except protocol.ProtocolError as error:
                self.stats.errors += 1
                await connection.answers.put(error.answer())
                self.stats.ready += 1
                continue
            if record is None:
                continue  # blank line or dataset header
            is_admin = isinstance(record, protocol.AdminRecord)
            answer_coro = (
                self._admin(record) if is_admin else self._annotate(record)
            )
            slot: "asyncio.Future" = loop.create_future()
            try:
                await connection.answers.put(slot)
            except asyncio.CancelledError:
                answer_coro.close()  # never dispatched, never accepted
                raise
            if is_admin:
                self.stats.admin_ops += 1
            else:
                self.stats.requests += 1
            # No await between the reservation above and this spawn, so
            # an accepted record always has its answer task running.
            task = asyncio.ensure_future(answer_coro)
            task.add_done_callback(_transfer_to(slot, self.stats))

    async def _annotate(self, record: protocol.RequestRecord) -> Dict:
        """One table record's answer (result or error, never a raise)."""
        try:
            result = await self.gateway.asubmit(record.request, self.options)
            return protocol.encode_result(
                result,
                with_embeddings=self.with_embeddings,
                record_id=record.record_id,
            )
        except Exception as error:  # noqa: BLE001 - answered, never fatal
            self.stats.errors += 1
            return protocol.error_answer(
                protocol.format_error(error),
                record_id=record.record_id,
                table_id=record.request.table.table_id,
            )

    async def _admin(self, record: protocol.AdminRecord) -> Dict:
        """One admin record's answer; mutations run in the executor (a
        retire drains a worker — blocking work the loop must not hold).
        A configured ``admin_handler`` gets first refusal (also in the
        executor — a pool handler blocks on control pipes); an op it
        answers skips the default side effects."""
        loop = asyncio.get_running_loop()
        handled = False

        def run() -> Dict:
            nonlocal handled
            if self.admin_handler is not None:
                custom = self.admin_handler(record, self.gateway)
                if custom is not None:
                    handled = True
                    return custom
            return protocol.handle_admin(record, self.gateway)

        try:
            answer = await loop.run_in_executor(None, run)
        except Exception as error:  # noqa: BLE001 - e.g. executor teardown
            answer = protocol.error_answer(
                protocol.format_error(error),
                record_id=record.record_id,
                op=record.op,
            )
        if "error" in answer:
            self.stats.errors += 1
        elif record.op == "shutdown" and not handled:
            # Acknowledged; the owner of this server observes the event
            # and calls stop() — the answer is already queued ahead of
            # the drain, so the requesting client sees it.
            assert self.shutdown_requested is not None
            self.shutdown_requested.set()
        return answer

    async def _write_answers(self, connection: _Connection) -> None:
        """Emit one connection's answers in FIFO order as they resolve."""
        broken = False
        while True:
            item = await connection.answers.get()
            if item is _DONE:
                return
            record: Union[Dict, Any]
            if isinstance(item, dict):
                record = item
            else:
                record = await item  # answer coroutines never raise
            if broken:
                connection.retired += 1  # dropped, but off the backlog
                continue  # keep consuming so pending futures resolve
            connection.writing = True
            try:
                connection.writer.write(
                    protocol.encode_line(record).encode("utf-8")
                )
                await connection.writer.drain()
            except (ConnectionError, OSError):
                broken = True
                connection.retired += 1
                continue
            finally:
                connection.writing = False
            connection.retired += 1
            self.stats.answered += 1


class ServerThread:
    """Run an :class:`AnnotationServer` on a private loop in a daemon thread.

    The synchronous embedding (and test/benchmark) harness::

        with ServerThread(gateway, options) as address:
            sock = socket.create_connection(address)
            ...

    :meth:`start` returns the bound ``(host, port)`` once the listener is
    up (re-raising any bind error in the caller's thread); :meth:`stop`
    drains and joins.  A client-initiated ``{"op": "shutdown"}`` also
    stops the server — :meth:`stop` (or the context exit) then just joins
    the already-finished thread.  The gateway's lifetime stays with the
    caller: close it after the server stops to flush disk caches.
    """

    def __init__(self, gateway: AnnotationGateway, *args, **kwargs) -> None:
        self._factory = lambda: AnnotationServer(gateway, *args, **kwargs)
        self.server: Optional[AnnotationServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            assert self.address is not None
            return self.address
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="annotation-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            # Reset so the caller can retry start() (e.g. after freeing
            # the port) instead of tripping the already-started guard.
            self._thread.join()
            error = self._startup_error
            self._thread = None
            self._startup_error = None
            self._ready = threading.Event()
            raise error
        assert self.address is not None
        return self.address

    @property
    def port(self) -> int:
        """The actually-bound port — the ephemeral port a ``port=0`` bind
        landed on.  Meaningful after :meth:`start`."""
        if self.address is None:
            raise RuntimeError("the server is not started")
        return self.address[1]

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = self._factory()
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - reraised in start()
            self._startup_error = error
            self._ready.set()
            return
        self.server = server
        self.address = server.address
        self._ready.set()
        stop_wait = asyncio.ensure_future(self._stop_event.wait())
        shutdown_wait = asyncio.ensure_future(server.shutdown_requested.wait())
        try:
            await asyncio.wait(
                {stop_wait, shutdown_wait},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for waiter in (stop_wait, shutdown_wait):
                waiter.cancel()
            await server.stop()

    def stop(self) -> None:
        """Drain the server and join its thread (idempotent, threadsafe)."""
        if self._thread is None:
            return
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already finished (client-initiated shutdown)
        self._thread.join()

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
