"""Column-level content addressing for encoder states.

Web tables massively repeat identical columns — the same id/name/country
column reappears across thousands of tables.  PR 2 turned whole-table
repetition into dedup hits; this tier does the same one level down: a
:class:`ColumnCache` stores per-column ``[CLS]`` encoder states keyed by

* the **column content hash** (:func:`repro.encoding.cache.column_fingerprint`
  — header + cells, position-independent),
* the **model key** (the engine's dtype-aware annotation fingerprint, which
  already folds in the serialization options and tokenizer vocabulary, so
  any knob that changes bytes re-keys every entry), and
* the **padded width** of the encoder pass (BLAS results are
  width-sensitive; a state is only reusable at the exact width it was
  computed with).

Soundness: only the serving engine's *single-column* mode consults this
cache.  There each column is encoded as its own sequence attending to
itself alone, and the pinned batched==sequential contract means a state
computed in any prior pass at the same width is bitwise the state a fresh
pass would produce.  Table-wise mode has cross-column attention — a
column's state depends on its neighbours — so per-column states are never
cached there.

The optional ``disk`` tier persists entries through any object with the
``DiskCache``/``FabricCache`` ``get``/``put`` dict API, so column states
survive restarts and travel the cache fabric alongside whole-table results.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..encoding.cache import LRUCache, content_digest

__all__ = ["ColumnCache", "decode_column_state", "encode_column_state"]


def encode_column_state(state: np.ndarray) -> Dict:
    """Serialize one ``[CLS]`` state vector to a JSON-safe dict.

    Same layout as the result cache's embedding payloads: dtype + shape +
    a flat value list.  JSON floats round-trip via shortest-repr, so the
    decoded array is byte-identical to the encoded one.
    """
    return {
        "dtype": str(state.dtype),
        "shape": list(state.shape),
        "data": state.ravel().tolist(),
    }


def decode_column_state(payload: Dict) -> np.ndarray:
    """Rebuild the array stored by :func:`encode_column_state`."""
    return np.asarray(payload["data"], dtype=payload["dtype"]).reshape(
        payload["shape"]
    )


class ColumnCache:
    """LRU of per-column encoder states with an optional persistent tier.

    Satisfies the trainer's ``ColumnStateStore`` duck type
    (``lookup(fingerprint, width)`` / ``store(fingerprint, width, state)``).
    ``model_key`` is folded into every key; the engine refreshes it from
    its dtype-aware model fingerprint before each chunk, so weight changes,
    serializer changes, or a dtype switch instantly orphan stale entries
    instead of serving them.

    ``hits``/``misses`` count lookups across both tiers (a disk hit is a
    hit); ``persisted_hits`` counts the subset answered by the disk tier.
    """

    def __init__(
        self,
        capacity: int,
        model_key: str = "",
        disk=None,
        persist: bool = False,
    ) -> None:
        self._lru: LRUCache = LRUCache(capacity)
        self.model_key = model_key
        self.disk = disk
        self.persist = bool(persist)
        self.hits = 0
        self.misses = 0
        self.persisted_hits = 0

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def capacity(self) -> int:
        return self._lru.capacity

    def _key(self, fingerprint: str, width: int) -> Tuple[str, str, int]:
        return (self.model_key, fingerprint, int(width))

    def _disk_key(self, fingerprint: str, width: int) -> str:
        # Namespaced so column entries can never collide with whole-table
        # result records sharing the same DiskCache.
        return "col:" + content_digest(
            (
                self.model_key.encode("utf-8"),
                b"\x1f",
                fingerprint.encode("utf-8"),
                b"\x1f",
                str(int(width)).encode("utf-8"),
            )
        )

    def lookup(self, fingerprint: str, width: int) -> Optional[np.ndarray]:
        """The cached state for (column, width) under the current model key,
        or ``None``.  Disk-tier hits are promoted into the LRU."""
        state = self._lru.get(self._key(fingerprint, width))
        if state is not None:
            self.hits += 1
            return state
        if self.persist and self.disk is not None:
            payload = self.disk.get(self._disk_key(fingerprint, width))
            if payload is not None:
                state = decode_column_state(payload)
                self._lru.put(self._key(fingerprint, width), state)
                self.hits += 1
                self.persisted_hits += 1
                return state
        self.misses += 1
        return None

    def store(self, fingerprint: str, width: int, state: np.ndarray) -> None:
        self._lru.put(self._key(fingerprint, width), state)
        if self.persist and self.disk is not None:
            self.disk.put(
                self._disk_key(fingerprint, width), encode_column_state(state)
            )

    def clear(self) -> None:
        """Drop the in-memory tier and reset counters (disk is untouched)."""
        self._lru.clear()
        self.hits = 0
        self.misses = 0
        self.persisted_hits = 0
