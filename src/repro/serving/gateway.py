"""The multi-model serving gateway: one front door, fingerprint-keyed routes.

:class:`AnnotationGateway` is the single entry point of the serving stack:
every :class:`~repro.serving.request.AnnotationRequest` — now carrying an
optional ``model`` route — is resolved through a
:class:`~repro.serving.registry.ModelRegistry` (by registered name or model
fingerprint) and handed to that model's own
:class:`~repro.serving.queue.EngineWorker`.  Per-model workers mean the
drain batches, dedup windows, and cache tiers of different models never
mix: dedup keys and disk-cache keys already embed each engine's
fingerprint, and the registry additionally roots each model's
:class:`~repro.serving.diskcache.DiskCache` in its own
``cache_dir/<fingerprint>`` directory.

Two client APIs share the workers:

* **Thread-based** — :meth:`~AnnotationGateway.submit` returns a
  :class:`concurrent.futures.Future`; ``annotate`` / ``annotate_batch`` /
  ``annotate_stream`` are the blocking conveniences.  The single-model
  :class:`~repro.serving.queue.AnnotationService` and the
  :class:`~repro.core.annotator.Doduo` toolbox API are thin wrappers over
  a one-entry gateway.
* **Asyncio-native** — ``await gateway.asubmit(table)`` and ``async for
  result in gateway.astream(tables)``.  Results come from the same worker
  threads, bridged with :func:`asyncio.wrap_future`, so an asyncio server
  never burns a thread per in-flight request; a full queue is retried with
  ``await asyncio.sleep`` backoff instead of blocking the event loop
  (thread-based ``submit`` blocks, which would stall every coroutine).

Equivalence: routing adds nothing to the math.  A gateway answer is the
routed engine's answer — byte-identical to calling that engine's
``annotate`` directly, from both the thread and the asyncio path (the
routing tests pin this).

Eviction interplay: the registry may evict an idle engine while its worker
still holds queued requests — in-flight work completes against the old
engine object (workers keep a strong reference); the *next* submission to
that route observes the reloaded engine and the gateway transparently
retires the stale worker (draining it first, so nothing is lost).
"""

from __future__ import annotations

import asyncio
import queue as _queue
import threading
from concurrent.futures import Future
from dataclasses import (
    asdict,
    dataclass,
    field,
    fields as _dataclass_fields,
    replace,
)
from typing import (
    AsyncIterator,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)

from .engine import AnnotationEngine, EngineStats, RequestLike
from .queue import EngineWorker, QueueConfig, ServiceStats
from .registry import ModelRegistry, ModelSource
from .request import AnnotationOptions, AnnotationRequest, AnnotationResult


@dataclass
class GatewayStats:
    """Aggregated snapshot across every model the gateway has served.

    ``models`` maps each registered name to its worker's
    :class:`~repro.serving.queue.ServiceStats` (summed over retired
    workers too, when eviction re-created one); ``engines`` maps names to
    the live engine's :class:`~repro.serving.engine.EngineStats`.  The
    scalar fields are totals over ``models``/``engines`` — plus the
    folded history of *unregistered* routes, which leave the per-name
    maps (so admin register/unregister churn over unique names cannot
    grow this snapshot without bound) but never deflate the totals.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    dedup_hits: int = 0
    unique_annotated: int = 0
    encoder_passes: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    #: Calls served by the float32 fallback because a model's int8
    #: accuracy gate failed — nonzero means quantized serving silently
    #: degraded to full precision (correct, but not the fast path).
    quant_fallbacks: int = 0
    models: Dict[str, ServiceStats] = field(default_factory=dict)
    engines: Dict[str, EngineStats] = field(default_factory=dict)
    #: Per-engine counters of the persistent disk tier itself (the
    #: DiskCache/FabricCache attached to each live engine) — notably the
    #: fabric's ``remote_hits``, which is how an operator sees
    #: cross-worker cache reuse in ``repro stats`` against a pool.
    disk_tiers: Dict[str, Dict] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-serializable snapshot — the wire shape served by the
        ``{"op": "stats"}`` admin answer and ``repro stats``.  Nested
        per-model/per-engine counters serialize recursively; each engine
        additionally reports its derived ``padding_waste`` fraction,
        ``column_hit_rate`` (column-state cache efficiency), and
        ``probe_prune_rate`` (share of candidate relation pairs the probe
        planner discarded)."""
        payload = asdict(self)
        for name, engine_stats in self.engines.items():
            payload["engines"][name]["padding_waste"] = round(
                engine_stats.padding_waste, 6
            )
            payload["engines"][name]["column_hit_rate"] = round(
                engine_stats.column_hit_rate, 6
            )
            payload["engines"][name]["probe_prune_rate"] = round(
                engine_stats.probe_prune_rate, 6
            )
        return payload


class AnnotationGateway:
    """Route annotation requests across a registry of models.

    Typical multi-model use::

        registry = ModelRegistry(cache_dir="anno-cache/")
        registry.register("wikitable", "models/wikitable/")
        registry.register("viznet", "models/viznet/")
        with AnnotationGateway(registry) as gateway:
            future = gateway.submit(table, model="viznet")
            result = future.result()

    and the asyncio-native path::

        async def handler(table):
            return await gateway.asubmit(table, model="viznet")

    ``queue_config`` applies to every per-model worker.  Construction is
    cheap: workers spawn lazily, one per routed model, on first traffic.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        queue_config: Optional[QueueConfig] = None,
    ) -> None:
        self.registry = registry or ModelRegistry()
        self.queue_config = queue_config or QueueConfig()
        self._workers: Dict[str, EngineWorker] = {}
        # Stats of workers (and their engines) retired by eviction/reload,
        # so gateway totals never go backwards.  Unregistering a name
        # folds its per-name entries into the two aggregate buckets below
        # — totals stay monotone while the per-name maps (and the admin
        # stats payload) stay bounded by the *registered* roster, not by
        # every name ever deployed.
        self._retired: Dict[str, ServiceStats] = {}
        self._retired_engines: Dict[str, EngineStats] = {}
        self._unregistered = ServiceStats()
        self._unregistered_engine = EngineStats()
        # _lock guards the dicts (cheap, held briefly).  _creation_locks
        # serializes each route's worker retire/create cycle END TO END —
        # a stale worker is fully drained and closed before its
        # replacement can serve, which is what keeps two DiskCache writers
        # from ever appending to one per-fingerprint directory at once.
        # The locks are per route: retiring one model (which drains its
        # queue) never stalls submissions to the hot routes.
        self._lock = threading.Lock()
        self._creation_locks: Dict[str, threading.Lock] = {}
        self._closed = False

    @classmethod
    def for_engine(
        cls,
        engine: AnnotationEngine,
        name: str = "default",
        queue_config: Optional[QueueConfig] = None,
    ) -> "AnnotationGateway":
        """A single-entry gateway over one in-memory engine (the shape the
        compatibility wrappers use)."""
        registry = ModelRegistry()
        registry.register(name, engine)
        return cls(registry, queue_config)

    # ------------------------------------------------------------------
    # Registration passthrough
    # ------------------------------------------------------------------
    def register(self, name: str, source: ModelSource, **kwargs) -> None:
        """Register a model (see :meth:`ModelRegistry.register`)."""
        self.registry.register(name, source, **kwargs)

    def repoint(self, name: str, source: ModelSource, **kwargs) -> None:
        """Rebind ``name`` to new weights without a restart (see
        :meth:`ModelRegistry.repoint`), then retire the route's stale
        worker.  The retire drains in-flight requests against the old
        engine first — nothing queued is lost, and the next request to
        the name is served by the new weights."""
        self.registry.repoint(name, source, **kwargs)
        self.reap()

    def unregister(self, name: str) -> None:
        """Remove ``name`` entirely (see :meth:`ModelRegistry.unregister`),
        then retire its worker — draining queued requests against the old
        engine first, so futures obtained before the unregister still
        resolve.  Subsequent requests routed to the name raise
        ``KeyError``.  The name's retired counters fold into the
        aggregate history (``stats`` scalar totals keep them; the
        per-name maps drop them), so admin-plane register/unregister
        churn cannot grow the *stats payload* without bound.  (A
        per-name creation lock — a few dozen bytes — is deliberately
        retained: popping it could race a concurrent submission into
        two workers for a re-registered name.)"""
        self.registry.unregister(name)
        self.reap()
        with self._lock:
            retired = self._retired.pop(name, None)
            if retired is not None:
                self._merge_stats(self._unregistered, retired)
            retired_engine = self._retired_engines.pop(name, None)
            if retired_engine is not None:
                for counter in self._ENGINE_TOTALS:
                    setattr(
                        self._unregistered_engine,
                        counter,
                        getattr(self._unregistered_engine, counter)
                        + getattr(retired_engine, counter),
                    )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_of(
        self, item: RequestLike, model: Optional[str]
    ) -> Optional[str]:
        """The requested route: the request's own ``model`` field wins,
        then the call-site ``model=``, then the registry default."""
        if isinstance(item, AnnotationRequest) and item.model is not None:
            return item.model
        return model

    def worker(self, route: Optional[str] = None) -> EngineWorker:
        """The live worker for ``route``, (re)creating it as needed.

        Resolves the route through the registry (which loads/reloads the
        engine and touches LRU recency).  If the registry evicted and
        reloaded the engine since this route's worker was built, the stale
        worker is drained-and-closed **before** a fresh one is attached to
        the reloaded engine — the replacement never serves (and never
        writes the route's disk-cache directory) while the old drain is
        still in flight.  That retire/create cycle holds only the route's
        own creation lock; the hot path (worker exists and matches the
        live engine) takes just the cheap dict lock.
        """
        while True:
            name, engine = self.registry.acquire(route)
            with self._lock:
                if self._closed:
                    raise RuntimeError(
                        "cannot route through a closed AnnotationGateway"
                    )
                worker = self._workers.get(name)
                creation_lock = self._creation_locks.setdefault(
                    name, threading.Lock()
                )
            if worker is not None and worker.engine is engine:
                return worker
            with creation_lock:
                with self._lock:
                    if self._closed:
                        raise RuntimeError(
                            "cannot route through a closed AnnotationGateway"
                        )
                # Re-acquire under the creation lock: the engine reference
                # from before the lock may be stale (ABA — evicted AND
                # replaced while we waited); trusting it could retire a
                # live replacement worker and bind the route to a dead
                # engine.
                fresh_name, engine = self.registry.acquire(route)
                if fresh_name != name:
                    # The route re-pointed to a different canonical name
                    # (set_default/unregister racing us): restart so we
                    # hold THAT name's creation lock and touch only its
                    # worker.
                    continue
                with self._lock:
                    worker = self._workers.get(name)
                if worker is not None and worker.engine is engine:
                    return worker
                if worker is not None:
                    self._retire(name, worker)
                worker = EngineWorker(engine, self.queue_config)
                with self._lock:
                    self._workers[name] = worker
                return worker

    def _has_live_worker(self, route: Optional[str]) -> bool:
        """Cheap peek: does this route already have a worker bound to the
        registry's live engine?  No loads, no retires, no LRU touch — the
        asyncio path uses it to decide whether :meth:`worker` can run
        inline (fast) or must go to an executor (cold load / drain)."""
        try:
            name = self.registry.resolve(route)
        except KeyError:
            return False
        engine = self.registry.live_engine(name)
        if engine is None:
            return False
        with self._lock:
            worker = self._workers.get(name)
        return worker is not None and worker.engine is engine

    def _retire(self, name: str, worker: EngineWorker) -> None:
        """Drain-close ``worker`` and fold its counters (and its engine's)
        into the retired pools (caller holds the route's creation lock)."""
        with self._lock:
            self._workers.pop(name, None)
        worker.close()  # drains pending requests; may take annotation passes
        with self._lock:
            retired = self._retired.setdefault(name, ServiceStats())
            self._merge_stats(retired, worker.stats)
            retired_engine = self._retired_engines.setdefault(name, EngineStats())
            for counter in self._ENGINE_TOTALS:
                setattr(
                    retired_engine,
                    counter,
                    getattr(retired_engine, counter)
                    + getattr(worker.engine.stats, counter),
                )

    # ------------------------------------------------------------------
    # Thread-based API
    # ------------------------------------------------------------------
    def submit(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions] = None,
        model: Optional[str] = None,
    ) -> "Future[AnnotationResult]":
        """Enqueue one table on its model's worker; returns the future.

        Routing: an :class:`AnnotationRequest` with a ``model`` field wins,
        then the ``model=`` argument, then the registry's default model.
        Raises ``KeyError`` for unknown routes and ``queue.Full`` under
        backpressure (after ``submit_timeout``).
        """
        route = self._route_of(item, model)
        while True:
            if self._closed:
                raise RuntimeError("cannot submit to a closed AnnotationGateway")
            worker = self.worker(route)
            try:
                return worker.submit(item, options)
            except RuntimeError:
                # The worker was retired (evict/reload race) between the
                # lookup and the enqueue; re-resolve and try again —
                # unless the gateway itself closed, checked above.
                if self._closed:
                    raise
                continue

    def annotate(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions] = None,
        model: Optional[str] = None,
    ) -> AnnotationResult:
        """Synchronous convenience: submit and wait."""
        return self.submit(item, options, model).result()

    def annotate_batch(
        self,
        items: Iterable[RequestLike],
        options: Optional[AnnotationOptions] = None,
        model: Optional[str] = None,
    ) -> List[AnnotationResult]:
        """Submit a (possibly mixed-model) batch; results in input order."""
        futures = [self.submit(item, options, model) for item in items]
        return [future.result() for future in futures]

    def annotate_stream(
        self,
        items: Iterable[RequestLike],
        options: Optional[AnnotationOptions] = None,
        model: Optional[str] = None,
        window: Optional[int] = None,
    ) -> Iterator[AnnotationResult]:
        """Pump an iterable through the gateway, yielding results in order.

        Keeps at most ``window`` submissions in flight (default
        ``4 * max_batch``); items may route to different models (their
        ``model`` fields win over the call-site default), and order is
        preserved across routes.
        """
        limit = window if window is not None else 4 * self.queue_config.max_batch
        if limit < 1:
            raise ValueError(f"window must be >= 1: {limit}")
        pending: List["Future[AnnotationResult]"] = []
        for item in items:
            pending.append(self.submit(item, options, model))
            while len(pending) >= limit:
                yield pending.pop(0).result()
        for future in pending:
            yield future.result()

    # ------------------------------------------------------------------
    # Asyncio-native API
    # ------------------------------------------------------------------
    async def _enqueue(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions],
        model: Optional[str],
    ) -> "asyncio.Future[AnnotationResult]":
        """Enqueue without ever blocking the event loop.

        A full queue is retried with exponential ``asyncio.sleep`` backoff
        (other coroutines keep running) until ``submit_timeout`` — the
        asyncio translation of the thread API's blocking backpressure.
        """
        loop = asyncio.get_running_loop()
        timeout = self.queue_config.submit_timeout
        deadline = None if timeout is None else loop.time() + timeout
        delay = 0.001
        route = self._route_of(item, model)
        while True:
            if self._closed:
                raise RuntimeError("cannot submit to a closed AnnotationGateway")
            # Hot path inline (a dict lookup + registry touch); otherwise
            # resolve in the default executor — a cold route loads a whole
            # checkpoint, and an evict/reload race drains the stale worker,
            # both blocking work that must not stall the event loop.  (The
            # peek is best-effort: an eviction landing between peek and
            # resolve can still cost one inline load — rare by design.)
            if self._has_live_worker(route):
                worker = self.worker(route)
            else:
                worker = await loop.run_in_executor(None, self.worker, route)
            try:
                future = worker.submit(item, options, block=False)
                break
            except _queue.Full:
                if deadline is not None and loop.time() >= deadline:
                    raise
                await asyncio.sleep(delay)
                delay = min(delay * 2, 0.05)
            except RuntimeError:
                # Worker retired by a concurrent evict/reload: re-resolve.
                if self._closed:
                    raise
        return asyncio.wrap_future(future, loop=loop)

    async def asubmit(
        self,
        item: RequestLike,
        options: Optional[AnnotationOptions] = None,
        model: Optional[str] = None,
    ) -> AnnotationResult:
        """Asyncio-native :meth:`annotate`: awaits the routed annotation.

        The annotation itself runs on the model's worker thread; the
        coroutine holds no thread while waiting (the worker's
        ``concurrent.futures.Future`` is bridged to an asyncio future), so
        thousands of concurrent ``asubmit`` calls cost one worker thread
        per *model*, not one per request.  Byte-identical to
        :meth:`submit` — same workers, same engines, same bytes.
        """
        future = await self._enqueue(item, options, model)
        return await future

    async def astream(
        self,
        items: Union[Iterable[RequestLike], AsyncIterator[RequestLike]],
        options: Optional[AnnotationOptions] = None,
        model: Optional[str] = None,
        window: Optional[int] = None,
    ) -> AsyncIterator[AnnotationResult]:
        """Asyncio-native :meth:`annotate_stream` (accepts sync or async
        iterables), yielding results in input order with at most
        ``window`` submissions in flight."""
        limit = window if window is not None else 4 * self.queue_config.max_batch
        if limit < 1:
            raise ValueError(f"window must be >= 1: {limit}")
        pending: List["asyncio.Future[AnnotationResult]"] = []
        async for item in _ensure_async_iter(items):
            pending.append(await self._enqueue(item, options, model))
            while len(pending) >= limit:
                yield await pending.pop(0)
        for future in pending:
            yield await future

    # ------------------------------------------------------------------
    # Stats and lifecycle
    # ------------------------------------------------------------------
    # Derived from the dataclass so a counter added to ServiceStats can
    # never be silently dropped from retired merges or gateway totals.
    _SERVICE_COUNTERS = tuple(f.name for f in _dataclass_fields(ServiceStats))
    _ENGINE_TOTALS = (
        "encoder_passes",
        "disk_hits",
        "disk_misses",
        "quant_fallbacks",
    )

    @classmethod
    def _merge_stats(cls, into: ServiceStats, source: ServiceStats) -> None:
        for name in cls._SERVICE_COUNTERS:
            setattr(into, name, getattr(into, name) + getattr(source, name))

    @property
    def stats(self) -> GatewayStats:
        """Aggregated counters (see :class:`GatewayStats`).  A snapshot —
        every nested stats object is a copy, safe to hold and diff across
        further traffic."""
        snapshot = GatewayStats()
        retired_engine_totals: List[EngineStats] = []
        with self._lock:
            per_model: Dict[str, ServiceStats] = {}
            for name, retired in self._retired.items():
                merged = ServiceStats()
                self._merge_stats(merged, retired)
                per_model[name] = merged
            for name, worker in self._workers.items():
                merged = per_model.setdefault(name, ServiceStats())
                self._merge_stats(merged, worker.stats)
                snapshot.engines[name] = replace(worker.engine.stats)
                tier = worker.engine.result_cache
                if tier is not None:
                    snapshot.disk_tiers[name] = asdict(tier.stats)
            retired_engine_totals = [
                replace(stats) for stats in self._retired_engines.values()
            ]
            # Unregistered routes' folded history: in the scalar totals,
            # absent from the per-name maps (see the class docstring).
            unregistered = ServiceStats()
            self._merge_stats(unregistered, self._unregistered)
            retired_engine_totals.append(replace(self._unregistered_engine))
        snapshot.models = per_model
        for model_stats in list(per_model.values()) + [unregistered]:
            for name in self._SERVICE_COUNTERS:
                setattr(
                    snapshot, name, getattr(snapshot, name) + getattr(model_stats, name)
                )
        # ``engines`` shows the live engines; the scalar totals also fold
        # in engines retired by eviction/reload, so totals never regress.
        for engine_stats in list(snapshot.engines.values()) + retired_engine_totals:
            for name in self._ENGINE_TOTALS:
                setattr(
                    snapshot, name, getattr(snapshot, name) + getattr(engine_stats, name)
                )
        return snapshot

    def reap(self) -> int:
        """Close workers whose engines the registry has evicted.

        The gateway retires stale workers lazily on the next submission to
        their route; long-idle routes can hold an evicted engine alive
        through their worker until then.  ``reap()`` retires them now and
        returns how many it closed.
        """
        with self._lock:
            stale = [
                (name, worker)
                for name, worker in self._workers.items()
                if self.registry.live_engine(name) is not worker.engine
            ]
            locks = {
                name: self._creation_locks.setdefault(name, threading.Lock())
                for name, _ in stale
            }
        reaped = 0
        for name, worker in stale:
            with locks[name]:
                with self._lock:
                    # Re-check under the route's creation lock: a submit
                    # may have retired/replaced it concurrently.
                    current = self._workers.get(name)
                if current is not worker:
                    continue
                self._retire(name, worker)
                reaped += 1
        return reaped

    def close(self) -> None:
        """Stop accepting submissions, drain every worker, release the
        registry's resources.  Every future obtained before ``close``
        resolves; submitting after it raises ``RuntimeError``."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            locks = list(self._creation_locks.values())
        # Wait out any in-flight worker creation (each saw _closed either
        # before creating — and raised — or finished inserting its worker,
        # which the snapshot below then picks up).
        for lock in locks:
            with lock:
                pass
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            worker.close()
        self.registry.close()

    def __enter__(self) -> "AnnotationGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


async def _ensure_async_iter(
    items: Union[Iterable[RequestLike], AsyncIterator[RequestLike]],
) -> AsyncIterator[RequestLike]:
    """Iterate sync and async iterables uniformly."""
    if hasattr(items, "__aiter__"):
        async for item in items:  # type: ignore[union-attr]
            yield item
    else:
        for item in items:  # type: ignore[union-attr]
            yield item
