"""Cross-process cache fabric: many writers, one shared read layer.

:class:`~repro.serving.diskcache.DiskCache` assumes one writing handle per
directory — the right contract for one serving process, and exactly the
wrong one for a multi-process pool (:mod:`repro.serving.pool`), where N
workers serve the same model and each wants to persist (and *reuse*) the
same fingerprint-keyed results.  :class:`FabricCache` keeps the append-only
JSONL discipline but splits the directory three ways:

* **Per-writer segments** — ``segment-<writer>-NNNNNN.jsonl``, appended by
  exactly one handle (the writer id embeds the worker slot and PID, so two
  writers can never collide on a filename, let alone a file).  Each live
  writer holds an advisory :class:`~repro.serving.diskcache.FileLock` on
  ``writer-<writer>.lock`` for the lifetime of its handle.
* **A shared compacted layer** — ``compact-NNNNNN.jsonl``, one immutable
  generation at a time, described by an atomically-replaced
  ``fabric-index.json`` (generation, byte size, content checksum, and the
  key → (offset, length) table).  Readers ``mmap`` the generation and
  serve hits straight from the mapping — the pool's workers share one
  page-cache copy of the warm corpus instead of N private indexes.  This
  is the serve-from-one-compressed-representation discipline the
  enumeration literature uses for shared immutable structures: writers
  stay private, readers consume a single compacted artifact.
* **Cross-writer reads** — a miss triggers a throttled :meth:`refresh`
  that tails every *other* writer's segments from the last scanned offset
  (consuming only newline-terminated lines, so a torn tail is re-read
  later, never mis-indexed) and picks up any newer compacted generation.
  A warm entry written by worker A is therefore a disk hit in worker B
  without re-encoding — counted in ``stats.remote_hits``.

Legacy interop: plain ``segment-NNNNNN.jsonl`` files written by a
single-process :class:`DiskCache` are readable as the segments of a
``"legacy"`` writer, so a cache warmed by ``repro serve`` stays warm when
the operator scales out to ``--workers N``.

Compaction is lock-aware: only segments whose writer is *not* live (its
``writer-*.lock`` unheld; ``writer.lock`` for the legacy writer) are
merged into the next generation and deleted; live writers' segments are
skipped and reported.  Compactors exclude each other via ``compact.lock``.
Readers whose segment files vanish under them (deleted by a compactor in
another process) recover by refreshing: the key reappears in the new
compacted generation, and the payload bytes are identical — keys are
content hashes of everything that determines the value.

The equivalence contract of the disk tier carries over unchanged: the
payloads stored and returned are exactly those of
:func:`~repro.serving.diskcache.encode_annotation` /
:func:`~repro.serving.diskcache.decode_annotation`, so a fabric hit is
byte-identical to the producing pass regardless of which worker wrote it.
"""

from __future__ import annotations

import json
import mmap
import os
import re
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..encoding.cache import LRUCache, content_digest
from .diskcache import (
    CacheLockedError,
    CompactionResult,
    FileLock,
    WRITER_LOCK_NAME,
    _SEGMENT_PREFIX,
    _SEGMENT_SUFFIX,
    SEGMENT_GLOB,
)

PathLike = Union[str, Path]

_COMPACT_PREFIX = "compact-"
_COMPACT_SUFFIX = ".jsonl"
INDEX_NAME = "fabric-index.json"
COMPACT_LOCK_NAME = "compact.lock"

#: The pseudo-writer owning plain ``segment-NNNNNN.jsonl`` files written
#: by a single-process :class:`DiskCache` (its liveness lock is the
#: directory-level ``writer.lock``).
LEGACY_WRITER = ""

_WRITER_RE = re.compile(r"[^A-Za-z0-9_.]+")


def sanitize_writer(writer: str) -> str:
    """Writer ids become filename fragments; keep them boring."""
    cleaned = _WRITER_RE.sub("_", writer).strip("_")
    if not cleaned:
        raise ValueError(f"writer id must be non-empty: {writer!r}")
    return cleaned


def split_segment_name(path: Path) -> Optional[Tuple[str, int]]:
    """``(writer, number)`` for a segment filename, or ``None`` for a file
    that merely matches the segment glob.  Plain DiskCache segments parse
    as the :data:`LEGACY_WRITER`."""
    stem = path.name
    if not (
        stem.startswith(_SEGMENT_PREFIX) and stem.endswith(_SEGMENT_SUFFIX)
    ):
        return None
    body = stem[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    writer, dash, number = body.rpartition("-")
    if not number.isdigit():
        return None
    return (writer if dash else LEGACY_WRITER), int(number)


def is_fabric_directory(directory: PathLike) -> bool:
    """Does ``directory`` hold fabric state (per-writer segments, a
    compacted generation, or a shared index)?  `repro cache compact` uses
    this to pick the right compactor for each directory."""
    directory = Path(directory)
    if (directory / INDEX_NAME).exists():
        return True
    if any(directory.glob(f"{_COMPACT_PREFIX}*{_COMPACT_SUFFIX}")):
        return True
    return any(
        (parsed := split_segment_name(path)) is not None
        and parsed[0] != LEGACY_WRITER
        for path in directory.glob(SEGMENT_GLOB)
    )


def writer_lock_path(directory: Path, writer: str) -> Path:
    """The liveness lock guarding ``writer``'s segments."""
    if writer == LEGACY_WRITER:
        return directory / WRITER_LOCK_NAME
    return directory / f"writer-{writer}.lock"


@dataclass
class FabricStats:
    """Counters for one :class:`FabricCache` handle's lifetime.

    ``remote_hits`` counts hits served from another writer's segments or
    from the shared compacted layer — the cross-process reuse the fabric
    exists for.  ``refreshes`` counts directory rescans (throttled by
    ``refresh_interval``); ``corrupt_records`` counts unparseable lines
    skipped while scanning (torn tails re-read later are not counted).
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    remote_hits: int = 0
    refreshes: int = 0
    corrupt_records: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)


# Index-entry location tags.
_OWN = "own"        # (tag, path, offset)   — this handle's segment
_SEGMENT = "seg"    # (tag, path, offset)   — another writer's segment
_COMPACT = "cmp"    # (tag, offset, length) — the mmap'd compacted layer


class FabricCache:
    """A concurrently-writable, cross-process drop-in for ``DiskCache``.

    Same ``get``/``put``/``compact``/``close`` surface and the same
    first-write-wins immutable-entry semantics; what changes is *who may
    write*: any number of processes, each with its own ``writer`` id, may
    hold a handle on one directory at once.  Reads see every writer's
    flushed entries (after at most one ``refresh_interval``), plus the
    shared compacted layer, served via ``mmap``.

    ``writer`` defaults to ``pid<PID>`` — unique per process; a serving
    pool passes ``w<slot>-pid<PID>`` so segment files read as operational
    telemetry.  ``hot_entries`` bounds a small in-memory LRU of decoded
    payloads (0 disables) that short-circuits file reads for keys this
    handle serves repeatedly.
    """

    def __init__(
        self,
        directory: PathLike,
        writer: Optional[str] = None,
        max_segment_records: int = 1024,
        refresh_interval: float = 0.05,
        hot_entries: int = 256,
    ) -> None:
        if max_segment_records < 1:
            raise ValueError(
                f"max_segment_records must be >= 1: {max_segment_records}"
            )
        if refresh_interval < 0:
            raise ValueError(
                f"refresh_interval must be >= 0: {refresh_interval}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.writer = sanitize_writer(
            writer if writer is not None else f"pid{os.getpid()}"
        )
        self.max_segment_records = max_segment_records
        self.refresh_interval = refresh_interval
        self.stats = FabricStats()
        self._lock = threading.RLock()
        self._index: Dict[str, Tuple] = {}
        self._hot: Optional[LRUCache] = (
            LRUCache(hot_entries) if hot_entries else None
        )
        # Own append state.
        self._writer_lock = FileLock(writer_lock_path(self.directory, self.writer))
        self._handle = None
        self._segment_path: Optional[Path] = None
        self._segment_index = -1
        self._segment_records = 0
        # Cross-writer read state: how far each foreign segment has been
        # scanned (only whole, newline-terminated lines are consumed).
        self._scanned: Dict[Path, int] = {}
        self._last_refresh = float("-inf")
        # Compacted read layer.
        self._generation = -1
        self._mmap: Optional[mmap.mmap] = None
        self._mmap_handle = None
        self.refresh(force=True)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index

    def get(self, key: str) -> Optional[Dict]:
        """The payload stored for ``key`` by *any* writer, or ``None``.

        A miss in the in-memory index triggers a (throttled) refresh —
        tailing the other writers' segments and picking up a newer
        compacted generation — then retries, so a warm entry written by a
        sibling worker is a hit here without re-encoding.
        """
        with self._lock:
            if self._hot is not None:
                payload = self._hot.get(key)
                if payload is not None:
                    self.stats.hits += 1
                    return payload
            payload = self._read(key)
            if payload is None and self.refresh():
                payload = self._read(key)
            if payload is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            if self._hot is not None:
                self._hot.put(key, payload)
            return payload

    def _read(self, key: str, retried: bool = False) -> Optional[Dict]:
        """Resolve ``key`` through the index (caller holds the lock).

        A location whose backing file vanished (a compactor in another
        process merged and deleted it) is dropped and the lookup retried
        once after a forced refresh — the entry reappears in the compacted
        layer with identical payload bytes.
        """
        location = self._index.get(key)
        if location is None:
            return None
        if location[0] == _COMPACT:
            _, offset, length = location
            try:
                line = self._mmap[offset:offset + length]
                payload = json.loads(line)["payload"]
            except (TypeError, ValueError, KeyError, IndexError):
                return self._recover(key, retried)
            self.stats.remote_hits += 1
            return payload
        _, path, offset = location
        if location[0] == _OWN and self._handle is not None:
            self._handle.flush()
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                record = json.loads(handle.readline().decode("utf-8"))
        except (OSError, ValueError, KeyError):
            return self._recover(key, retried)
        if location[0] != _OWN:
            self.stats.remote_hits += 1
        return record["payload"]

    def _recover(self, key: str, retried: bool) -> Optional[Dict]:
        """One dead location: drop it, refresh, retry the lookup once."""
        del self._index[key]
        if retried:
            return None
        self.refresh(force=True)
        return self._read(key, retried=True)

    # ------------------------------------------------------------------
    # Refresh: see the other writers
    # ------------------------------------------------------------------
    def refresh(self, force: bool = False) -> bool:
        """Rescan the directory for work by other processes.

        Tails every foreign segment from its last scanned offset and
        loads a newer compacted generation if one appeared.  Throttled to
        once per ``refresh_interval`` unless ``force``; returns whether a
        scan actually ran.  Cheap when nothing changed: one ``glob`` plus
        one ``stat`` per unfinished foreign segment.
        """
        with self._lock:
            now = time.monotonic()
            if not force and now - self._last_refresh < self.refresh_interval:
                return False
            self._last_refresh = now
            self.stats.refreshes += 1
            self._load_compacted()
            for path in sorted(self.directory.glob(SEGMENT_GLOB)):
                parsed = split_segment_name(path)
                if parsed is None or parsed[0] == self.writer:
                    continue
                self._tail_segment(path)
            return True

    def _tail_segment(self, path: Path) -> None:
        """Index any new complete lines of one foreign segment."""
        offset = self._scanned.get(path, 0)
        try:
            if path.stat().st_size <= offset:
                return
            with open(path, "rb") as handle:
                handle.seek(offset)
                for line in handle:
                    if not line.endswith(b"\n"):
                        break  # torn tail: re-read from here next refresh
                    try:
                        record = json.loads(line.decode("utf-8"))
                        key = str(record["key"])
                        record["payload"]  # presence check
                    except (ValueError, KeyError, TypeError):
                        self.stats.corrupt_records += 1
                    else:
                        # First write wins: same-key records are identical
                        # by construction (content-addressed keys).
                        self._index.setdefault(key, (_SEGMENT, path, offset))
                    offset += len(line)
        except OSError:
            # Deleted by a compactor mid-scan: forget it; its records are
            # (or will be) in the compacted layer.
            self._scanned.pop(path, None)
            return
        self._scanned[path] = offset

    def _load_compacted(self) -> None:
        """Map the newest compacted generation, if it moved on."""
        meta = self._read_index_file()
        if meta is None or meta["generation"] <= self._generation:
            return
        if meta["bytes"] == 0:
            # An empty generation (everything was dead space): nothing to
            # map, but remember it so refreshes stop re-trying.
            self._close_mmap()
            self._generation = meta["generation"]
            return
        path = self.directory / meta["file"]
        try:
            handle = open(path, "rb")
        except OSError:
            return  # racing the next compaction; pick it up next refresh
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):  # ValueError: empty file
            handle.close()
            return
        if len(mapped) != meta["bytes"] or content_digest(
            (mapped[:],)
        ) != meta["checksum"]:
            # A torn or tampered generation: serve without it (the keys
            # that only lived there will miss and recompute — correct,
            # just colder).
            mapped.close()
            handle.close()
            return
        self._close_mmap()
        self._mmap, self._mmap_handle = mapped, handle
        self._generation = meta["generation"]
        # Stale locations into files the compactor deleted fix themselves
        # lazily in _read(); compacted entries fill only absent keys.
        for key, (offset, length) in meta["entries"].items():
            self._index.setdefault(key, (_COMPACT, offset, length))

    def _read_index_file(self) -> Optional[Dict]:
        try:
            with open(self.directory / INDEX_NAME, "rb") as handle:
                meta = json.loads(handle.read().decode("utf-8"))
            assert isinstance(meta["generation"], int)
            assert isinstance(meta["entries"], dict)
            meta["bytes"], meta["checksum"], meta["file"]
            return meta
        except (OSError, ValueError, KeyError, AssertionError, TypeError):
            return None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: str, payload: Dict) -> None:
        """Append ``payload`` under ``key`` to this writer's own segment
        (first write wins; flushed per record, so sibling workers see it
        after their next refresh)."""
        with self._lock:
            if key in self._index:
                return
            self._ensure_segment()
            line = (
                json.dumps({"key": key, "payload": payload}, ensure_ascii=False)
                + "\n"
            ).encode("utf-8")
            offset = self._handle.tell()
            self._handle.write(line)
            self._handle.flush()
            self._index[key] = (_OWN, self._segment_path, offset)
            self._segment_records += 1
            self.stats.writes += 1
            if self._hot is not None:
                self._hot.put(key, payload)

    def _ensure_segment(self) -> None:
        if not self._writer_lock.held:
            self._writer_lock.acquire()  # cannot contend: the id is ours
        if (
            self._handle is not None
            and self._segment_records < self.max_segment_records
        ):
            return
        if self._handle is not None:
            self._handle.close()
        if self._segment_index < 0:
            self._segment_index = self._next_own_segment_number()
        else:
            self._segment_index += 1
        self._segment_path = self.directory / (
            f"{_SEGMENT_PREFIX}{self.writer}-{self._segment_index:06d}"
            f"{_SEGMENT_SUFFIX}"
        )
        self._handle = open(self._segment_path, "ab")
        self._segment_records = 0

    def _next_own_segment_number(self) -> int:
        """One past the highest existing own segment — a restarted writer
        that reuses its id (same slot, same PID is impossible, but ids are
        caller-chosen) must never append to a file a compactor may have
        already decided about."""
        highest = -1
        for path in self.directory.glob(SEGMENT_GLOB):
            parsed = split_segment_name(path)
            if parsed is not None and parsed[0] == self.writer:
                highest = max(highest, parsed[1])
        return highest + 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, dry_run: bool = False) -> CompactionResult:
        """Merge every *quiescent* writer's segments (and the previous
        generation) into one fresh immutable generation.

        Lock-aware: a writer whose ``writer-*.lock`` is held is live — all
        its segments are skipped (counted in ``skipped_segments``) and
        survive untouched; everyone else's are merged, deduplicated
        (first occurrence wins; duplicate keys carry identical payloads by
        construction, so "exactly one valid entry" is also "the entry"),
        and deleted.  This handle's own segments are sealed first and
        merged too.  Concurrent compactors exclude each other via
        ``compact.lock`` (:class:`CacheLockedError` if contended).
        ``dry_run=True`` measures without writing, deleting, or locking
        out other compactors for longer than the measurement.
        """
        with self._lock:
            compact_lock = FileLock(self.directory / COMPACT_LOCK_NAME)
            if not compact_lock.acquire():
                raise CacheLockedError(
                    f"cannot compact {self.directory}: another compaction "
                    "is running"
                )
            try:
                return self._compact_locked(dry_run)
            finally:
                compact_lock.release()

    def _mergeable_sources(self, seal: bool) -> Tuple[List[Path], int]:
        """``(paths safe to merge, skipped segment count)``.

        Own segments are sealed (handle closed; the next put starts a new
        file) and always mergeable.  Foreign and legacy segments are
        mergeable only while their writer's lock is free.  A dry run
        measures without sealing.
        """
        if seal and self._handle is not None:
            self._handle.close()
            self._handle = None
            # Leave _segment_index as-is: _ensure_segment advances past it.
        by_writer: Dict[str, List[Tuple[int, Path]]] = {}
        for path in sorted(self.directory.glob(SEGMENT_GLOB)):
            parsed = split_segment_name(path)
            if parsed is None:
                continue  # foreign file that merely matches the glob
            by_writer.setdefault(parsed[0], []).append((parsed[1], path))
        sources: List[Path] = []
        skipped = 0
        for writer, numbered in sorted(by_writer.items()):
            numbered.sort()
            if writer != self.writer and FileLock.is_locked(
                writer_lock_path(self.directory, writer)
            ):
                skipped += len(numbered)
                continue
            sources.extend(path for _, path in numbered)
        return sources, skipped

    def _compact_locked(self, dry_run: bool) -> CompactionResult:
        sources, skipped = self._mergeable_sources(seal=not dry_run)
        meta = self._read_index_file()
        old_compact: Optional[Path] = None
        generation = 0
        if meta is not None:
            old_compact = self.directory / meta["file"]
            generation = meta["generation"] + 1
        bytes_before = sum(_safe_size(p) for p in sources) + (
            _safe_size(old_compact) if old_compact is not None else 0
        )

        # Stream: previous generation first (it is already deduplicated),
        # then segments in deterministic (writer, number) order.
        seen: Dict[str, Tuple[int, int]] = {}
        out_path = self.directory / (
            f"{_COMPACT_PREFIX}{generation:06d}{_COMPACT_SUFFIX}"
        )
        tmp_path = out_path.with_suffix(out_path.suffix + ".tmp")
        out = None if dry_run else open(tmp_path, "wb")
        digest_chunks: List[bytes] = []
        offset = 0
        corrupt = 0
        try:
            streams: List[Path] = (
                [old_compact] if old_compact is not None else []
            ) + sources
            for path in streams:
                try:
                    handle = open(path, "rb")
                except OSError:
                    continue
                with handle:
                    for line in handle:
                        if not line.endswith(b"\n"):
                            line += b"\n"
                        try:
                            record = json.loads(line.decode("utf-8"))
                            key = str(record["key"])
                            record["payload"]  # presence check
                        except (ValueError, KeyError, TypeError):
                            corrupt += 1
                            continue
                        if key in seen:
                            continue  # duplicate: identical payload, drop
                        seen[key] = (offset, len(line))
                        if out is not None:
                            out.write(line)
                            digest_chunks.append(line)
                        offset += len(line)
        finally:
            if out is not None:
                out.flush()
                os.fsync(out.fileno())
                out.close()
        if dry_run:
            return CompactionResult(
                records=len(seen),
                bytes_before=bytes_before,
                bytes_after=offset,
                dry_run=True,
                skipped_segments=skipped,
            )

        # Publish: data file, then the index that names it — both atomic.
        os.replace(tmp_path, out_path)
        index_payload = {
            "generation": generation,
            "file": out_path.name,
            "bytes": offset,
            "checksum": content_digest(iter(digest_chunks)),
            "entries": {
                key: [off, length] for key, (off, length) in seen.items()
            },
        }
        index_tmp = self.directory / (INDEX_NAME + ".tmp")
        with open(index_tmp, "wb") as handle:
            handle.write(json.dumps(index_payload).encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(index_tmp, self.directory / INDEX_NAME)

        # Retire the merged inputs.
        for path in sources:
            try:
                os.remove(path)
            except OSError:
                pass
            self._scanned.pop(path, None)
        if old_compact is not None and old_compact != out_path:
            try:
                os.remove(old_compact)
            except OSError:
                pass

        # Swap our own view to the new generation.  Own/foreign locations
        # into deleted files must go now — _read would recover them, but
        # an up-to-date index costs nothing here.
        deleted = set(sources)
        for key, location in list(self._index.items()):
            if location[0] != _COMPACT and location[1] in deleted:
                del self._index[key]
        self._generation = -1  # force the reload below to remap
        self._close_mmap()
        self._load_compacted()
        self.stats.corrupt_records += corrupt
        return CompactionResult(
            records=len(seen),
            bytes_before=bytes_before,
            bytes_after=offset,
            skipped_segments=skipped,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Bytes currently held by the directory's segments and compacted
        layer (a directory scan; informational)."""
        total = sum(
            _safe_size(path)
            for path in self.directory.glob(SEGMENT_GLOB)
            if split_segment_name(path) is not None
        )
        total += sum(
            _safe_size(path)
            for path in self.directory.glob(
                f"{_COMPACT_PREFIX}*{_COMPACT_SUFFIX}"
            )
        )
        return total

    def _close_mmap(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._mmap_handle is not None:
            self._mmap_handle.close()
            self._mmap_handle = None

    def close(self) -> None:
        """Flush and close the append handle, release the writer lock (so
        compactors may merge our segments), and unmap the read layer.  The
        next :meth:`put` reopens; the next :meth:`get` remaps."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._writer_lock.release()
            self._close_mmap()
            self._generation = -1

    def __enter__(self) -> "FabricCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _safe_size(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0
