"""Persistent on-disk result cache for the annotation serving stack.

The in-memory LRU in :mod:`repro.encoding.cache` saves re-*serializing* a
table within one process; this module saves re-*annotating* it across
processes.  Finished annotation products (types, scores, relations,
embeddings) are appended to JSONL segment files keyed by a composite hash of

* the table's content fingerprint (:func:`~repro.encoding.cache.table_fingerprint`),
* the model's annotation fingerprint
  (:meth:`~repro.core.trainer.DoduoTrainer.annotation_fingerprint` —
  weights, serializer recipe, vocabularies), and
* the request options (embeddings/relations switches, top-k, threshold,
  explicit pairs).

so a repeated corpus served after a process restart performs **zero**
encoder passes, while any change to the model, its serialization recipe, or
the request options misses cleanly and re-computes.

Equivalence contract
--------------------
A cache hit reproduces the producing pass **byte-identically**: floats
survive the JSON round trip exactly (``json`` emits shortest round-trip
``repr`` strings, exact for float64 and for float64-widened float32), and
embedding arrays record their dtype/shape so they are rebuilt bit-for-bit.
What is stored is the output of whichever pass first answered the request —
for single-table passes (``engine.annotate``, the queue's exact mode) that
is also byte-identical to a fresh direct ``engine.annotate`` call.

Durability
----------
Entries are immutable (a key is a content hash of everything that determines
the value, so there is nothing to update) and appended with per-record
flush.  On open, every ``segment-*.jsonl`` is scanned to rebuild the key →
(segment, offset) index; lines that fail to parse — a torn write from a
crash, manual truncation — are counted in ``stats.corrupt_records`` and
skipped, never fatal.  Values stay on disk and are read back on demand, so
resident memory is one index entry per cached table, not the payloads.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.annotator import AnnotatedTable
from ..encoding.cache import table_fingerprint
from .request import AnnotationRequest, AnnotationResult

PathLike = Union[str, Path]

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"

#: Glob matching a cache directory's segment files — the single source of
#: truth for the layout, reused by the CLI (warm flat-layout detection,
#: `repro cache compact` directory discovery).
SEGMENT_GLOB = f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"


def result_cache_key(model_fingerprint: str, request: AnnotationRequest) -> str:
    """The composite disk-cache key for one annotation request.

    Hashes the model fingerprint, the table's content fingerprint, and every
    option that changes the annotation output.  Requests that differ in any
    of those never share an entry (the invalidation guarantee); requests
    that differ only in ``table_id``/metadata or object identity do (the
    dedup guarantee).
    """
    options = request.options
    digest = hashlib.blake2b(digest_size=16)
    digest.update(model_fingerprint.encode("utf-8"))
    digest.update(table_fingerprint(request.table).encode("utf-8"))
    digest.update(
        repr(
            (
                options.with_embeddings,
                options.with_relations,
                options.top_k,
                options.score_threshold,
                request.pairs,
            )
        ).encode("utf-8")
    )
    return digest.hexdigest()


def encode_annotation(result: AnnotationResult) -> Dict:
    """Serialize one result's annotation products to a JSON-safe dict.

    Captures everything :func:`decode_annotation` needs to rebuild the
    :class:`~repro.core.annotator.AnnotatedTable` byte-identically; serving
    metadata (``from_cache``, ``batch_index``) is deliberately excluded —
    it describes the producing pass, not the annotation.
    """
    annotated = result.annotated
    payload: Dict = {
        "coltypes": annotated.coltypes,
        "type_scores": annotated.type_scores,
        "colrels": [
            [i, j, labels] for (i, j), labels in sorted(annotated.colrels.items())
        ],
        "requested_pairs": [list(pair) for pair in annotated.requested_pairs],
        "colemb": None,
    }
    if annotated.colemb is not None:
        emb = np.asarray(annotated.colemb)
        payload["colemb"] = {
            "dtype": str(emb.dtype),
            "shape": list(emb.shape),
            "data": emb.ravel().tolist(),
        }
    return payload


def decode_annotation(request: AnnotationRequest, payload: Dict) -> AnnotatedTable:
    """Rebuild the :class:`AnnotatedTable` stored by :func:`encode_annotation`.

    The table object comes from ``request`` (only content-equal tables can
    reach the same key, and the caller wants *their* table back, preserving
    its ``table_id``/metadata).
    """
    colemb = None
    if payload["colemb"] is not None:
        emb = payload["colemb"]
        colemb = np.asarray(emb["data"], dtype=emb["dtype"]).reshape(emb["shape"])
    return AnnotatedTable(
        table=request.table,
        coltypes=[list(names) for names in payload["coltypes"]],
        colrels={
            (int(i), int(j)): list(labels) for i, j, labels in payload["colrels"]
        },
        colemb=colemb,
        type_scores=[dict(scores) for scores in payload["type_scores"]],
        requested_pairs=[(int(i), int(j)) for i, j in payload["requested_pairs"]],
    )


@dataclass
class DiskCacheStats:
    """Counters for one :class:`DiskCache` handle's lifetime.

    ``corrupt_records`` counts unparseable lines skipped while scanning
    existing segments at open — evidence of a torn write, not an error.
    ``evicted_records`` counts index entries dropped by ``max_bytes``
    segment eviction (their values are deleted with the segment).
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_records: int = 0
    evicted_records: int = 0


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of one :meth:`DiskCache.compact` run."""

    records: int
    bytes_before: int
    bytes_after: int

    @property
    def reclaimed_bytes(self) -> int:
        return self.bytes_before - self.bytes_after


class DiskCache:
    """Append-only JSONL-segment store with an in-memory key index.

    Layout: ``directory/segment-NNNNNN.jsonl``, one ``{"key": ...,
    "payload": ...}`` object per line.  A new segment starts whenever the
    current one reaches ``max_segment_records`` lines, so a long-lived
    service produces bounded, individually-scannable files instead of one
    unbounded log.  Keys are opaque strings (the engine uses
    :func:`result_cache_key`); payloads are any JSON-serializable value.

    Concurrency: one writing *handle* per directory is assumed — never
    open two DiskCache objects on one live directory (the serving registry
    shares a single handle per model fingerprint for exactly this reason).
    The handle itself is safe to share across threads: every public
    operation runs under an internal lock, so e.g. two worker threads
    serving two registered names of the same model may interleave
    ``get``/``put`` calls freely.  Multiple read-only openers of a
    quiescent directory are safe.

    Growth control: ``max_bytes`` bounds the directory — when total segment
    bytes exceed it, whole oldest segments are deleted (log-structured
    eviction: the entries lost are the oldest ever written, never the ones
    being served right now).  The active segment is never evicted, so the
    bound can be overshot by at most one segment.  :meth:`compact` rewrites
    the directory keeping only live records, dropping corrupt lines,
    shadowed duplicates, and dead space.
    """

    def __init__(
        self,
        directory: PathLike,
        max_segment_records: int = 1024,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_segment_records < 1:
            raise ValueError(
                f"max_segment_records must be >= 1: {max_segment_records}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0: {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_records = max_segment_records
        self.max_bytes = max_bytes
        self.stats = DiskCacheStats()
        # Serializes every public operation: the handle may be shared by
        # several threads (e.g. two serving workers over one fingerprint),
        # and close() must never land in the middle of a put().  Reentrant
        # because compact() closes the write handle itself.
        self._io_lock = threading.RLock()
        # key -> (segment path, byte offset of its record line)
        self._index: Dict[str, Tuple[Path, int]] = {}
        self._segment_records = 0
        self._segment_index = -1
        self._segment_path: Optional[Path] = None
        self._tail_needs_newline = False
        self._total_bytes = 0
        self._handle = None
        self._scan_segments()
        self._enforce_max_bytes()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _segments(self) -> Iterator[Path]:
        return iter(sorted(self.directory.glob(SEGMENT_GLOB)))

    @staticmethod
    def _segment_number(path: Path) -> Optional[int]:
        """The segment's index, or ``None`` for a foreign file that merely
        matches the glob (those are never touched — not scanned, not
        counted, not evicted, not compacted away)."""
        try:
            return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
        except ValueError:
            return None

    def _owned_segments(self) -> List[Path]:
        return [
            path for path in self._segments()
            if self._segment_number(path) is not None
        ]

    def _scan_segments(self) -> None:
        """Rebuild the index from disk, skipping corrupt lines."""
        for path in self._segments():
            number = self._segment_number(path)
            if number is None:
                continue  # foreign file matching the glob; leave it alone
            self._segment_index = max(self._segment_index, number)
            offset = 0
            records = 0
            line = b"\n"
            with open(path, "rb") as handle:
                for line in handle:
                    records += 1
                    try:
                        record = json.loads(line.decode("utf-8"))
                        key = record["key"]
                        record["payload"]  # presence check
                    except (ValueError, KeyError, TypeError):
                        self.stats.corrupt_records += 1
                    else:
                        # Later segments win, though duplicates only arise
                        # from two writers racing (unsupported but benign).
                        self._index[str(key)] = (path, offset)
                    offset += len(line)
            self._total_bytes += offset
            self._segment_records = records
            self._segment_path = path
            # A crash can tear the final record mid-line with no trailing
            # newline; appending straight after it would merge the next
            # record into the torn bytes and lose it at the following scan.
            self._tail_needs_newline = not line.endswith(b"\n")
        if self._segment_index < 0:
            self._segment_records = 0

    # ------------------------------------------------------------------
    # Read/write
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> Optional[Dict]:
        """Return the payload stored for ``key``, or ``None`` (a miss).

        Reads the record back from its segment on every call — the index
        keeps only (path, offset) — so cached corpora far larger than RAM
        stay serveable.
        """
        with self._io_lock:
            location = self._index.get(key)
            if location is None:
                self.stats.misses += 1
                return None
            path, offset = location
            if self._handle is not None:
                self._handle.flush()
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    record = json.loads(handle.readline().decode("utf-8"))
            except (OSError, ValueError):
                # The segment vanished or rotted after indexing: treat as a
                # miss and drop the entry so the next put can re-fill it.
                del self._index[key]
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return record["payload"]

    def put(self, key: str, payload: Dict) -> None:
        """Persist ``payload`` under ``key`` (first write wins).

        Entries are immutable: the key hashes everything that determines
        the payload, so a repeat put stores nothing and keeps the original
        record authoritative.
        """
        with self._io_lock:
            if key in self._index:
                return
            self._ensure_segment()
            line = (
                json.dumps({"key": key, "payload": payload}, ensure_ascii=False) + "\n"
            ).encode("utf-8")
            offset = self._handle.tell()
            self._handle.write(line)
            self._handle.flush()
            self._index[key] = (self._segment_path, offset)
            self._segment_records += 1
            self._total_bytes += len(line)
            self.stats.writes += 1
            self._enforce_max_bytes()

    def _ensure_segment(self) -> None:
        """Make ``_handle`` point at a segment with room for one record."""
        if self._handle is None and (
            self._segment_index >= 0
            and self._segment_records < self.max_segment_records
        ):
            # Re-opening a directory whose newest segment still has room:
            # continue it instead of starting a new file.
            self._handle = open(self._segment_path, "ab")
            self._handle.seek(0, os.SEEK_END)
            if self._tail_needs_newline:
                # Terminate a torn final record so the next append starts
                # on its own line (the torn line stays counted as corrupt).
                self._handle.write(b"\n")
                self._tail_needs_newline = False
            return
        if (
            self._handle is not None
            and self._segment_records < self.max_segment_records
        ):
            return
        if self._handle is not None:
            self._handle.close()
        self._segment_index += 1
        self._segment_path = self.directory / (
            f"{_SEGMENT_PREFIX}{self._segment_index:06d}{_SEGMENT_SUFFIX}"
        )
        self._handle = open(self._segment_path, "ab")
        self._handle.seek(0, os.SEEK_END)
        self._segment_records = 0
        self._tail_needs_newline = False

    # ------------------------------------------------------------------
    # Growth control
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Bytes currently held by the directory's segments."""
        return self._total_bytes

    def _enforce_max_bytes(self) -> None:
        """Drop whole oldest segments until the directory fits ``max_bytes``.

        The active (newest) segment is never dropped — the bound may be
        overshot by at most one segment, and a cache smaller than one
        segment's worth of records keeps serving its freshest entries.
        """
        if self.max_bytes is None:
            return
        while self._total_bytes > self.max_bytes:
            victims = [
                path for path in self._owned_segments()
                if path != self._segment_path
            ]
            if not victims:
                return
            oldest = victims[0]
            evicted = [
                key for key, (path, _) in self._index.items() if path == oldest
            ]
            for key in evicted:
                del self._index[key]
            try:
                size = oldest.stat().st_size
                os.remove(oldest)
            except OSError:
                return  # cannot measure/remove: stop rather than loop
            self._total_bytes -= size
            self.stats.evicted_records += len(evicted)

    def compact(self) -> CompactionResult:
        """Rewrite the directory keeping only live records.

        An append-only log accumulates dead space: lines corrupted by torn
        writes, duplicates shadowed by a later segment, and records whose
        index entries were dropped by eviction or read-time rot.  Compaction
        streams every *live* record (in index order: oldest segment first)
        into freshly numbered segments, swaps them in, and rebuilds the
        in-memory index.  Keys, payload bytes, and lookup results are
        unchanged — only dead space disappears.  The write handle is
        reopened lazily by the next :meth:`put`.
        """
        with self._io_lock:
            return self._compact_locked()

    def _compact_locked(self) -> CompactionResult:
        self.close()
        bytes_before = self._total_bytes
        live = sorted(self._index.items(), key=lambda item: (item[1][0].name, item[1][1]))
        tmp_paths: list = []
        new_index: Dict[str, Tuple[Path, int]] = {}
        handle = None
        reader = None
        reader_path: Optional[Path] = None
        records_in_segment = 0
        segment_index = -1
        segment_path: Optional[Path] = None
        offset = 0
        total = 0
        try:
            for key, (path, old_offset) in live:
                # live is sorted oldest-segment-first by ascending offset,
                # so one read handle per source segment suffices.
                if reader_path != path:
                    if reader is not None:
                        reader.close()
                    reader = open(path, "rb")
                    reader_path = path
                reader.seek(old_offset)
                line = reader.readline()
                if not line.endswith(b"\n"):
                    # A valid final record can lack its newline (torn write
                    # that still parsed); terminate it or it would merge
                    # with the record written after it.
                    line += b"\n"
                if handle is None or records_in_segment >= self.max_segment_records:
                    if handle is not None:
                        handle.close()
                    segment_index += 1
                    segment_path = self.directory / (
                        f"{_SEGMENT_PREFIX}{segment_index:06d}{_SEGMENT_SUFFIX}.tmp"
                    )
                    tmp_paths.append(segment_path)
                    handle = open(segment_path, "wb")
                    records_in_segment = 0
                    offset = 0
                handle.write(line)
                new_index[key] = (segment_path, offset)
                offset += len(line)
                total += len(line)
                records_in_segment += 1
        finally:
            if reader is not None:
                reader.close()
            if handle is not None:
                handle.close()
        # Swap: delete the old log, promote the temporaries.  Foreign files
        # that merely match the segment glob are left untouched.
        for path in self._owned_segments():
            try:
                os.remove(path)
            except OSError:
                pass
        final_by_tmp: Dict[Path, Path] = {}
        for tmp in tmp_paths:
            final = tmp.with_suffix("")  # strip ".tmp" -> segment-N.jsonl
            os.replace(tmp, final)
            final_by_tmp[tmp] = final
        final_index: Dict[str, Tuple[Path, int]] = {
            key: (final_by_tmp[path], key_offset)
            for key, (path, key_offset) in new_index.items()
        }
        self._index = final_index
        self._segment_index = segment_index
        self._segment_path = (
            self.directory
            / f"{_SEGMENT_PREFIX}{segment_index:06d}{_SEGMENT_SUFFIX}"
            if segment_index >= 0
            else None
        )
        self._segment_records = records_in_segment if segment_index >= 0 else 0
        self._tail_needs_newline = False
        self._total_bytes = total
        return CompactionResult(
            records=len(final_index),
            bytes_before=bytes_before,
            bytes_after=total,
        )

    def clear(self) -> None:
        """Delete every owned segment and reset the index and counters."""
        with self._io_lock:
            self.close()
            for path in self._owned_segments():
                try:
                    os.remove(path)
                except OSError:
                    pass
            self._index.clear()
            self._segment_records = 0
            self._segment_index = -1
            self._segment_path = None
            self._tail_needs_newline = False
            self._total_bytes = 0
            self.stats = DiskCacheStats()

    def close(self) -> None:
        with self._io_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DiskCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
