"""Persistent on-disk result cache for the annotation serving stack.

The in-memory LRU in :mod:`repro.encoding.cache` saves re-*serializing* a
table within one process; this module saves re-*annotating* it across
processes.  Finished annotation products (types, scores, relations,
embeddings) are appended to JSONL segment files keyed by a composite hash of

* the table's content fingerprint (:func:`~repro.encoding.cache.table_fingerprint`),
* the model's annotation fingerprint
  (:meth:`~repro.core.trainer.DoduoTrainer.annotation_fingerprint` —
  weights, serializer recipe, vocabularies), and
* the request options (embeddings/relations switches, top-k, threshold,
  explicit pairs).

so a repeated corpus served after a process restart performs **zero**
encoder passes, while any change to the model, its serialization recipe, or
the request options misses cleanly and re-computes.

Equivalence contract
--------------------
A cache hit reproduces the producing pass **byte-identically**: floats
survive the JSON round trip exactly (``json`` emits shortest round-trip
``repr`` strings, exact for float64 and for float64-widened float32), and
embedding arrays record their dtype/shape so they are rebuilt bit-for-bit.
What is stored is the output of whichever pass first answered the request —
for single-table passes (``engine.annotate``, the queue's exact mode) that
is also byte-identical to a fresh direct ``engine.annotate`` call.

Durability
----------
Entries are immutable (a key is a content hash of everything that determines
the value, so there is nothing to update) and appended with per-record
flush.  On open, every ``segment-*.jsonl`` is scanned to rebuild the key →
(segment, offset) index; lines that fail to parse — a torn write from a
crash, manual truncation — are counted in ``stats.corrupt_records`` and
skipped, never fatal.  Values stay on disk and are read back on demand, so
resident memory is one index entry per cached table, not the payloads.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.annotator import AnnotatedTable
from ..encoding.cache import content_digest, table_fingerprint
from .request import AnnotationRequest, AnnotationResult

try:  # pragma: no cover - import guard exercised only off-Linux
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - Windows
    _fcntl = None

PathLike = Union[str, Path]

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"

#: Glob matching a cache directory's segment files — the single source of
#: truth for the layout, reused by the CLI (warm flat-layout detection,
#: `repro cache compact` directory discovery).
SEGMENT_GLOB = f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"

#: The advisory writer-lock file a live :class:`DiskCache` handle holds on
#: its directory; `repro cache compact` probes it to skip live caches.
WRITER_LOCK_NAME = "writer.lock"


class CacheLockedError(RuntimeError):
    """Raised when a mutating cache operation needs the directory's writer
    lock but another live handle (possibly in another process) holds it."""


class FileLock:
    """Advisory exclusive lock on one path (``flock``-based).

    The concurrency primitive under both cache tiers: a :class:`DiskCache`
    holds one on its directory for the lifetime of its append handle, and
    the fabric's compactor probes those of other writers to decide which
    segments are safe to merge.  ``acquire`` is always non-blocking — the
    serving stack never *waits* for a lock, it observes who holds one and
    routes around them.

    Where ``fcntl`` is unavailable the lock degrades to a no-op that always
    acquires and never observes a holder — exactly the historical
    one-writer-by-convention behaviour, no worse.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self) -> bool:
        """Try to take the lock; ``True`` on success (idempotent)."""
        if self._handle is not None:
            return True
        handle = open(self.path, "ab")
        if _fcntl is not None:
            try:
                _fcntl.flock(handle.fileno(), _fcntl.LOCK_EX | _fcntl.LOCK_NB)
            except OSError:
                handle.close()
                return False
        self._handle = handle
        return True

    def release(self) -> None:
        """Drop the lock (idempotent).  The lock file stays on disk — it
        is an inode to flock, not a pidfile; a stale one is harmless."""
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if _fcntl is not None:
            try:
                _fcntl.flock(handle.fileno(), _fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - unlock cannot really fail
                pass
        handle.close()

    @classmethod
    def is_locked(cls, path: PathLike) -> bool:
        """Probe: is some *other* handle holding the lock at ``path``?

        False where ``fcntl`` is unavailable or the file does not exist.
        The probe briefly takes and releases the lock, so only call it on
        locks the caller does not hold.
        """
        if _fcntl is None or not Path(path).exists():
            return False
        probe = cls(path)
        if probe.acquire():
            probe.release()
            return False
        return True

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def result_cache_key(model_fingerprint: str, request: AnnotationRequest) -> str:
    """The composite disk-cache key for one annotation request.

    Hashes the model fingerprint, the table's content fingerprint, and every
    option that changes the annotation output.  Requests that differ in any
    of those never share an entry (the invalidation guarantee); requests
    that differ only in ``table_id``/metadata or object identity do (the
    dedup guarantee).
    """
    options = request.options
    return content_digest(
        (
            model_fingerprint.encode("utf-8"),
            table_fingerprint(request.table).encode("utf-8"),
            repr(
                (
                    options.with_embeddings,
                    options.with_relations,
                    options.top_k,
                    options.score_threshold,
                    request.pairs,
                )
            ).encode("utf-8"),
        )
    )


def encode_annotation(result: AnnotationResult) -> Dict:
    """Serialize one result's annotation products to a JSON-safe dict.

    Captures everything :func:`decode_annotation` needs to rebuild the
    :class:`~repro.core.annotator.AnnotatedTable` byte-identically; serving
    metadata (``from_cache``, ``batch_index``) is deliberately excluded —
    it describes the producing pass, not the annotation.
    """
    annotated = result.annotated
    payload: Dict = {
        "coltypes": annotated.coltypes,
        "type_scores": annotated.type_scores,
        "colrels": [
            [i, j, labels] for (i, j), labels in sorted(annotated.colrels.items())
        ],
        "requested_pairs": [list(pair) for pair in annotated.requested_pairs],
        "colemb": None,
    }
    if annotated.colemb is not None:
        emb = np.asarray(annotated.colemb)
        payload["colemb"] = {
            "dtype": str(emb.dtype),
            "shape": list(emb.shape),
            "data": emb.ravel().tolist(),
        }
    return payload


def decode_annotation(request: AnnotationRequest, payload: Dict) -> AnnotatedTable:
    """Rebuild the :class:`AnnotatedTable` stored by :func:`encode_annotation`.

    The table object comes from ``request`` (only content-equal tables can
    reach the same key, and the caller wants *their* table back, preserving
    its ``table_id``/metadata).
    """
    colemb = None
    if payload["colemb"] is not None:
        emb = payload["colemb"]
        colemb = np.asarray(emb["data"], dtype=emb["dtype"]).reshape(emb["shape"])
    return AnnotatedTable(
        table=request.table,
        coltypes=[list(names) for names in payload["coltypes"]],
        colrels={
            (int(i), int(j)): list(labels) for i, j, labels in payload["colrels"]
        },
        colemb=colemb,
        type_scores=[dict(scores) for scores in payload["type_scores"]],
        requested_pairs=[(int(i), int(j)) for i, j in payload["requested_pairs"]],
    )


@dataclass
class DiskCacheStats:
    """Counters for one :class:`DiskCache` handle's lifetime.

    ``corrupt_records`` counts unparseable lines skipped while scanning
    existing segments at open — evidence of a torn write, not an error.
    ``evicted_records`` counts index entries dropped by ``max_bytes``
    segment eviction (their values are deleted with the segment).
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_records: int = 0
    evicted_records: int = 0


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of one :meth:`DiskCache.compact` run.

    With ``dry_run=True`` nothing was rewritten: ``bytes_after`` is the
    *projected* post-compaction size and ``reclaimed_bytes`` the dead
    space a real run would drop.  ``skipped_segments`` counts segments a
    lock-aware (fabric) compaction left alone because a live writer owns
    them.
    """

    records: int
    bytes_before: int
    bytes_after: int
    dry_run: bool = False
    skipped_segments: int = 0

    @property
    def reclaimed_bytes(self) -> int:
        return self.bytes_before - self.bytes_after


class DiskCache:
    """Append-only JSONL-segment store with an in-memory key index.

    Layout: ``directory/segment-NNNNNN.jsonl``, one ``{"key": ...,
    "payload": ...}`` object per line.  A new segment starts whenever the
    current one reaches ``max_segment_records`` lines, so a long-lived
    service produces bounded, individually-scannable files instead of one
    unbounded log.  Keys are opaque strings (the engine uses
    :func:`result_cache_key`); payloads are any JSON-serializable value.

    Concurrency: one writing *handle* per directory is assumed — never
    open two DiskCache objects on one live directory (the serving registry
    shares a single handle per model fingerprint for exactly this reason).
    The handle itself is safe to share across threads: every public
    operation runs under an internal lock, so e.g. two worker threads
    serving two registered names of the same model may interleave
    ``get``/``put`` calls freely.  Multiple read-only openers of a
    quiescent directory are safe.

    Growth control: ``max_bytes`` bounds the directory — when total segment
    bytes exceed it, whole oldest segments are deleted (log-structured
    eviction: the entries lost are the oldest ever written, never the ones
    being served right now).  The active segment is never evicted, so the
    bound can be overshot by at most one segment.  :meth:`compact` rewrites
    the directory keeping only live records, dropping corrupt lines,
    shadowed duplicates, and dead space.
    """

    def __init__(
        self,
        directory: PathLike,
        max_segment_records: int = 1024,
        max_bytes: Optional[int] = None,
        lock: bool = True,
    ) -> None:
        if max_segment_records < 1:
            raise ValueError(
                f"max_segment_records must be >= 1: {max_segment_records}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0: {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_records = max_segment_records
        self.max_bytes = max_bytes
        # Advisory writer lock on the directory: held while this handle is
        # open, so `repro cache compact` (and the fabric's compactor) can
        # tell a live cache from a quiescent one.  Acquisition is soft —
        # a second handle on a live directory still opens (the historical
        # contract tolerated it), it just cannot compact or evict.
        self._lock_enabled = lock
        self._writer_lock = FileLock(self.directory / WRITER_LOCK_NAME)
        if lock:
            self._writer_lock.acquire()
        self.stats = DiskCacheStats()
        # Serializes every public operation: the handle may be shared by
        # several threads (e.g. two serving workers over one fingerprint),
        # and close() must never land in the middle of a put().  Reentrant
        # because compact() closes the write handle itself.
        self._io_lock = threading.RLock()
        # key -> (segment path, byte offset of its record line)
        self._index: Dict[str, Tuple[Path, int]] = {}
        self._segment_records = 0
        self._segment_index = -1
        self._segment_path: Optional[Path] = None
        self._tail_needs_newline = False
        self._total_bytes = 0
        self._handle = None
        self._scan_segments()
        self._enforce_max_bytes()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _segments(self) -> Iterator[Path]:
        return iter(sorted(self.directory.glob(SEGMENT_GLOB)))

    @staticmethod
    def _segment_number(path: Path) -> Optional[int]:
        """The segment's index, or ``None`` for a foreign file that merely
        matches the glob (those are never touched — not scanned, not
        counted, not evicted, not compacted away)."""
        try:
            return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
        except ValueError:
            return None

    def _owned_segments(self) -> List[Path]:
        return [
            path for path in self._segments()
            if self._segment_number(path) is not None
        ]

    def _scan_segments(self) -> None:
        """Rebuild the index from disk, skipping corrupt lines."""
        for path in self._segments():
            number = self._segment_number(path)
            if number is None:
                continue  # foreign file matching the glob; leave it alone
            self._segment_index = max(self._segment_index, number)
            offset = 0
            records = 0
            line = b"\n"
            with open(path, "rb") as handle:
                for line in handle:
                    records += 1
                    try:
                        record = json.loads(line.decode("utf-8"))
                        key = record["key"]
                        record["payload"]  # presence check
                    except (ValueError, KeyError, TypeError):
                        self.stats.corrupt_records += 1
                    else:
                        # Later segments win, though duplicates only arise
                        # from two writers racing (unsupported but benign).
                        self._index[str(key)] = (path, offset)
                    offset += len(line)
            self._total_bytes += offset
            self._segment_records = records
            self._segment_path = path
            # A crash can tear the final record mid-line with no trailing
            # newline; appending straight after it would merge the next
            # record into the torn bytes and lose it at the following scan.
            self._tail_needs_newline = not line.endswith(b"\n")
        if self._segment_index < 0:
            self._segment_records = 0

    # ------------------------------------------------------------------
    # Read/write
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> Optional[Dict]:
        """Return the payload stored for ``key``, or ``None`` (a miss).

        Reads the record back from its segment on every call — the index
        keeps only (path, offset) — so cached corpora far larger than RAM
        stay serveable.
        """
        with self._io_lock:
            location = self._index.get(key)
            if location is None:
                self.stats.misses += 1
                return None
            path, offset = location
            if self._handle is not None:
                self._handle.flush()
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    record = json.loads(handle.readline().decode("utf-8"))
            except (OSError, ValueError):
                # The segment vanished or rotted after indexing: treat as a
                # miss and drop the entry so the next put can re-fill it.
                del self._index[key]
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return record["payload"]

    def put(self, key: str, payload: Dict) -> None:
        """Persist ``payload`` under ``key`` (first write wins).

        Entries are immutable: the key hashes everything that determines
        the payload, so a repeat put stores nothing and keeps the original
        record authoritative.
        """
        with self._io_lock:
            if key in self._index:
                return
            self._ensure_segment()
            line = (
                json.dumps({"key": key, "payload": payload}, ensure_ascii=False) + "\n"
            ).encode("utf-8")
            offset = self._handle.tell()
            self._handle.write(line)
            self._handle.flush()
            self._index[key] = (self._segment_path, offset)
            self._segment_records += 1
            self._total_bytes += len(line)
            self.stats.writes += 1
            self._enforce_max_bytes()

    def _ensure_segment(self) -> None:
        """Make ``_handle`` point at a segment with room for one record."""
        if self._lock_enabled and not self._writer_lock.held:
            # A handle reopening after close() (registry evict/reload
            # reuses one handle per fingerprint) takes the lock back.
            self._writer_lock.acquire()
        if self._handle is None and (
            self._segment_index >= 0
            and self._segment_records < self.max_segment_records
        ):
            # Re-opening a directory whose newest segment still has room:
            # continue it instead of starting a new file.
            self._handle = open(self._segment_path, "ab")
            self._handle.seek(0, os.SEEK_END)
            if self._tail_needs_newline:
                # Terminate a torn final record so the next append starts
                # on its own line (the torn line stays counted as corrupt).
                self._handle.write(b"\n")
                self._tail_needs_newline = False
            return
        if (
            self._handle is not None
            and self._segment_records < self.max_segment_records
        ):
            return
        if self._handle is not None:
            self._handle.close()
        self._segment_index += 1
        self._segment_path = self.directory / (
            f"{_SEGMENT_PREFIX}{self._segment_index:06d}{_SEGMENT_SUFFIX}"
        )
        self._handle = open(self._segment_path, "ab")
        self._handle.seek(0, os.SEEK_END)
        self._segment_records = 0
        self._tail_needs_newline = False

    # ------------------------------------------------------------------
    # Growth control
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Bytes currently held by the directory's segments."""
        return self._total_bytes

    def _enforce_max_bytes(self) -> None:
        """Drop whole oldest segments until the directory fits ``max_bytes``.

        The active (newest) segment is never dropped — the bound may be
        overshot by at most one segment, and a cache smaller than one
        segment's worth of records keeps serving its freshest entries.
        Never deletes anything while another handle holds the directory's
        writer lock: evicting a live writer's files from a second opener
        would corrupt its index.
        """
        if self.max_bytes is None:
            return
        if self._lock_enabled and not self._writer_lock.held:
            return
        while self._total_bytes > self.max_bytes:
            victims = [
                path for path in self._owned_segments()
                if path != self._segment_path
            ]
            if not victims:
                return
            oldest = victims[0]
            evicted = [
                key for key, (path, _) in self._index.items() if path == oldest
            ]
            for key in evicted:
                del self._index[key]
            try:
                size = oldest.stat().st_size
                os.remove(oldest)
            except OSError:
                return  # cannot measure/remove: stop rather than loop
            self._total_bytes -= size
            self.stats.evicted_records += len(evicted)

    def compact(self, dry_run: bool = False) -> CompactionResult:
        """Rewrite the directory keeping only live records.

        An append-only log accumulates dead space: lines corrupted by torn
        writes, duplicates shadowed by a later segment, and records whose
        index entries were dropped by eviction or read-time rot.  Compaction
        streams every *live* record (in index order: oldest segment first)
        into freshly numbered segments, swaps them in, and rebuilds the
        in-memory index.  Keys, payload bytes, and lookup results are
        unchanged — only dead space disappears.  The write handle is
        reopened lazily by the next :meth:`put`.

        Lock discipline: a real compaction needs the directory's writer
        lock — running one under a live writer in another process would
        delete segments out from under its index.  When another handle
        holds the lock, :class:`CacheLockedError` is raised (the CLI turns
        it into a "skipped" report).  ``dry_run=True`` mutates nothing and
        needs no lock: it measures the live records and reports the bytes
        a real run would reclaim.
        """
        with self._io_lock:
            if dry_run:
                return self._dry_run_locked()
            if self._lock_enabled and not self._writer_lock.held:
                if not self._writer_lock.acquire():
                    raise CacheLockedError(
                        f"cannot compact {self.directory}: another live "
                        "writer holds its lock"
                    )
            return self._compact_locked()

    def _dry_run_locked(self) -> CompactionResult:
        """Measure what :meth:`compact` would do, touching nothing."""
        if self._handle is not None:
            self._handle.flush()
        by_path: Dict[Path, List[int]] = {}
        for path, offset in self._index.values():
            by_path.setdefault(path, []).append(offset)
        live_bytes = 0
        records = 0
        for path, offsets in by_path.items():
            try:
                with open(path, "rb") as handle:
                    for offset in sorted(offsets):
                        handle.seek(offset)
                        line = handle.readline()
                        if not line.endswith(b"\n"):
                            line += b"\n"  # compaction would terminate it
                        live_bytes += len(line)
                        records += 1
            except OSError:
                continue  # segment vanished mid-measure: not live anymore
        return CompactionResult(
            records=records,
            bytes_before=self._total_bytes,
            bytes_after=live_bytes,
            dry_run=True,
        )

    def _compact_locked(self) -> CompactionResult:
        self._close_handle()
        bytes_before = self._total_bytes
        live = sorted(self._index.items(), key=lambda item: (item[1][0].name, item[1][1]))
        tmp_paths: list = []
        new_index: Dict[str, Tuple[Path, int]] = {}
        handle = None
        reader = None
        reader_path: Optional[Path] = None
        records_in_segment = 0
        segment_index = -1
        segment_path: Optional[Path] = None
        offset = 0
        total = 0
        try:
            for key, (path, old_offset) in live:
                # live is sorted oldest-segment-first by ascending offset,
                # so one read handle per source segment suffices.
                if reader_path != path:
                    if reader is not None:
                        reader.close()
                    reader = open(path, "rb")
                    reader_path = path
                reader.seek(old_offset)
                line = reader.readline()
                if not line.endswith(b"\n"):
                    # A valid final record can lack its newline (torn write
                    # that still parsed); terminate it or it would merge
                    # with the record written after it.
                    line += b"\n"
                if handle is None or records_in_segment >= self.max_segment_records:
                    if handle is not None:
                        handle.close()
                    segment_index += 1
                    segment_path = self.directory / (
                        f"{_SEGMENT_PREFIX}{segment_index:06d}{_SEGMENT_SUFFIX}.tmp"
                    )
                    tmp_paths.append(segment_path)
                    handle = open(segment_path, "wb")
                    records_in_segment = 0
                    offset = 0
                handle.write(line)
                new_index[key] = (segment_path, offset)
                offset += len(line)
                total += len(line)
                records_in_segment += 1
        finally:
            if reader is not None:
                reader.close()
            if handle is not None:
                handle.close()
        # Swap: delete the old log, promote the temporaries.  Foreign files
        # that merely match the segment glob are left untouched.
        for path in self._owned_segments():
            try:
                os.remove(path)
            except OSError:
                pass
        final_by_tmp: Dict[Path, Path] = {}
        for tmp in tmp_paths:
            final = tmp.with_suffix("")  # strip ".tmp" -> segment-N.jsonl
            os.replace(tmp, final)
            final_by_tmp[tmp] = final
        final_index: Dict[str, Tuple[Path, int]] = {
            key: (final_by_tmp[path], key_offset)
            for key, (path, key_offset) in new_index.items()
        }
        self._index = final_index
        self._segment_index = segment_index
        self._segment_path = (
            self.directory
            / f"{_SEGMENT_PREFIX}{segment_index:06d}{_SEGMENT_SUFFIX}"
            if segment_index >= 0
            else None
        )
        self._segment_records = records_in_segment if segment_index >= 0 else 0
        self._tail_needs_newline = False
        self._total_bytes = total
        return CompactionResult(
            records=len(final_index),
            bytes_before=bytes_before,
            bytes_after=total,
        )

    def clear(self) -> None:
        """Delete every owned segment and reset the index and counters."""
        with self._io_lock:
            self._close_handle()
            for path in self._owned_segments():
                try:
                    os.remove(path)
                except OSError:
                    pass
            self._index.clear()
            self._segment_records = 0
            self._segment_index = -1
            self._segment_path = None
            self._tail_needs_newline = False
            self._total_bytes = 0
            self.stats = DiskCacheStats()

    @property
    def holds_writer_lock(self) -> bool:
        """Whether this handle owns the directory's advisory writer lock
        (always ``False`` with ``lock=False``)."""
        return self._writer_lock.held

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        """Close the append handle and release the writer lock.  The next
        :meth:`put` transparently reopens (and re-locks) the directory."""
        with self._io_lock:
            self._close_handle()
            self._writer_lock.release()

    def __enter__(self) -> "DiskCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
