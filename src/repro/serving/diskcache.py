"""Persistent on-disk result cache for the annotation serving stack.

The in-memory LRU in :mod:`repro.serving.cache` saves re-*serializing* a
table within one process; this module saves re-*annotating* it across
processes.  Finished annotation products (types, scores, relations,
embeddings) are appended to JSONL segment files keyed by a composite hash of

* the table's content fingerprint (:func:`~repro.serving.cache.table_fingerprint`),
* the model's annotation fingerprint
  (:meth:`~repro.core.trainer.DoduoTrainer.annotation_fingerprint` —
  weights, serializer recipe, vocabularies), and
* the request options (embeddings/relations switches, top-k, threshold,
  explicit pairs).

so a repeated corpus served after a process restart performs **zero**
encoder passes, while any change to the model, its serialization recipe, or
the request options misses cleanly and re-computes.

Equivalence contract
--------------------
A cache hit reproduces the producing pass **byte-identically**: floats
survive the JSON round trip exactly (``json`` emits shortest round-trip
``repr`` strings, exact for float64 and for float64-widened float32), and
embedding arrays record their dtype/shape so they are rebuilt bit-for-bit.
What is stored is the output of whichever pass first answered the request —
for single-table passes (``engine.annotate``, the queue's exact mode) that
is also byte-identical to a fresh direct ``engine.annotate`` call.

Durability
----------
Entries are immutable (a key is a content hash of everything that determines
the value, so there is nothing to update) and appended with per-record
flush.  On open, every ``segment-*.jsonl`` is scanned to rebuild the key →
(segment, offset) index; lines that fail to parse — a torn write from a
crash, manual truncation — are counted in ``stats.corrupt_records`` and
skipped, never fatal.  Values stay on disk and are read back on demand, so
resident memory is one index entry per cached table, not the payloads.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from ..core.annotator import AnnotatedTable
from .cache import table_fingerprint
from .request import AnnotationRequest, AnnotationResult

PathLike = Union[str, Path]

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def result_cache_key(model_fingerprint: str, request: AnnotationRequest) -> str:
    """The composite disk-cache key for one annotation request.

    Hashes the model fingerprint, the table's content fingerprint, and every
    option that changes the annotation output.  Requests that differ in any
    of those never share an entry (the invalidation guarantee); requests
    that differ only in ``table_id``/metadata or object identity do (the
    dedup guarantee).
    """
    options = request.options
    digest = hashlib.blake2b(digest_size=16)
    digest.update(model_fingerprint.encode("utf-8"))
    digest.update(table_fingerprint(request.table).encode("utf-8"))
    digest.update(
        repr(
            (
                options.with_embeddings,
                options.with_relations,
                options.top_k,
                options.score_threshold,
                request.pairs,
            )
        ).encode("utf-8")
    )
    return digest.hexdigest()


def encode_annotation(result: AnnotationResult) -> Dict:
    """Serialize one result's annotation products to a JSON-safe dict.

    Captures everything :func:`decode_annotation` needs to rebuild the
    :class:`~repro.core.annotator.AnnotatedTable` byte-identically; serving
    metadata (``from_cache``, ``batch_index``) is deliberately excluded —
    it describes the producing pass, not the annotation.
    """
    annotated = result.annotated
    payload: Dict = {
        "coltypes": annotated.coltypes,
        "type_scores": annotated.type_scores,
        "colrels": [
            [i, j, labels] for (i, j), labels in sorted(annotated.colrels.items())
        ],
        "requested_pairs": [list(pair) for pair in annotated.requested_pairs],
        "colemb": None,
    }
    if annotated.colemb is not None:
        emb = np.asarray(annotated.colemb)
        payload["colemb"] = {
            "dtype": str(emb.dtype),
            "shape": list(emb.shape),
            "data": emb.ravel().tolist(),
        }
    return payload


def decode_annotation(request: AnnotationRequest, payload: Dict) -> AnnotatedTable:
    """Rebuild the :class:`AnnotatedTable` stored by :func:`encode_annotation`.

    The table object comes from ``request`` (only content-equal tables can
    reach the same key, and the caller wants *their* table back, preserving
    its ``table_id``/metadata).
    """
    colemb = None
    if payload["colemb"] is not None:
        emb = payload["colemb"]
        colemb = np.asarray(emb["data"], dtype=emb["dtype"]).reshape(emb["shape"])
    return AnnotatedTable(
        table=request.table,
        coltypes=[list(names) for names in payload["coltypes"]],
        colrels={
            (int(i), int(j)): list(labels) for i, j, labels in payload["colrels"]
        },
        colemb=colemb,
        type_scores=[dict(scores) for scores in payload["type_scores"]],
        requested_pairs=[(int(i), int(j)) for i, j in payload["requested_pairs"]],
    )


@dataclass
class DiskCacheStats:
    """Counters for one :class:`DiskCache` handle's lifetime.

    ``corrupt_records`` counts unparseable lines skipped while scanning
    existing segments at open — evidence of a torn write, not an error.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_records: int = 0


class DiskCache:
    """Append-only JSONL-segment store with an in-memory key index.

    Layout: ``directory/segment-NNNNNN.jsonl``, one ``{"key": ...,
    "payload": ...}`` object per line.  A new segment starts whenever the
    current one reaches ``max_segment_records`` lines, so a long-lived
    service produces bounded, individually-scannable files instead of one
    unbounded log.  Keys are opaque strings (the engine uses
    :func:`result_cache_key`); payloads are any JSON-serializable value.

    Concurrency: one writing handle per directory is assumed (the serving
    queue funnels all annotation through a single worker, which preserves
    this).  Multiple read-only openers of a quiescent directory are safe.
    """

    def __init__(self, directory: PathLike, max_segment_records: int = 1024) -> None:
        if max_segment_records < 1:
            raise ValueError(
                f"max_segment_records must be >= 1: {max_segment_records}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_records = max_segment_records
        self.stats = DiskCacheStats()
        # key -> (segment path, byte offset of its record line)
        self._index: Dict[str, Tuple[Path, int]] = {}
        self._segment_records = 0
        self._segment_index = -1
        self._segment_path: Optional[Path] = None
        self._tail_needs_newline = False
        self._handle = None
        self._scan_segments()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _segments(self) -> Iterator[Path]:
        return iter(
            sorted(self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))
        )

    def _scan_segments(self) -> None:
        """Rebuild the index from disk, skipping corrupt lines."""
        for path in self._segments():
            try:
                self._segment_index = max(
                    self._segment_index,
                    int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]),
                )
            except ValueError:
                continue  # foreign file matching the glob; leave it alone
            offset = 0
            records = 0
            line = b"\n"
            with open(path, "rb") as handle:
                for line in handle:
                    records += 1
                    try:
                        record = json.loads(line.decode("utf-8"))
                        key = record["key"]
                        record["payload"]  # presence check
                    except (ValueError, KeyError, TypeError):
                        self.stats.corrupt_records += 1
                    else:
                        # Later segments win, though duplicates only arise
                        # from two writers racing (unsupported but benign).
                        self._index[str(key)] = (path, offset)
                    offset += len(line)
            self._segment_records = records
            self._segment_path = path
            # A crash can tear the final record mid-line with no trailing
            # newline; appending straight after it would merge the next
            # record into the torn bytes and lose it at the following scan.
            self._tail_needs_newline = not line.endswith(b"\n")
        if self._segment_index < 0:
            self._segment_records = 0

    # ------------------------------------------------------------------
    # Read/write
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> Optional[Dict]:
        """Return the payload stored for ``key``, or ``None`` (a miss).

        Reads the record back from its segment on every call — the index
        keeps only (path, offset) — so cached corpora far larger than RAM
        stay serveable.
        """
        location = self._index.get(key)
        if location is None:
            self.stats.misses += 1
            return None
        path, offset = location
        if self._handle is not None:
            self._handle.flush()
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                record = json.loads(handle.readline().decode("utf-8"))
        except (OSError, ValueError):
            # The segment vanished or rotted after indexing: treat as a
            # miss and drop the entry so the next put can re-fill it.
            del self._index[key]
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record["payload"]

    def put(self, key: str, payload: Dict) -> None:
        """Persist ``payload`` under ``key`` (first write wins).

        Entries are immutable: the key hashes everything that determines
        the payload, so a repeat put stores nothing and keeps the original
        record authoritative.
        """
        if key in self._index:
            return
        self._ensure_segment()
        line = (
            json.dumps({"key": key, "payload": payload}, ensure_ascii=False) + "\n"
        ).encode("utf-8")
        offset = self._handle.tell()
        self._handle.write(line)
        self._handle.flush()
        self._index[key] = (self._segment_path, offset)
        self._segment_records += 1
        self.stats.writes += 1

    def _ensure_segment(self) -> None:
        """Make ``_handle`` point at a segment with room for one record."""
        if self._handle is None and (
            self._segment_index >= 0
            and self._segment_records < self.max_segment_records
        ):
            # Re-opening a directory whose newest segment still has room:
            # continue it instead of starting a new file.
            self._handle = open(self._segment_path, "ab")
            self._handle.seek(0, os.SEEK_END)
            if self._tail_needs_newline:
                # Terminate a torn final record so the next append starts
                # on its own line (the torn line stays counted as corrupt).
                self._handle.write(b"\n")
                self._tail_needs_newline = False
            return
        if (
            self._handle is not None
            and self._segment_records < self.max_segment_records
        ):
            return
        if self._handle is not None:
            self._handle.close()
        self._segment_index += 1
        self._segment_path = self.directory / (
            f"{_SEGMENT_PREFIX}{self._segment_index:06d}{_SEGMENT_SUFFIX}"
        )
        self._handle = open(self._segment_path, "ab")
        self._handle.seek(0, os.SEEK_END)
        self._segment_records = 0
        self._tail_needs_newline = False

    def clear(self) -> None:
        """Delete every segment and reset the index and counters."""
        self.close()
        for path in self._segments():
            try:
                os.remove(path)
            except OSError:
                pass
        self._index.clear()
        self._segment_records = 0
        self._segment_index = -1
        self._segment_path = None
        self._tail_needs_newline = False
        self.stats = DiskCacheStats()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DiskCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
