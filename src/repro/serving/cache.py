"""Deprecated backward-compatibility shim: the serialization cache moved.

The content-hash LRU started life as a serving-only optimization; the
unified encoding layer (:mod:`repro.encoding`) promoted it so training
epochs, repeated evaluations, and analysis share the same cache as serving.
Import :class:`~repro.encoding.LRUCache` and
:func:`~repro.encoding.table_fingerprint` from :mod:`repro.encoding`
(or :mod:`repro.encoding.cache`) directly; this module keeps the
historical import path alive for external code and warns on import.
No in-repo module imports it (a test enforces that).
"""

from __future__ import annotations

import warnings

from ..encoding.cache import LRUCache, table_fingerprint

warnings.warn(
    "repro.serving.cache is deprecated: import LRUCache and "
    "table_fingerprint from repro.encoding (the unified encoding layer) "
    "instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["LRUCache", "table_fingerprint"]
