"""Backward-compatibility shim: the serialization cache moved.

The content-hash LRU started life as a serving-only optimization; the
unified encoding layer (:mod:`repro.encoding`) promoted it so training
epochs, repeated evaluations, and analysis share the same cache as serving.
Import :class:`~repro.encoding.LRUCache` and
:func:`~repro.encoding.table_fingerprint` from :mod:`repro.encoding`
directly in new code; this module keeps the historical import path alive.
"""

from __future__ import annotations

from ..encoding.cache import LRUCache, table_fingerprint

__all__ = ["LRUCache", "table_fingerprint"]
