"""Named-model registry: the routing table of the serving gateway.

A production deployment of one column-annotation service rarely runs one
model: per-dataset fine-tunes (wikitable vs. viznet), canary vs. stable
weights, and ablation variants all serve side by side.
:class:`ModelRegistry` owns that fleet for a process:

* **Registration** binds a *name* to a model source — a bundle directory
  written by :func:`~repro.core.persistence.save_annotator` (loaded
  lazily, on first request), or an in-memory
  :class:`~repro.serving.engine.AnnotationEngine` /
  :class:`~repro.core.trainer.DoduoTrainer` /
  :class:`~repro.core.annotator.Doduo` (live immediately).
* **Routing** resolves a *route* — a registered name **or** a model
  fingerprint (:meth:`~repro.core.trainer.DoduoTrainer.annotation_fingerprint`)
  — to a live engine.  Fingerprint routes make deployments
  content-addressed: a client that pinned the exact weights it validated
  against keeps getting them even if names are repointed.
* **Eviction** bounds resident engines: ``max_live`` caps how many loaded
  engines stay in memory; past it, the least-recently-used *unpinned*
  checkpoint-backed engine is dropped (its entry stays registered and
  reloads transparently on the next request).  Pinned models — explicit
  ``pinned=True``, or any in-memory registration, which has no checkpoint
  to reload from — form the capacity floor eviction never digs into.
* **Cache partitioning**: given a ``cache_dir``, every engine gets its own
  :class:`~repro.serving.diskcache.DiskCache` rooted at
  ``cache_dir/<fingerprint>`` — models never share segment files (the
  composite result key already embeds the fingerprint, so partitioning is
  belt on top of braces, and it keeps the one-writer-per-directory
  contract of the disk tier).

The registry is thread-safe; the gateway calls into it on every submit.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .engine import AnnotationEngine, EngineConfig

ModelSource = Union[str, Path, AnnotationEngine, object]


@dataclass
class RegistryStats:
    """Counters for one registry's lifetime.

    ``loads`` counts checkpoint loads (first-touch lazy loads and
    re-loads after eviction — the latter also counted in ``reloads``);
    ``evictions`` counts live engines dropped by the ``max_live`` policy
    or :meth:`ModelRegistry.evict`; ``routed`` counts successful route
    resolutions (the gateway's submit traffic); ``repoints`` counts
    in-place rebinds of a name to new weights.  ``arena_remaps`` counts
    loads served by mapping a weight arena instead of deserializing
    ``weights.npz`` — on an arena-backed registry every load (including
    every evict→reload cycle) should land here.
    """

    registered: int = 0
    loads: int = 0
    reloads: int = 0
    evictions: int = 0
    routed: int = 0
    repoints: int = 0
    arena_remaps: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable counters (the ``{"op": "stats"}`` wire shape)."""
        return asdict(self)


class RegisteredModel:
    """One registry slot: a name bound to a model source.

    ``engine`` is ``None`` while the model is registered-but-not-loaded
    (lazy checkpoint registration) or after eviction; ``fingerprint``
    becomes known at first load and *survives* eviction, so
    fingerprint-keyed routes keep resolving (and transparently trigger a
    reload).  ``last_used`` is the registry's logical clock at the most
    recent touch — the LRU eviction key.
    """

    __slots__ = (
        "name",
        "path",
        "pinned",
        "engine",
        "engine_config",
        "arena",
        "fingerprint",
        "last_used",
        "loads",
        "load_lock",
    )

    def __init__(
        self,
        name: str,
        path: Optional[Path],
        pinned: bool,
        engine: Optional[AnnotationEngine],
        engine_config: Optional[EngineConfig],
        arena: Optional[Path] = None,
    ) -> None:
        self.name = name
        self.path = path
        self.pinned = pinned
        self.engine = engine
        self.engine_config = engine_config
        # Weight-arena file backing this entry's loads (None = npz loads).
        # Set at registration (the pool pre-builds arenas in the parent)
        # or on first load when the engine config asks for one.
        self.arena = arena
        self.fingerprint: Optional[str] = (
            engine.model_fingerprint if engine is not None else None
        )
        self.last_used = 0
        self.loads = 0
        # Serializes checkpoint loads of THIS entry only, so a cold load
        # runs outside the registry-wide lock (see ModelRegistry.get).
        self.load_lock = threading.Lock()

    @property
    def live(self) -> bool:
        return self.engine is not None


class ModelRegistry:
    """Load, route, and evict named annotation engines.

    ``max_live`` bounds how many engines stay loaded (``None`` = no bound);
    ``engine_config`` is the default :class:`EngineConfig` for engines the
    registry builds (per-model overrides via ``register(engine_config=)``);
    ``cache_dir`` roots one persistent result-cache directory per model
    fingerprint (see the module docstring).

    Typical use::

        registry = ModelRegistry(max_live=2, cache_dir="anno-cache/")
        registry.register("stable", "models/stable/")
        registry.register("canary", "models/canary/", pinned=True)
        engine = registry.get("canary")
    """

    def __init__(
        self,
        max_live: Optional[int] = None,
        engine_config: Optional[EngineConfig] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        fabric_writer: Optional[str] = None,
    ) -> None:
        if max_live is not None and max_live < 1:
            raise ValueError(f"max_live must be >= 1: {max_live}")
        self.max_live = max_live
        self.engine_config = engine_config
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        # With a fabric writer id, per-fingerprint directories get the
        # concurrently-writable FabricCache (one writer id per process —
        # the serving pool passes "w<slot>-pid<PID>") instead of the
        # single-writer DiskCache.  Same keys, same payload bytes; what
        # changes is that sibling processes' entries are readable.
        self.fabric_writer = fabric_writer
        self.stats = RegistryStats()
        self._entries: Dict[str, RegisteredModel] = {}
        # One DiskCache handle per fingerprint, shared by every engine
        # (and every registration — two names over the same weights) that
        # resolves to it: the per-directory one-writer contract holds by
        # construction, and an evict/reload cycle reuses the same handle
        # instead of racing a fresh one against the old.
        self._disk_caches: Dict[str, object] = {}
        self._default_name: Optional[str] = None
        self._clock = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        source: ModelSource,
        pinned: bool = False,
        engine_config: Optional[EngineConfig] = None,
        arena: Optional[Union[str, Path]] = None,
    ) -> RegisteredModel:
        """Bind ``name`` to a model source.

        ``source`` is a bundle directory path (lazy: nothing loads until
        the first request routes here), or an in-memory
        :class:`AnnotationEngine` / :class:`~repro.core.trainer.DoduoTrainer`
        / :class:`~repro.core.annotator.Doduo` (live immediately, and
        implicitly pinned — there is no checkpoint to reload it from after
        an eviction).  The first registration becomes the default route.

        ``arena`` (bundle-path sources only) pins the weight-arena file
        this entry loads from — the serving pool passes the arena its
        parent pre-built so every worker maps the same pages.  Without
        it, an engine config with ``weight_arena=True`` builds/reuses
        the bundle's own arena on first load.
        """
        if not name or name != name.strip():
            raise ValueError(f"model name must be non-empty, got {name!r}")
        with self._lock:
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
            entry = self._build_entry(name, source, pinned, engine_config, arena=arena)
            self._entries[name] = entry
            self.stats.registered += 1
            if self._default_name is None:
                self._default_name = name
            return entry

    def _build_entry(
        self,
        name: str,
        source: ModelSource,
        pinned: bool,
        engine_config: Optional[EngineConfig],
        replacing: Optional[RegisteredModel] = None,
        arena: Optional[Union[str, Path]] = None,
    ) -> RegisteredModel:
        """One validated :class:`RegisteredModel` for ``source`` (caller
        holds the registry lock; ``replacing`` exempts the entry a repoint
        is about to retire from the duplicate-object check)."""
        if isinstance(source, (str, Path)):
            path = Path(source)
            if not (path / "bundle.json").exists():
                raise ValueError(
                    f"model {name!r}: {path} is not a bundle directory "
                    "(no bundle.json)"
                )
            return RegisteredModel(
                name,
                path,
                pinned,
                None,
                engine_config,
                arena=Path(arena) if arena is not None else None,
            )
        if arena is not None:
            raise ValueError(
                f"model {name!r}: arena= applies to bundle-path sources "
                "only (an in-memory engine already owns its weights)"
            )
        engine = self._as_engine(source, engine_config)
        # One serving thread per route drives each engine, and an
        # engine's trainer/pipeline is not thread-safe — the same
        # live object must not serve under two names.  (To alias a
        # model, register its bundle path twice: each load gets a
        # private engine, and the disk tier is still shared per
        # fingerprint.)
        for other in self._entries.values():
            if other is replacing:
                continue
            if other.engine is not None and (
                other.engine is engine
                or other.engine.trainer is engine.trainer
            ):
                raise ValueError(
                    f"model {other.name!r} already serves this "
                    f"trainer/engine object; register a bundle path "
                    f"(or a separate trainer) for {name!r} instead"
                )
        self._attach_result_cache(engine)
        # In-memory sources cannot be reloaded after eviction, so
        # they are pinned regardless of the flag.
        return RegisteredModel(name, None, True, engine, engine_config)

    def repoint(
        self,
        name: str,
        source: ModelSource,
        pinned: bool = False,
        engine_config: Optional[EngineConfig] = None,
    ) -> RegisteredModel:
        """Atomically rebind ``name`` to a new model source.

        The hot-deployment primitive: a serving name (``"stable"``,
        ``"canary"``) is pointed at new weights without restarting the
        process or disturbing the other routes.  Under the registry lock,
        the old engine (if live) is dropped — its shared per-fingerprint
        disk-cache handle detaches exactly as in eviction — and the name's
        slot is replaced in place: registration order, default status, and
        LRU recency carry over, so fingerprint resolution and eviction
        order stay consistent throughout.  The replacement loads lazily
        (bundle-path sources) on the next request routed to it.

        The *old* fingerprint stops resolving through this name: clients
        pinned to exact weights by fingerprint keep resolving only while
        some name still serves those weights — which is precisely the
        content-addressing contract.  Raises ``KeyError`` for unknown
        names; validation failures (not a bundle directory, a live object
        already serving elsewhere) leave the old binding untouched.
        """
        if not name or name != name.strip():
            raise ValueError(f"model name must be non-empty, got {name!r}")
        with self._lock:
            old = self._entries.get(name)
            if old is None:
                raise KeyError(f"no model registered as {name!r}")
            entry = self._build_entry(
                name, source, pinned, engine_config, replacing=old
            )
            self._drop_engine(old)
            entry.last_used = old.last_used
            self._entries[name] = entry
            self._release_unreferenced_handle(old.fingerprint)
            self.stats.repoints += 1
            return entry

    def _release_unreferenced_handle(self, fingerprint: Optional[str]) -> None:
        """Close and drop the per-fingerprint disk-cache handle once no
        registration references ``fingerprint`` anymore (caller holds the
        registry lock).  Repoint/unregister churn over unique models must
        not accumulate dead handles and their in-memory indexes; the
        directory stays on disk, warm for a future registration of the
        same weights."""
        if fingerprint is None:
            return
        if any(
            entry.fingerprint == fingerprint
            for entry in self._entries.values()
        ):
            return
        cache = self._disk_caches.pop(fingerprint, None)
        if cache is not None:
            cache.close()

    def _as_engine(
        self, source: ModelSource, engine_config: Optional[EngineConfig]
    ) -> AnnotationEngine:
        if isinstance(source, AnnotationEngine):
            return source
        # DoduoTrainer, or a Doduo annotator (the engine constructor
        # duck-types both).
        return AnnotationEngine(
            source, engine_config or self.engine_config or EngineConfig()
        )

    def _attach_result_cache(self, engine: AnnotationEngine) -> None:
        """Root the engine's disk tier at ``cache_dir/<fingerprint>``.

        Handles are shared per fingerprint: registering the same weights
        under two names, or evicting and reloading one name, always reuses
        the one :class:`DiskCache` that owns that directory (its
        operations are internally locked), so no two writers ever append
        to the same segment files.
        """
        if self.cache_dir is None or engine.result_cache is not None:
            return
        fingerprint = engine.model_fingerprint
        with self._lock:
            cache = self._disk_caches.get(fingerprint)
            if cache is None:
                if self.fabric_writer is not None:
                    from .fabric import FabricCache  # deferred: tier on

                    cache = FabricCache(
                        self.cache_dir / fingerprint,
                        writer=self.fabric_writer,
                    )
                else:
                    from .diskcache import DiskCache  # deferred: tier on

                    cache = DiskCache(self.cache_dir / fingerprint)
                self._disk_caches[fingerprint] = cache
        engine.result_cache = cache

    def unregister(self, name: str) -> None:
        """Remove ``name`` entirely (its engine, if live, is dropped).

        If no other registration shares the entry's fingerprint, its
        per-fingerprint disk-cache handle is closed and released too —
        register/unregister churn over unique models must not accumulate
        dead handles (and their in-memory indexes) for the process
        lifetime.  The directory itself stays on disk, warm for any
        future registration of the same weights.
        """
        with self._lock:
            entry = self._entries.pop(name, None)
            if entry is None:
                raise KeyError(f"no model registered as {name!r}")
            self._drop_engine(entry)
            self._release_unreferenced_handle(entry.fingerprint)
            if self._default_name == name:
                self._default_name = next(iter(self._entries), None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, route: str) -> bool:
        with self._lock:
            try:
                self._resolve(route)
            except KeyError:
                return False
            return True

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        with self._lock:
            return list(self._entries)

    def live_names(self) -> List[str]:
        """Names whose engines are currently loaded."""
        with self._lock:
            return [e.name for e in self._entries.values() if e.live]

    def live_engine(self, name: str) -> Optional[AnnotationEngine]:
        """The loaded engine for ``name`` — or ``None`` if not live or not
        registered.  A peek: never loads, never touches LRU recency."""
        with self._lock:
            entry = self._entries.get(name)
            return entry.engine if entry is not None else None

    @property
    def default_name(self) -> Optional[str]:
        """The route used when a request names no model (first registered
        unless overridden via :meth:`set_default`)."""
        with self._lock:
            return self._default_name

    def set_default(self, name: str) -> None:
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"no model registered as {name!r}")
            self._default_name = name

    def fingerprint_of(self, name: str, load: bool = False) -> Optional[str]:
        """The model fingerprint of ``name``, if known.

        Lazily-registered models have no fingerprint until first load;
        ``load=True`` forces the load to obtain it.
        """
        with self._lock:
            entry = self._entries[name]
            fingerprint = entry.fingerprint
        if fingerprint is None and load:
            self.get(name)
            fingerprint = entry.fingerprint
        return fingerprint

    def pin(self, name: str) -> None:
        """Exempt ``name`` from LRU eviction."""
        with self._lock:
            self._entries[name].pinned = True

    def unpin(self, name: str) -> None:
        """Re-admit ``name`` to LRU eviction (checkpoint-backed models
        only — in-memory registrations stay pinned, they cannot reload)."""
        with self._lock:
            entry = self._entries[name]
            if entry.path is None:
                raise ValueError(
                    f"model {name!r} was registered in-memory and cannot be "
                    "unpinned (there is no checkpoint to reload it from)"
                )
            entry.pinned = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def resolve(self, route: Optional[str] = None) -> str:
        """Canonical registered *name* for ``route`` (name or fingerprint).

        ``None`` resolves to the default model.  Raises ``KeyError`` for
        unknown routes (or when ``None`` is asked of an empty registry).
        """
        with self._lock:
            return self._resolve(route).name

    def _resolve(self, route: Optional[str] = None) -> RegisteredModel:
        if route is None:
            if self._default_name is None:
                raise KeyError("the registry has no models registered")
            return self._entries[self._default_name]
        entry = self._entries.get(route)
        if entry is not None:
            return entry
        # Fingerprint route: only resolvable once the model has been
        # loaded at least once (fingerprints survive eviction).
        for entry in self._entries.values():
            if entry.fingerprint == route:
                return entry
        raise KeyError(
            f"no model registered under name or fingerprint {route!r} "
            f"(registered: {', '.join(self._entries) or 'none'})"
        )

    def get(self, route: Optional[str] = None) -> AnnotationEngine:
        """The live engine for ``route``, loading/reloading as needed."""
        return self.acquire(route)[1]

    def acquire(
        self, route: Optional[str] = None
    ) -> Tuple[str, AnnotationEngine]:
        """``(canonical name, live engine)`` for ``route`` in one registry
        pass — the gateway's per-submission entry point.

        Touches the entry's LRU recency and enforces ``max_live`` (the
        just-routed engine is never the one evicted).  Checkpoint loads
        run *outside* the registry lock, serialized per entry: one model's
        cold load never stalls routing to the models that are already hot,
        and two concurrent requests for the same cold model load it once.
        """
        while True:
            with self._lock:
                entry = self._resolve(route)
                if entry.engine is not None:
                    self._clock += 1
                    entry.last_used = self._clock
                    self.stats.routed += 1
                    self._enforce_max_live(keep=entry)
                    return entry.name, entry.engine
            with entry.load_lock:
                if entry.engine is None:
                    self._load(entry)
            # Loop: re-enter the registry lock to touch LRU recency and
            # enforce capacity (the entry could also have been evicted
            # again by a concurrent burst — then we just reload).

    def _load(self, entry: RegisteredModel) -> None:
        """Build ``entry``'s engine from its checkpoint (caller holds the
        entry's load lock, NOT the registry lock — this is the slow path)."""
        from ..core.persistence import (  # deferred: heavy import
            ensure_model_arena,
            load_annotator,
        )

        config = entry.engine_config or self.engine_config or EngineConfig()
        if entry.arena is None and config.weight_arena:
            # First arena-backed load without a pre-built file (single-
            # process registries; the pool pre-builds in the parent):
            # build or reuse the bundle's own arena, then every reload —
            # evict→reload in particular — is a remap of the same file.
            entry.arena = ensure_model_arena(
                entry.path,
                precision="int8" if config.precision == "int8" else "float32",
            )
        annotator = load_annotator(entry.path, weight_arena=entry.arena)
        engine = AnnotationEngine(annotator.trainer, config)
        self._attach_result_cache(engine)
        with self._lock:
            entry.engine = engine
            entry.fingerprint = engine.model_fingerprint
            entry.loads += 1
            self.stats.loads += 1
            if entry.loads > 1:
                self.stats.reloads += 1
            if entry.arena is not None:
                self.stats.arena_remaps += 1

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _enforce_max_live(self, keep: RegisteredModel) -> None:
        """Evict LRU unpinned engines until ``max_live`` holds.

        Pinned entries (and ``keep``, the engine being handed out right
        now) are the floor: when only those remain live, the bound may be
        overshot rather than evicting something unreloadable or in use.
        """
        if self.max_live is None:
            return
        while sum(1 for e in self._entries.values() if e.live) > self.max_live:
            victims = [
                e
                for e in self._entries.values()
                if e.live and not e.pinned and e is not keep
            ]
            if not victims:
                return
            self._evict_entry(min(victims, key=lambda e: e.last_used))

    def evict(self, name: str) -> None:
        """Drop ``name``'s live engine now (the registration stays; the
        next request to it reloads from its checkpoint)."""
        with self._lock:
            entry = self._entries[name]
            if entry.path is None:
                raise ValueError(
                    f"model {name!r} was registered in-memory and cannot be "
                    "evicted (there is no checkpoint to reload it from)"
                )
            if entry.live:
                self._evict_entry(entry)

    def _evict_entry(self, entry: RegisteredModel) -> None:
        self._drop_engine(entry)
        self.stats.evictions += 1

    @staticmethod
    def _drop_engine(entry: RegisteredModel) -> None:
        engine = entry.engine
        entry.engine = None
        if engine is not None and engine.result_cache is not None:
            # Detach the disk tier before closing its (shared,
            # per-fingerprint) handle: a gateway worker may still be
            # draining in-flight requests against this engine object from
            # another thread — its remaining lookups/writes then skip the
            # tier (results stay correct, they just aren't persisted),
            # while a reload or a same-fingerprint sibling reuses the one
            # handle, whose next write reopens it.
            cache = engine.result_cache
            engine.result_cache = None
            cache.close()

    def close(self) -> None:
        """Release resources: drop checkpoint-backed engines (they reload
        on the next request) and close every disk-cache handle.  In-memory
        registrations keep their engines — dropping them would be
        unrecoverable."""
        with self._lock:
            for entry in self._entries.values():
                if entry.path is not None:
                    self._drop_engine(entry)
                elif (
                    entry.engine is not None
                    and entry.engine.result_cache is not None
                ):
                    entry.engine.result_cache.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
